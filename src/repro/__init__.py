"""repro — Strengthened Fault Tolerance in BFT Replication.

A from-scratch Python reproduction of *"Strengthened Fault Tolerance
in Byzantine Fault Tolerant Replication"* (Xiang, Malkhi, Nayak, Ren —
ICDCS 2021, arXiv:2101.03715): chain-based BFT SMR protocols whose
committed blocks gain resilience beyond ``f`` — up to ``2f`` — as the
chain extends, at linear message complexity.

Quick start::

    from repro import ExperimentConfig, build_cluster, strong_latency_series

    config = ExperimentConfig(protocol="sft-diembft", n=31, duration=30.0)
    cluster = build_cluster(config).run()
    for point in strong_latency_series(cluster, ratios=(1.0, 1.5, 2.0)):
        print(point.ratio, point.mean_latency)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
harnesses regenerating each figure of the paper.
"""

from repro.core import (
    BruteForceEndorsementOracle,
    CommitTracker,
    EndorsementTracker,
    IntervalSet,
    StrengthTimeline,
    VotingHistory,
    level_for_ratio,
    max_strength,
    ratio_grid,
)
from repro.experiments import (
    Campaign,
    CampaignRunner,
    FaultMix,
    ScenarioSpec,
    load_scenario,
    run_campaign,
)
from repro.lightclient import LightClient, StrongCommitProof, build_proof
from repro.net import (
    AsymmetricTopology,
    Network,
    NetworkConfig,
    Simulator,
    SymmetricTopology,
    UniformTopology,
)
from repro.protocols.base import ReplicaConfig
from repro.protocols.diembft import DiemBFTReplica
from repro.protocols.fbft import FBFTDiemBFTReplica
from repro.protocols.sft_diembft import SFTDiemBFTReplica
from repro.protocols.sft_streamlet import SFTStreamletReplica
from repro.protocols.streamlet import StreamletConfig, StreamletReplica
from repro.runtime import (
    ClientWorkload,
    Cluster,
    ExperimentConfig,
    LatencyReport,
    build_cluster,
    check_commit_safety,
    regular_commit_latency,
    strong_commit_latency,
    strong_latency_series,
    throughput_txps,
)
from repro.types import (
    Block,
    BlockStore,
    QuorumCertificate,
    StrongVote,
    TimeoutCertificate,
    Transaction,
    Vote,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "IntervalSet",
    "VotingHistory",
    "EndorsementTracker",
    "BruteForceEndorsementOracle",
    "CommitTracker",
    "StrengthTimeline",
    "level_for_ratio",
    "max_strength",
    "ratio_grid",
    # types
    "Block",
    "BlockStore",
    "QuorumCertificate",
    "TimeoutCertificate",
    "Vote",
    "StrongVote",
    "Transaction",
    # net
    "Simulator",
    "Network",
    "NetworkConfig",
    "UniformTopology",
    "SymmetricTopology",
    "AsymmetricTopology",
    # protocols
    "ReplicaConfig",
    "DiemBFTReplica",
    "SFTDiemBFTReplica",
    "FBFTDiemBFTReplica",
    "StreamletReplica",
    "StreamletConfig",
    "SFTStreamletReplica",
    # experiments
    "ScenarioSpec",
    "FaultMix",
    "Campaign",
    "CampaignRunner",
    "run_campaign",
    "load_scenario",
    # runtime
    "ExperimentConfig",
    "build_cluster",
    "Cluster",
    "ClientWorkload",
    "LatencyReport",
    "check_commit_safety",
    "regular_commit_latency",
    "strong_commit_latency",
    "strong_latency_series",
    "throughput_txps",
    # light client
    "LightClient",
    "StrongCommitProof",
    "build_proof",
    "__version__",
]

"""Deterministic, seed-driven adversarial schedule sampling.

:func:`generate_spec` maps ``(profile, seed)`` to one
:class:`~repro.experiments.spec.ScenarioSpec` — a full adversarial
schedule: a fault mix drawn from the
:data:`~repro.adversary.behaviors.BEHAVIOR_FACTORIES` registry,
partition windows, per-link latency/jitter, leader-targeted crash
timing, GST placement, and (occasionally) a scripted Appendix C
construction or a deliberately *naive* accounting run.  Everything is
derived from one ``random.Random`` seeded by the profile name and the
case seed, so the same seed always yields byte-identical specs — the
property that makes fuzz reports reproducible and corpus entries
replayable.

The sampled spec runs through the ordinary campaign machinery
(:func:`repro.experiments.runner.run_job`); nothing here touches
protocol code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.analysis.invariants import liveness_bound_s, recovery_time
from repro.experiments.spec import FaultMix, PartitionWindow, ScenarioSpec

#: Behaviours the fault sampler draws from.  Pinned explicitly (not
#: derived from BEHAVIOR_FACTORIES) so registering a new behaviour can
#: never shift ``rng.choice`` and silently re-map every existing fuzz
#: seed: crash-*recovery* faults sample from their own RNG stream
#: below, and the scripted ``amnesia`` differential is deliberately
#: not fuzzed (it is an expected safety violation, not a find).
FAULT_KINDS = (
    "silent", "equivocate", "withhold", "lazy", "marker_lie",
    "sync_withhold", "crash",
)


@dataclass(frozen=True, slots=True)
class FuzzProfile:
    """Bounds and biases for one family of fuzz schedules.

    ``over_budget_rate`` is how often the sampled fault count ``t``
    goes to ``f + 1`` — past the classical bound, into the regime
    Definition 1 is about.  ``naive_rate`` flips runs to the flawed
    all-indirect-votes accounting (expected counterexamples);
    ``scripted_rate`` emits Appendix-C constructions directly.
    ``sync_off_rate`` is how often the block-sync / catch-up
    subprotocol is disabled — keeping the pre-sync schedule space
    (including its known starvation pathologies) in rotation while the
    default-on majority also samples response-withholding peers via
    the ``sync_withhold`` fault kind.

    The throughput axes (``linear_votes_rate``, ``batching_rate``,
    ``collector_crash_rate``) draw from a *separate* RNG stream keyed
    ``sft-fuzz-throughput:{name}:{seed}``, so pre-existing seeds keep
    producing byte-identical base schedules.  ``collector_crash_rate``
    is how often a crash under linear vote collection is re-aimed at a
    round the victim *collects* (it leads ``r + 1``) — the schedule
    family where a crashed collector swallows a whole round's votes.

    The checkpoint axes likewise use their own stream
    (``sft-fuzz-checkpoint:{name}:{seed}``): ``checkpoint_rate`` turns
    the checkpoint/truncation subprotocol on with a sampled interval,
    and ``snapshot_lag_rate`` is how often such a run *additionally*
    isolates one replica behind a partition window long enough that
    rejoining requires a snapshot transfer rather than block-sync —
    the schedule family that exercises state-transfer validation.
    """

    name: str = "default"
    protocols: tuple = ("sft-diembft", "sft-streamlet")
    n_choices: tuple = (4, 7, 10, 13)
    round_timeouts: tuple = (0.3, 0.5)
    min_duration: float = 5.0
    max_duration: float = 14.0
    fault_rate: float = 0.8
    over_budget_rate: float = 0.35
    partition_rate: float = 0.55
    max_partitions: int = 2
    gst_rate: float = 0.4
    regions_rate: float = 0.25
    naive_rate: float = 0.15
    scripted_rate: float = 0.08
    scripted_f_choices: tuple = (2, 3, 4)
    sync_off_rate: float = 0.25
    linear_votes_rate: float = 0.3
    batching_rate: float = 0.25
    collector_crash_rate: float = 0.5
    checkpoint_rate: float = 0.3
    snapshot_lag_rate: float = 0.5
    # Crash-recovery axis (own stream sft-fuzz-recovery:{name}:{seed}):
    # how often one replica crashes, loses volatile state, and restarts
    # from its WAL after a sampled downtime.
    recovery_rate: float = 0.3
    # At-least-once delivery axis (own stream
    # sft-fuzz-delivery:{name}:{seed}): how often the run turns on
    # seeded message duplication (and, half the time, reordering).
    delivery_rate: float = 0.3


DEFAULT_PROFILE = FuzzProfile()

#: A CI-sized profile: small clusters, short runs, same schedule space.
SMOKE_PROFILE = FuzzProfile(
    name="smoke",
    n_choices=(4, 7),
    round_timeouts=(0.3,),
    min_duration=4.0,
    max_duration=8.0,
    max_partitions=1,
    scripted_f_choices=(2,),
)

PROFILES = {
    "default": DEFAULT_PROFILE,
    "smoke": SMOKE_PROFILE,
}


def _rng_for(profile: FuzzProfile, seed: int) -> random.Random:
    # str seeds hash through SHA-512 inside random.seed, so this is
    # stable across processes and Python invocations (unlike hash()).
    return random.Random(f"sft-fuzz:{profile.name}:{seed}")


def _sample_faults(rng: random.Random, n: int, f: int, profile: FuzzProfile,
                   duration: float, per_round: float) -> FaultMix:
    budget = f + 1 if rng.random() < profile.over_budget_rate else f
    budget = min(budget, n - 1)
    if budget <= 0:
        return FaultMix()
    total = rng.randint(1, budget)
    counts = dict.fromkeys(FAULT_KINDS, 0)
    for _ in range(total):
        counts[rng.choice(FAULT_KINDS)] += 1
    mix = FaultMix(
        crash=counts["crash"],
        silent=counts["silent"],
        equivocate=counts["equivocate"],
        withhold=counts["withhold"],
        withhold_reach=rng.choice((0.34, 0.5, 0.67)),
        lazy=counts["lazy"],
        lazy_delay=round(rng.uniform(0.05, 0.4), 3),
        marker_lie=counts["marker_lie"],
        sync_withhold=counts["sync_withhold"],
    )
    if mix.crash:
        mix = replace(mix, crash_at=_crash_time(rng, mix, n, duration, per_round))
    return mix


def _crash_time(rng: random.Random, mix: FaultMix, n: int,
                duration: float, per_round: float) -> float:
    """When the crash fires: random, or aimed at a round the victim leads.

    Leader election is round-robin (``leader(r) = r mod n``), so the
    first crashing replica leads rounds ``id, id + n, id + 2n, …``;
    ``per_round`` estimates fault-free round pacing, putting the crash
    right around a leadership window — the classic "leader dies
    mid-propose" schedule.
    """
    if rng.random() < 0.5:
        return round(rng.uniform(0.0, duration * 0.5), 3)
    victim = mix.assignments(n)["crash"][0]
    target_round = victim + n * rng.randint(0, 2)
    return round(min(target_round * per_round, duration * 0.7), 4)


def _sample_partitions(rng: random.Random, profile: FuzzProfile) -> tuple:
    if rng.random() >= profile.partition_rate:
        return ()
    windows = []
    for _ in range(rng.randint(1, profile.max_partitions)):
        start = round(rng.uniform(0.5, 3.5), 3)
        length = round(rng.uniform(0.4, 2.0), 3)
        windows.append(
            PartitionWindow(
                start=start,
                end=round(start + length, 3),
                split=rng.choice((0.3, 0.5, 0.7)),
            )
        )
    return tuple(sorted(windows, key=lambda window: window.start))


def generate_spec(seed: int, profile: FuzzProfile = DEFAULT_PROFILE) -> ScenarioSpec:
    """The adversarial schedule for one fuzz seed (pure function)."""
    rng = _rng_for(profile, seed)
    name = f"fuzz-{profile.name}-{seed:05d}"

    if rng.random() < profile.scripted_rate:
        f = rng.choice(profile.scripted_f_choices)
        return ScenarioSpec(
            name=name,
            script="appendix_c",
            protocol="sft-diembft",
            n=3 * f + 1,
            naive_accounting=rng.random() < 0.5,
            seeds=(seed,),
        )

    protocol = rng.choice(profile.protocols)
    n = rng.choice(profile.n_choices)
    f = (n - 1) // 3
    round_timeout = rng.choice(profile.round_timeouts)

    # Per-link latency/jitter: either a flat mesh or 2-3 geo regions.
    if rng.random() < profile.regions_rate and n >= 4:
        region_count = rng.choice((2, 3)) if n >= 6 else 2
        sizes = [n // region_count] * region_count
        for index in range(n - sum(sizes)):
            sizes[index] += 1
        topology_kwargs = dict(
            topology="regions",
            region_sizes=tuple(sizes),
            delta=round(rng.uniform(0.02, 0.1), 4),
            intra_delay=round(rng.uniform(0.001, 0.005), 4),
        )
        max_delay = topology_kwargs["delta"]
    else:
        topology_kwargs = dict(
            topology="uniform",
            uniform_delay=round(rng.uniform(0.004, 0.02), 4),
        )
        max_delay = topology_kwargs["uniform_delay"]
    jitter = round(rng.uniform(0.0, 0.006), 4)

    gst = 0.0
    pre_gst_delay = 0.0
    if rng.random() < profile.gst_rate:
        gst = round(rng.uniform(0.5, 2.0), 3)
        pre_gst_delay = round(rng.uniform(0.05, 0.6), 3)

    partitions = _sample_partitions(rng, profile)

    # Leave enough post-recovery budget to arm the liveness check when
    # the schedule allows it; the oracle skips the check otherwise.
    probe = ScenarioSpec(
        name=name,
        protocol=protocol,
        n=n,
        round_timeout=round_timeout,
        jitter=jitter,
        gst=gst,
        pre_gst_delay=pre_gst_delay,
        partitions=partitions,
        seeds=(seed,),
        **topology_kwargs,
    )
    duration = recovery_time(probe) + liveness_bound_s(probe) + rng.uniform(1.0, 3.0)
    duration = round(
        min(max(duration, profile.min_duration), profile.max_duration), 3
    )

    per_round = max(2.5 * (max_delay + jitter), 0.02)
    faults = FaultMix()
    if rng.random() < profile.fault_rate:
        faults = _sample_faults(rng, n, f, profile, duration, per_round)

    naive = protocol.startswith("sft") and rng.random() < profile.naive_rate
    sync_enabled = rng.random() >= profile.sync_off_rate

    # Throughput axes come from their own stream so every draw above —
    # and therefore every pre-existing seed's base schedule — is
    # byte-identical whether or not these axes are enabled.
    throughput_rng = random.Random(f"sft-fuzz-throughput:{profile.name}:{seed}")
    throughput_kwargs: dict = {}
    linear_votes = throughput_rng.random() < profile.linear_votes_rate
    if linear_votes:
        throughput_kwargs["linear_votes"] = True
    if throughput_rng.random() < profile.batching_rate:
        throughput_kwargs["workload_rate"] = throughput_rng.choice(
            (200.0, 500.0, 1000.0)
        )
        throughput_kwargs["batch_size"] = throughput_rng.choice((16, 64, 256))
        throughput_kwargs["pipelined_proposals"] = throughput_rng.random() < 0.5
    if (
        linear_votes
        and faults.crash
        and throughput_rng.random() < profile.collector_crash_rate
    ):
        # Re-aim the crash at a round the victim *collects*: under
        # linear vote collection the leader of ``r + 1`` aggregates
        # round ``r``'s votes, so the victim collects rounds
        # ``victim - 1 (mod n)``, ``victim - 1 + n``, … — crashing
        # there swallows a full round of votes instead of one proposal.
        victim = faults.assignments(n)["crash"][0]
        target_round = (victim - 1) % n + n * throughput_rng.randint(0, 2)
        faults = replace(
            faults,
            crash_at=round(min(target_round * per_round, duration * 0.7), 4),
        )

    # Checkpoint axes: own stream, kwargs only added when sampled on,
    # so every pre-existing seed's schedule stays byte-identical.
    checkpoint_rng = random.Random(f"sft-fuzz-checkpoint:{profile.name}:{seed}")
    checkpoint_kwargs: dict = {}
    if checkpoint_rng.random() < profile.checkpoint_rate:
        checkpoint_kwargs["checkpoint_interval"] = checkpoint_rng.choice((2, 4, 8))
        if checkpoint_rng.random() < profile.snapshot_lag_rate:
            # Isolate the last replica for a window long enough that it
            # falls more than an interval behind the stable checkpoint:
            # rejoining then needs a snapshot, not just block-sync.
            lag_start = round(checkpoint_rng.uniform(0.5, 2.0), 3)
            lag_end = round(lag_start + checkpoint_rng.uniform(2.0, 5.0), 3)
            lagged = PartitionWindow(
                start=lag_start,
                end=min(lag_end, round(duration * 0.7, 3)),
                groups=(tuple(range(n - 1)), (n - 1,)),
            )
            partitions = tuple(
                sorted(
                    partitions + (lagged,), key=lambda window: window.start
                )
            )

    # Crash-recovery axis: own stream, fault fields only touched when
    # sampled on, so every pre-existing seed's schedule stays
    # byte-identical.
    recovery_rng = random.Random(f"sft-fuzz-recovery:{profile.name}:{seed}")
    if recovery_rng.random() < profile.recovery_rate and faults.total() < n:
        faults = replace(
            faults,
            recover=1,
            recover_at=round(recovery_rng.uniform(0.3, duration * 0.4), 3),
            downtime=round(recovery_rng.uniform(0.5, 2.0), 3),
        )

    # At-least-once delivery axis: own stream, kwargs only added when
    # sampled on (same byte-identity discipline).
    delivery_rng = random.Random(f"sft-fuzz-delivery:{profile.name}:{seed}")
    delivery_kwargs: dict = {}
    if delivery_rng.random() < profile.delivery_rate:
        delivery_kwargs["duplicate_rate"] = delivery_rng.choice(
            (0.05, 0.15, 0.3)
        )
        if delivery_rng.random() < 0.5:
            delivery_kwargs["reorder_window"] = round(
                delivery_rng.uniform(0.005, 0.05), 4
            )

    return ScenarioSpec(
        name=name,
        protocol=protocol,
        n=n,
        round_timeout=round_timeout,
        jitter=jitter,
        gst=gst,
        pre_gst_delay=pre_gst_delay,
        partitions=partitions,
        duration=duration,
        faults=faults,
        naive_accounting=naive,
        sync_enabled=sync_enabled,
        seeds=(seed,),
        **topology_kwargs,
        **throughput_kwargs,
        **checkpoint_kwargs,
        **delivery_kwargs,
    )

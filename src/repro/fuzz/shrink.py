"""Schedule shrinking: bisect a failing spec to a minimal one.

Given a :class:`~repro.experiments.spec.ScenarioSpec` whose run
violates an invariant, the shrinker greedily applies simplification
passes — drop or shorten partition windows, remove faults one kind at
a time, disable GST and jitter, reduce ``n`` (in ``3f + 1`` steps so
quorum shapes survive), shorten the run — keeping each candidate only
if it *still fails*.  The fixpoint is a minimal failing schedule,
written to disk as a replayable JSON scenario.

Everything is deterministic: passes run in a fixed order and the
failure predicate re-runs the same seeded simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.campaign import Job
from repro.experiments.runner import run_job
from repro.experiments.spec import ScenarioSpec

#: Fault-mix fields the shrinker tries to remove, in order.
_FAULT_FIELDS = (
    "crash", "silent", "equivocate", "withhold", "lazy", "marker_lie",
    "sync_withhold", "recover", "amnesia",
)


@dataclass(frozen=True, slots=True)
class ShrinkResult:
    """Outcome of a shrink run."""

    spec: ScenarioSpec
    attempts: int
    shrunk: bool

    def renamed(self, name: str) -> "ShrinkResult":
        return replace(self, spec=self.spec.with_overrides(name=name))


def _case_violations(spec: ScenarioSpec, seed: int | None = None) -> list:
    run_seed = spec.seeds[0] if seed is None else seed
    entry = run_job(Job(job_id=f"shrink/{spec.name}", spec=spec, seed=run_seed))
    return entry["metrics"]["invariants"]["violations"]


def spec_fails(spec: ScenarioSpec, seed: int | None = None) -> bool:
    """Whether any invariant (expected or not) is violated."""
    return bool(_case_violations(spec, seed))


def _matching_predicate(invariants: frozenset, unexpected_only: bool):
    """A predicate pinned to the *original* failure class.

    Without pinning, a greedy pass could strip the schedule piece
    behind a real (unexpected) find while a co-occurring expected
    naive-accounting counterexample keeps the candidate "failing" —
    the minimized spec would then no longer reproduce the find.
    """

    def fails(spec: ScenarioSpec, seed: int | None = None) -> bool:
        for violation in _case_violations(spec, seed):
            if violation["invariant"] not in invariants:
                continue
            if unexpected_only and violation["expected"]:
                continue
            return True
        return False

    return fails


def _candidate_overrides(spec: ScenarioSpec):
    """Yield ``with_overrides`` kwargs for simplified variants, most
    aggressive first.  Candidates that fail spec validation are
    discarded by the shrink loop."""
    if spec.partitions:
        yield {"partitions": ()}
        if len(spec.partitions) > 1:
            for index in range(len(spec.partitions)):
                yield {
                    "partitions": tuple(
                        window
                        for position, window in enumerate(spec.partitions)
                        if position != index
                    )
                }
        for index, window in enumerate(spec.partitions):
            length = window.end - window.start
            if length > 0.4:
                shortened = replace(
                    window, end=round(window.start + length / 2, 3)
                )
                yield {
                    "partitions": spec.partitions[:index]
                    + (shortened,)
                    + spec.partitions[index + 1:]
                }
    # Zeroing a fault kind also resets its knobs, so minimized specs do
    # not carry dangling parameters (a crash_at with no crashes).
    knob_resets = {
        "crash": {"faults.crash_at": 0.0},
        "withhold": {"faults.withhold_reach": 0.5},
        "lazy": {"faults.lazy_delay": 0.5},
    }
    # recover and amnesia share the restart knobs; only reset those
    # once the *other* kind is gone too.
    if not spec.faults.amnesia:
        knob_resets["recover"] = {
            "faults.recover_at": 0.0, "faults.downtime": 1.0,
        }
    if not spec.faults.recover:
        knob_resets["amnesia"] = {
            "faults.recover_at": 0.0, "faults.downtime": 1.0,
        }
    for field_name in _FAULT_FIELDS:
        count = getattr(spec.faults, field_name)
        if count:
            yield {f"faults.{field_name}": 0, **knob_resets.get(field_name, {})}
            if count > 1:
                yield {f"faults.{field_name}": count - 1}
    # Throughput axes: turning the workload off also resets its batch
    # knobs so minimized specs carry no dangling parameters; linear
    # vote collection and pipelining shed independently.
    if spec.workload_rate:
        yield {
            "workload_rate": 0.0,
            "batch_size": 256,
            "max_batch_bytes": 0,
            "pipelined_proposals": False,
        }
    if spec.pipelined_proposals:
        yield {"pipelined_proposals": False}
    if spec.linear_votes:
        yield {"linear_votes": False}
    if spec.checkpoint_interval:
        yield {"checkpoint_interval": 0}
    # At-least-once delivery faults shed independently: dropping the
    # reorder window first (it is the gentler fault), then duplication.
    if spec.reorder_window:
        yield {"reorder_window": 0.0}
    if spec.duplicate_rate:
        yield {"duplicate_rate": 0.0}
    if spec.gst or spec.pre_gst_delay:
        yield {"gst": 0.0, "pre_gst_delay": 0.0}
    if spec.jitter:
        yield {"jitter": 0.0}
    if spec.naive_accounting and not spec.script:
        # The naive flag is usually the trigger, but try without it: a
        # schedule that fails under *sound* accounting is the bigger
        # find, and the predicate keeps it only if it still fails.
        yield {"naive_accounting": False}
    if spec.n > 4:
        smaller = spec.n - 3 if spec.n % 3 == 1 else spec.n - 1
        overrides = {"n": max(smaller, 4)}
        if spec.topology == "regions":
            overrides["topology"] = "uniform"
            overrides["region_sizes"] = ()
        yield overrides
    if not spec.script and spec.duration > 4.0:
        yield {"duration": round(spec.duration * 0.6, 3)}


def shrink_spec(
    spec: ScenarioSpec,
    fails=None,
    seed: int | None = None,
    max_attempts: int = 120,
    violations: list | None = None,
) -> ShrinkResult:
    """Greedy fixpoint shrink of a failing spec.

    ``fails(spec, seed)`` must return True while the schedule still
    reproduces the violation; when omitted, a predicate pinned to the
    input spec's own failure class is derived (unexpected violations
    take priority — see :func:`_matching_predicate`).  ``violations``
    optionally supplies the spec's already-computed violation dicts so
    the derivation skips one redundant simulation.  Raises
    ``ValueError`` if the input spec does not fail to begin with.
    """
    if fails is None:
        baseline = (
            violations if violations is not None else _case_violations(spec, seed)
        )
        if not baseline:
            raise ValueError(
                f"spec {spec.name!r} does not fail; nothing to shrink"
            )
        unexpected = frozenset(
            violation["invariant"]
            for violation in baseline
            if not violation["expected"]
        )
        target = unexpected or frozenset(
            violation["invariant"] for violation in baseline
        )
        fails = _matching_predicate(target, unexpected_only=bool(unexpected))
    elif not fails(spec, seed):
        raise ValueError(f"spec {spec.name!r} does not fail; nothing to shrink")
    current = spec
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for overrides in _candidate_overrides(current):
            if attempts >= max_attempts:
                break
            try:
                candidate = current.with_overrides(**overrides)
            except ValueError:
                continue  # simplification invalid against its own constraints
            attempts += 1
            if fails(candidate, seed):
                current = candidate
                progress = True
                break
    return ShrinkResult(spec=current, attempts=attempts, shrunk=current != spec)

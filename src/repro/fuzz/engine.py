"""The fuzz campaign: sample schedules, run, judge, shrink, persist.

Each fuzz seed becomes one :class:`~repro.experiments.campaign.Job`
and runs through the ordinary
:class:`~repro.experiments.runner.CampaignRunner` — same process pool,
same deterministic in-order reassembly, same metrics pipeline (which
now carries the invariant oracle's verdict).  On top of that, this
module:

* classifies violations into *unexpected* (a real find: the protocol
  or simulator broke an invariant) and *expected counterexamples*
  (deliberate naive-accounting runs violating Definition 1 — the
  fuzzer demonstrating Appendix C);
* shrinks every failing schedule to a minimal replayable spec and
  writes it to a corpus directory;
* emits a fully deterministic report: same seeds → byte-identical
  JSON (wall-clock timings are deliberately excluded).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.experiments.campaign import Job
from repro.experiments.runner import CampaignRunner, run_job
from repro.experiments.spec import save_scenario, spec_to_mapping
from repro.fuzz.generator import DEFAULT_PROFILE, FuzzProfile, generate_spec
from repro.fuzz.shrink import shrink_spec
from repro.obs import write_flight_dump


def parse_seed_range(text: str) -> tuple:
    """``"0:50"`` → seeds 0..49; ``"7"`` → (7,); ``"1,5,9"`` → as given."""
    text = text.strip()
    if ":" in text:
        low_text, high_text = text.split(":", 1)
        low, high = int(low_text), int(high_text)
        if high <= low:
            raise ValueError(f"empty seed range {text!r}")
        return tuple(range(low, high))
    if "," in text:
        return tuple(int(part) for part in text.split(",") if part.strip())
    return (int(text),)


def fuzz_jobs(seeds, profile: FuzzProfile = DEFAULT_PROFILE) -> list:
    """One campaign job per fuzz seed (specs sampled deterministically)."""
    jobs = []
    for seed in seeds:
        spec = generate_spec(seed, profile)
        jobs.append(
            Job(
                job_id=f"fuzz-{profile.name}/seed={seed}",
                spec=spec,
                seed=seed,
                params={"fuzz_seed": seed},
            )
        )
    return jobs


def evaluate_case(spec, seed) -> dict:
    """Run one schedule and return its full job entry (oracle included)."""
    return run_job(Job(job_id=f"fuzz/{spec.name}", spec=spec, seed=seed))


def _metrics_digest(metrics: dict) -> str:
    return hashlib.sha256(
        json.dumps(metrics, sort_keys=True).encode()
    ).hexdigest()[:16]


def _case_entry(entry: dict, spec) -> dict:
    invariants = entry["metrics"]["invariants"]
    return {
        "seed": entry["seed"],
        "name": spec.name,
        "spec": spec_to_mapping(spec),
        "ok": invariants["ok"],
        "violations": invariants["violations"],
        "commits": entry["metrics"]["commits"],
        "metrics_digest": _metrics_digest(entry["metrics"]),
    }


def run_fuzz(
    seeds,
    profile: FuzzProfile = DEFAULT_PROFILE,
    workers: int = 1,
    corpus_dir=None,
    shrink: bool = True,
    progress=None,
) -> dict:
    """Fuzz every seed and return the deterministic campaign report.

    Violating schedules are shrunk to minimal replayable specs; when
    ``corpus_dir`` is given, each minimized spec is written there as
    ``<case-name>-min.json``.  ``progress`` is forwarded to the
    underlying :class:`CampaignRunner`.
    """
    seeds = tuple(seeds)
    jobs = fuzz_jobs(seeds, profile)
    results = CampaignRunner(
        jobs, workers=workers, name=f"fuzz-{profile.name}"
    ).run(progress=progress)

    cases = []
    minimized = []
    flight_dumps = []
    unexpected = 0
    expected = 0
    for job, entry in zip(jobs, results["jobs"]):
        case = _case_entry(entry, job.spec)
        violations = case["violations"]
        if violations:
            if all(violation["expected"] for violation in violations):
                expected += 1
            else:
                unexpected += 1
            recording = entry.get("flight_recording")
            if recording is not None and corpus_dir is not None:
                directory = Path(corpus_dir)
                directory.mkdir(parents=True, exist_ok=True)
                dump_path = directory / f"{job.spec.name}-flight.json"
                write_flight_dump(recording, dump_path)
                case["flight_dump"] = dump_path.name
                flight_dumps.append(dump_path.name)
            if shrink:
                result = shrink_spec(
                    job.spec, seed=entry["seed"], violations=violations
                ).renamed(f"{job.spec.name}-min")
                case["minimized_spec"] = spec_to_mapping(result.spec)
                case["shrink_attempts"] = result.attempts
                if corpus_dir is not None:
                    directory = Path(corpus_dir)
                    directory.mkdir(parents=True, exist_ok=True)
                    out_path = directory / f"{result.spec.name}.json"
                    save_scenario(result.spec, out_path)
                    minimized.append(out_path.name)
        cases.append(case)

    return {
        "fuzzer": f"fuzz-{profile.name}",
        "profile": profile.name,
        "seeds": list(seeds),
        "cases": cases,
        "summary": {
            "cases": len(cases),
            "unexpected_violations": unexpected,
            "expected_counterexamples": expected,
            "minimized": minimized,
            "flight_dumps": flight_dumps,
        },
    }

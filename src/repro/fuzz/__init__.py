"""Randomized fault-schedule fuzzing with an invariant oracle.

The standing scenario-discovery loop: sample adversarial schedules
(:mod:`repro.fuzz.generator`), run them through the campaign engine,
judge every trace with the global invariant oracle
(:mod:`repro.analysis.invariants`), and shrink failures to minimal
replayable specs (:mod:`repro.fuzz.shrink`).

    from repro.fuzz import SMOKE_PROFILE, run_fuzz

    report = run_fuzz(range(50), SMOKE_PROFILE, workers=4)
"""

from repro.fuzz.engine import (
    evaluate_case,
    fuzz_jobs,
    parse_seed_range,
    run_fuzz,
)
from repro.fuzz.generator import (
    DEFAULT_PROFILE,
    PROFILES,
    SMOKE_PROFILE,
    FuzzProfile,
    generate_spec,
)
from repro.fuzz.shrink import ShrinkResult, shrink_spec, spec_fails

__all__ = [
    "FuzzProfile",
    "DEFAULT_PROFILE",
    "SMOKE_PROFILE",
    "PROFILES",
    "generate_spec",
    "fuzz_jobs",
    "run_fuzz",
    "evaluate_case",
    "parse_seed_range",
    "ShrinkResult",
    "shrink_spec",
    "spec_fails",
]

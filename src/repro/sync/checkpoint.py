"""Per-replica checkpoint subprotocol: stable state digests above sync.

Block-sync (:mod:`repro.sync.manager`) lets a replica fetch certified
chains it missed, but two unbounded costs remain for long-running
traffic: every replica's :class:`~repro.types.chain.BlockStore` keeps
the full history forever, and a replica thousands of rounds behind must
replay everything from genesis.  The PBFT checkpoint subprotocol
(Castro–Liskov §4.3) closes both, adapted here to chained BFT:

* every ``checkpoint_interval`` commits, each replica runs its own
  :class:`~repro.app.kvstore.LedgerExecutor` up to exactly that commit
  height and multicasts a signed :class:`CheckpointMsg` carrying a
  digest over ``(height, block, kvstore state, applied txids)``;
* ``2f + 1`` matching digests from distinct signers form a **stable
  checkpoint certificate** — proof the state is durable at ``f``
  Byzantine faults — letting every replica truncate blocks below the
  checkpoint and drop stale orphans/QCs/memo entries;
* a replica that discovers a stable checkpoint more than one interval
  ahead of its own committed height joins via
  :class:`SnapshotRequestMsg` / :class:`SnapshotResponseMsg` — full
  kvstore image + certificate, validated whole before any mutation
  (the block-sync discipline), then suffix-synced through the ordinary
  :class:`~repro.sync.manager.SyncManager` path.

The digest deliberately includes the executor's applied-transaction-id
set: a transaction proposed below the checkpoint and re-proposed above
it must be deduplicated on the joiner too, or its state diverges from
replicas that replayed the full log.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.app.kvstore import LedgerExecutor
from repro.core.commit_rules import CommitEvent
from repro.crypto.hashing import hash_fields
from repro.types.messages import (
    CheckpointMsg,
    SnapshotRequestMsg,
    SnapshotResponseMsg,
)


def state_digest(height, block_id, state_items, applied_txids):
    """The digest 2f+1 replicas must agree on for a stable checkpoint."""
    return hash_fields(
        "checkpoint-state",
        height,
        block_id.value,
        tuple(state_items),
        tuple(txid.value for txid in applied_txids),
    )


@dataclass(slots=True)
class _Snapshot:
    """One locally executed checkpoint image, kept until superseded."""

    height: int
    block_id: object
    digest: object
    state: tuple
    applied_txids: tuple
    applied_count: int
    rejected_count: int


@dataclass(slots=True)
class _StableCheckpoint:
    """A quorum-certified checkpoint: ``signers`` hold 2f+1 signatures."""

    height: int
    block_id: object
    digest: object
    signers: tuple  # ((replica_id, Signature), ...), sorted by id


@dataclass(slots=True)
class _SnapshotFetch:
    """The one in-flight snapshot transfer (peer rotation + retry)."""

    min_height: int
    nonce: int
    peer: int
    attempts: int = 1
    timer: object = field(default=None, repr=False)


class CheckpointManager:
    """Signs, collects, and applies checkpoints for one replica.

    Owned by one replica (attached when ``checkpoint_interval > 0``);
    driven by :meth:`poll` after every delivery, so it observes commits
    regardless of which protocol family produced them.
    """

    def __init__(self, replica) -> None:
        self.replica = replica
        self.config = replica.config
        self.context = replica.context
        self.interval = replica.config.checkpoint_interval
        self.executor = LedgerExecutor(replica)
        self._signed_height = 0
        #: (height, block_id, digest) → {signer: signature}
        self._pending: dict = {}
        #: Bounded like the orphan pool: a Byzantine peer can mint
        #: CheckpointMsgs at arbitrary far-future interval multiples
        #: with arbitrary digests, and certificate formation only
        #: prunes keys at or below the new stable height.
        self._max_pending = max(16, 4 * self.config.n)
        #: own checkpoint images by height, serving + digest evidence
        self._snapshots: dict[int, _Snapshot] = {}
        self.stable: _StableCheckpoint | None = None
        self._stable_truncated = False
        self._fetch: _SnapshotFetch | None = None
        self._next_nonce = 0
        self._max_attempts = 3 * max(1, self.config.n - 1)
        # Statistics (deterministic; surfaced in campaign metrics).
        # Registry-backed; legacy attribute API preserved via the
        # property shims below.
        metrics = replica.metrics
        self._c_checkpoints_signed = metrics.counter("checkpoint.signed")
        self._c_certificates_formed = metrics.counter("checkpoint.certificates")
        self._c_blocks_truncated = metrics.counter("checkpoint.blocks_truncated")
        self._c_snapshots_served = metrics.counter("checkpoint.snapshots_served")
        self._c_snapshots_installed = metrics.counter(
            "checkpoint.snapshots_installed"
        )
        self._c_invalid_snapshots = metrics.counter(
            "checkpoint.invalid_snapshots"
        )
        self._c_peer_rotations = metrics.counter("checkpoint.peer_rotations")

    # ------------------------------------------------------------------
    # registry-backed statistics (legacy attribute API preserved)
    # ------------------------------------------------------------------

    @property
    def checkpoints_signed(self) -> int:
        return self._c_checkpoints_signed.value

    @checkpoints_signed.setter
    def checkpoints_signed(self, value: int) -> None:
        self._c_checkpoints_signed.value = value

    @property
    def certificates_formed(self) -> int:
        return self._c_certificates_formed.value

    @certificates_formed.setter
    def certificates_formed(self, value: int) -> None:
        self._c_certificates_formed.value = value

    @property
    def blocks_truncated(self) -> int:
        return self._c_blocks_truncated.value

    @blocks_truncated.setter
    def blocks_truncated(self, value: int) -> None:
        self._c_blocks_truncated.value = value

    @property
    def snapshots_served(self) -> int:
        return self._c_snapshots_served.value

    @snapshots_served.setter
    def snapshots_served(self, value: int) -> None:
        self._c_snapshots_served.value = value

    @property
    def snapshots_installed(self) -> int:
        return self._c_snapshots_installed.value

    @snapshots_installed.setter
    def snapshots_installed(self, value: int) -> None:
        self._c_snapshots_installed.value = value

    @property
    def invalid_snapshots(self) -> int:
        return self._c_invalid_snapshots.value

    @invalid_snapshots.setter
    def invalid_snapshots(self, value: int) -> None:
        self._c_invalid_snapshots.value = value

    @property
    def peer_rotations(self) -> int:
        return self._c_peer_rotations.value

    @peer_rotations.setter
    def peer_rotations(self, value: int) -> None:
        self._c_peer_rotations.value = value

    # ------------------------------------------------------------------
    # driving: execute committed blocks, sign interval boundaries
    # ------------------------------------------------------------------

    def poll(self, now: float) -> None:
        """Advance the executor and emit any due checkpoint digests."""
        if self.replica.crashed:
            return
        while True:
            event = self.executor.sync_next()
            if event is None:
                break
            if (
                event.height % self.interval == 0
                and event.height > self._signed_height
            ):
                self._emit_checkpoint(event)
        self._try_truncate()

    def _emit_checkpoint(self, event: CommitEvent) -> None:
        snapshot = _Snapshot(
            height=event.height,
            block_id=event.block_id,
            digest=None,
            state=self.executor.state.items(),
            applied_txids=self.executor.applied_txids(),
            applied_count=self.executor.state.applied,
            rejected_count=self.executor.state.rejected,
        )
        snapshot.digest = state_digest(
            snapshot.height,
            snapshot.block_id,
            snapshot.state,
            snapshot.applied_txids,
        )
        self._snapshots[event.height] = snapshot
        self._signed_height = event.height
        message = CheckpointMsg(
            sender=self.replica.replica_id,
            height=snapshot.height,
            block_id=snapshot.block_id,
            digest=snapshot.digest,
        )
        signature = self.context.signing_key.sign(message.signing_payload())
        message = replace(message, signature=signature)
        self.checkpoints_signed += 1
        tracer = self.replica.tracer
        if tracer is not None:
            tracer.emit(
                self.context.now,
                "checkpoint",
                height=snapshot.height,
                block=snapshot.block_id.short(),
                count=snapshot.applied_count,
            )
        self.context.multicast(message, include_self=True)

    # ------------------------------------------------------------------
    # collecting digests into certificates
    # ------------------------------------------------------------------

    def on_checkpoint(self, src: int, msg: CheckpointMsg) -> None:
        if src != msg.sender or not 0 <= msg.sender < self.config.n:
            return
        if msg.block_id is None or msg.digest is None:
            return
        if msg.height <= 0 or msg.height % self.interval != 0:
            return
        if self.stable is not None and msg.height <= self.stable.height:
            return
        if self.config.verify_signatures:
            if (
                msg.signature is None
                or msg.signature.signer != msg.sender
                or not self.context.registry.verify(
                    msg.signing_payload(), msg.signature
                )
            ):
                return
        key = (msg.height, msg.block_id, msg.digest)
        signers = self._pending.setdefault(key, {})
        if msg.sender in signers:
            return
        signers[msg.sender] = msg.signature
        if len(signers) >= self.config.quorum():
            self._form_certificate(key, signers)
        elif len(self._pending) > self._max_pending:
            self._evict_pending()

    def _evict_pending(self) -> None:
        """Deterministic eviction past the cap: fewest signers first
        (farthest from a certificate), ties to the highest height
        (far-future flood keys before the live frontier), then ids."""
        victim = min(
            self._pending,
            key=lambda key: (
                len(self._pending[key]),
                -key[0],
                key[1].value,
                key[2].value,
            ),
        )
        del self._pending[victim]

    def _form_certificate(self, key, signers: dict) -> None:
        height, block_id, digest = key
        self.certificates_formed += 1
        tracer = self.replica.tracer
        if tracer is not None:
            tracer.emit(
                self.context.now,
                "checkpoint_stable",
                height=height,
                block=block_id.short(),
                count=len(signers),
            )
        self.stable = _StableCheckpoint(
            height=height,
            block_id=block_id,
            digest=digest,
            signers=tuple(sorted(signers.items())),
        )
        self._stable_truncated = False
        # Everything below the new stable checkpoint is now moot.
        self._pending = {
            pending_key: pending_signers
            for pending_key, pending_signers in self._pending.items()
            if pending_key[0] > height
        }
        self._snapshots = {
            snap_height: snapshot
            for snap_height, snapshot in self._snapshots.items()
            if snap_height >= height
        }
        self._try_truncate()
        self._maybe_request_snapshot()

    def _local_height(self) -> int:
        commit_order = self.replica.commit_tracker.commit_order
        return commit_order[-1].height if commit_order else 0

    def _try_truncate(self) -> None:
        """Truncate below the stable checkpoint once it is locally final.

        Holding the checkpoint block is not enough: commits trail the
        stored tip by the chaining depth, so 2f+1 digests for height H
        can arrive while this replica has block H but has only
        committed through H-2.  Pruning then would drop uncommitted
        ancestors whose commit events never fire — the executor would
        silently skip their transactions and the commit log would gain
        a gap the prefix-consistency oracle flags.  Wait until local
        commitment has reached the checkpoint height; the
        snapshot-install path re-roots explicitly and never comes here.
        """
        if self.stable is None or self._stable_truncated:
            return
        store = self.replica.store
        block = store.maybe_get(self.stable.block_id)
        if block is None:
            return
        if self._local_height() < self.stable.height:
            return
        pruned = store.truncate_below(self.stable.block_id)
        self._stable_truncated = True
        self.blocks_truncated += len(pruned)
        if pruned:
            self.replica._on_truncated(pruned)

    # ------------------------------------------------------------------
    # snapshot transfer: requesting
    # ------------------------------------------------------------------

    def _maybe_request_snapshot(self) -> None:
        """Fetch a snapshot when the stable checkpoint is out of reach.

        Within one interval of the stable height the ordinary block-sync
        path closes the gap faster than a full state transfer would.
        """
        if self.stable is None or self._fetch is not None:
            return
        if self.replica.store.maybe_get(self.stable.block_id) is not None:
            return
        if self.stable.height - self._local_height() <= self.interval:
            return
        if self.config.n < 2:
            return
        self._next_nonce += 1
        self._fetch = _SnapshotFetch(
            min_height=self.stable.height,
            nonce=self._next_nonce,
            peer=(self.replica.replica_id + 1) % self.config.n,
        )
        self._send_request(self._fetch)

    def _send_request(self, fetch: _SnapshotFetch) -> None:
        request = SnapshotRequestMsg(
            sender=self.replica.replica_id,
            min_height=fetch.min_height,
            nonce=fetch.nonce,
        )
        signature = self.context.signing_key.sign(request.signing_payload())
        request = replace(request, signature=signature)
        tracer = self.replica.tracer
        if tracer is not None:
            tracer.emit(
                self.context.now,
                "snapshot_request",
                height=fetch.min_height,
                detail=f"peer={fetch.peer}",
                count=fetch.attempts,
            )
        self.context.send(fetch.peer, request)
        # Snapshots are bulky; give peers a few sync-retry budgets.
        fetch.timer = self.context.set_timer(
            4.0 * self.config.sync_retry, self._retry, fetch.nonce
        )

    def _retry(self, nonce: int) -> None:
        if self.replica.crashed:
            return
        fetch = self._fetch
        if fetch is None or fetch.nonce != nonce:
            return
        if self.replica.store.maybe_get(self.stable.block_id) is not None:
            self._fetch = None  # resolved out of band (block-sync won)
            return
        self._rotate(fetch)

    def _rotate(self, fetch: _SnapshotFetch) -> None:
        if fetch.attempts >= self._max_attempts:
            self._fetch = None
            return
        fetch.peer = (fetch.peer + 1) % self.config.n
        if fetch.peer == self.replica.replica_id:
            fetch.peer = (fetch.peer + 1) % self.config.n
        fetch.attempts += 1
        self.peer_rotations += 1
        self._next_nonce += 1
        fetch.nonce = self._next_nonce
        self._send_request(fetch)

    # ------------------------------------------------------------------
    # snapshot transfer: serving
    # ------------------------------------------------------------------

    def serve_snapshot(self, src: int, msg: SnapshotRequestMsg) -> None:
        if src != msg.sender or not 0 <= msg.sender < self.config.n:
            return
        if self.config.verify_signatures:
            if (
                msg.signature is None
                or msg.signature.signer != msg.sender
                or not self.context.registry.verify(
                    msg.signing_payload(), msg.signature
                )
            ):
                return
        stable = self.stable
        snapshot = (
            self._snapshots.get(stable.height) if stable is not None else None
        )
        block = (
            self.replica.store.maybe_get(stable.block_id)
            if stable is not None
            else None
        )
        if (
            stable is None
            or snapshot is None
            or block is None
            or stable.height < msg.min_height
            or snapshot.digest != stable.digest
        ):
            # Honest miss: nothing stable (or nothing new enough) to
            # ship — including a stable cert whose checkpoint block
            # this replica never held, which the requester would
            # otherwise reject and count against an honest peer.
            response = SnapshotResponseMsg(
                sender=self.replica.replica_id, nonce=msg.nonce
            )
        else:
            response = SnapshotResponseMsg(
                sender=self.replica.replica_id,
                nonce=msg.nonce,
                cert_height=stable.height,
                cert_block_id=stable.block_id,
                cert_digest=stable.digest,
                cert_signers=stable.signers,
                block=block,
                state=snapshot.state,
                applied_txids=snapshot.applied_txids,
                applied_count=snapshot.applied_count,
                rejected_count=snapshot.rejected_count,
            )
            self.snapshots_served += 1
            tracer = self.replica.tracer
            if tracer is not None:
                tracer.emit(
                    self.context.now,
                    "snapshot_serve",
                    height=stable.height,
                    block=stable.block_id.short(),
                    detail=f"peer={src}",
                )
        signature = self.context.signing_key.sign(response.signing_payload())
        self.context.send(src, replace(response, signature=signature))

    # ------------------------------------------------------------------
    # snapshot transfer: installing
    # ------------------------------------------------------------------

    def on_snapshot_response(self, src: int, msg: SnapshotResponseMsg) -> None:
        fetch = self._fetch
        if fetch is None or src != msg.sender:
            return
        if fetch.nonce != msg.nonce or fetch.peer != src:
            return
        if not msg.cert_signers:
            # Honest miss from this peer; try the next one.
            self._cancel_timer(fetch)
            self._rotate(fetch)
            return
        if msg.cert_height <= self._local_height():
            # Ordinary block-sync raced the transfer and this replica is
            # already at (or past) the offered checkpoint — the fetch is
            # satisfied, not the response invalid.
            self._cancel_timer(fetch)
            self._fetch = None
            return
        if not self._validate_snapshot(msg, fetch):
            self.invalid_snapshots += 1
            self._cancel_timer(fetch)
            self._rotate(fetch)
            return
        self._cancel_timer(fetch)
        self._fetch = None
        self._install_snapshot(msg)

    def _validate_snapshot(self, msg: SnapshotResponseMsg, fetch) -> bool:
        """Whole-response validation before any mutation."""
        if msg.block is None or msg.cert_block_id is None:
            return False
        if msg.cert_height < fetch.min_height:
            return False
        if msg.block.id() != msg.cert_block_id:
            return False
        if msg.block.height != msg.cert_height:
            return False
        if msg.cert_height % self.interval != 0:
            return False
        if msg.cert_height <= self._local_height():
            return False
        # The digest must recompute from the shipped state image.
        digest = state_digest(
            msg.cert_height, msg.cert_block_id, msg.state, msg.applied_txids
        )
        if digest != msg.cert_digest:
            return False
        if self.config.verify_signatures:
            registry = self.context.registry
            if (
                msg.signature is None
                or msg.signature.signer != msg.sender
                or not registry.verify(msg.signing_payload(), msg.signature)
            ):
                return False
            # The checkpoint payload is deliberately sender-free, so
            # every signer in the certificate signed identical bytes.
            probe = CheckpointMsg(
                sender=0,
                height=msg.cert_height,
                block_id=msg.cert_block_id,
                digest=msg.cert_digest,
            )
            signatures = []
            for replica_id, signature in msg.cert_signers:
                if signature is None or signature.signer != replica_id:
                    return False
                signatures.append(signature)
            if not registry.verify_quorum(
                probe.signing_payload(), signatures, self.config.quorum()
            ):
                return False
        elif len({signer for signer, _sig in msg.cert_signers}) < (
            self.config.quorum()
        ):
            return False
        return True

    def _install_snapshot(self, msg: SnapshotResponseMsg) -> None:
        """Adopt the checkpoint wholesale: store root, tracker, executor."""
        replica = self.replica
        now = self.context.now
        pruned, flushed = replica.store.adopt_root(msg.block)
        if pruned:
            replica._on_truncated(pruned)
        tracker = replica.commit_tracker
        block_id = msg.block.id()
        if block_id not in tracker.committed:
            event = CommitEvent(
                block_id=block_id,
                round=msg.block.round,
                height=msg.block.height,
                committed_at=now,
                created_at=msg.block.created_at,
            )
            tracker.committed[block_id] = event
            tracker.commit_order.append(event)
            tracker.snapshot_heights.add(msg.block.height)
            if msg.block.round > tracker.highest_committed_round:
                tracker.highest_committed_round = msg.block.round
        self.executor.install_snapshot(
            msg.state,
            msg.applied_txids,
            cursor=len(tracker.commit_order),
            applied_count=msg.applied_count,
            rejected_count=msg.rejected_count,
        )
        self.stable = _StableCheckpoint(
            height=msg.cert_height,
            block_id=msg.cert_block_id,
            digest=msg.cert_digest,
            signers=msg.cert_signers,
        )
        self._stable_truncated = True  # adopt_root already re-rooted
        self._signed_height = msg.cert_height
        self._snapshots = {
            msg.cert_height: _Snapshot(
                height=msg.cert_height,
                block_id=msg.cert_block_id,
                digest=msg.cert_digest,
                state=tuple(msg.state),
                applied_txids=tuple(msg.applied_txids),
                applied_count=msg.applied_count,
                rejected_count=msg.rejected_count,
            )
        }
        self._pending = {
            key: signers
            for key, signers in self._pending.items()
            if key[0] > msg.cert_height
        }
        self.snapshots_installed += 1
        tracer = replica.tracer
        if tracer is not None:
            tracer.emit(
                now,
                "snapshot_install",
                round=msg.block.round,
                height=msg.cert_height,
                block=msg.cert_block_id.short(),
                detail=f"peer={msg.sender}",
            )
        if flushed:
            # Buffered orphans that re-attached under the new root flow
            # through the ordinary post-insertion path (voting, QCs).
            replica._handle_inserted_blocks(flushed)
        # Suffix sync: chase the certified chain above the checkpoint
        # through the ordinary block-sync path (a tip fetch resolved
        # once something above the checkpoint round is certified).
        if replica.sync is not None:
            replica.sync.note_round_lag(
                msg.block.round + self.config.sync_round_lag + 1,
                msg.block.round,
            )

    def _cancel_timer(self, fetch: _SnapshotFetch) -> None:
        if fetch.timer is not None:
            self.context.cancel_timer(fetch.timer)
            fetch.timer = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stable_height(self) -> int:
        return self.stable.height if self.stable is not None else 0

    def stats(self) -> dict:
        return {
            "checkpoints_signed": self.checkpoints_signed,
            "certificates_formed": self.certificates_formed,
            "blocks_truncated": self.blocks_truncated,
            "snapshots_served": self.snapshots_served,
            "snapshots_installed": self.snapshots_installed,
            "invalid_snapshots": self.invalid_snapshots,
            "peer_rotations": self.peer_rotations,
        }

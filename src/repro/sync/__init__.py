"""Block-sync / catch-up subprotocol.

Correct BFT replicas can fall behind the certified chain — a
withholding leader skips them, a partition isolates them, delivery
reordering orphans a proposal — and the paper's protocols assume they
eventually obtain every certified block.  This package supplies that
missing recovery path: :class:`~repro.sync.manager.SyncManager`
detects staleness and fetches missing certified ancestor chains from
peers, with retry, peer rotation, and QC re-validation before any
block enters the local :class:`~repro.types.chain.BlockStore`.
"""

from repro.sync.checkpoint import CheckpointManager
from repro.sync.manager import SyncManager

__all__ = ["CheckpointManager", "SyncManager"]

"""Per-replica block-sync state machine.

The :class:`SyncManager` closes the gap the fuzzer's two standing
liveness finds trace to: a correct replica that misses a certified
block (withheld proposal, partition, reordering) had no way to fetch
it, so its chain froze at the gap while the rest of the cluster moved
on.  The manager mirrors DiemBFT's block-retrieval subprotocol:

* **staleness detection** — the owning replica reports every proposal
  or QC that references an unknown block (:meth:`note_missing`) and
  every timeout-driven round jump that leaves the local certified tip
  far behind (:meth:`note_round_lag`);
* **fetching** — one in-flight request per missing target, sent to one
  peer at a time with a deterministic rotation order; an unanswered or
  useless request is retried against the next peer after
  ``sync_retry`` seconds (this is what defeats response-withholding
  peers);
* **validation** — a response is applied only if its chain links
  hash-to-hash, every embedded QC (and the optional tip QC)
  cryptographically re-validates against the key registry, and blocks
  structurally extend their parents; any failure rejects the whole
  response *before* the block store is touched;
* **iterated deepening** — one response carries at most
  ``sync_max_blocks`` ancestors; if the oldest received block's parent
  is still unknown the manager immediately chases it, so arbitrarily
  deep gaps close in a bounded number of round trips.

The manager is pure plumbing: it never votes, never signs votes, and
never advances rounds itself — inserted blocks flow through the
replica's ordinary ``_handle_inserted_blocks`` path, so voting and
commit rules see synced blocks exactly as if they had arrived in
order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.types.messages import SyncRequestMsg, SyncResponseMsg

#: Sentinel key for the tip (round-lag) fetch in the in-flight table.
_TIP = None


@dataclass(slots=True)
class _Fetch:
    """One in-flight fetch: a target block (or the tip) being chased."""

    target: object  # BlockId or _TIP
    nonce: int
    peer: int
    attempts: int = 1
    goal_round: int = 0  # tip fetches: resolved once certified past this
    timer: object = field(default=None, repr=False)


class SyncManager:
    """Detects staleness and fetches missing certified chains.

    Owned by one replica; reads the replica's ``store``, ``config``,
    and ``context`` and talks to peers through signed
    :class:`~repro.types.messages.SyncRequestMsg` /
    :class:`~repro.types.messages.SyncResponseMsg` pairs.
    """

    def __init__(self, replica) -> None:
        self.replica = replica
        self.config = replica.config
        self.context = replica.context
        self._fetches: dict = {}
        self._next_nonce = 0
        # Give up on a target after every peer has been tried a few
        # times; a fresh staleness signal restarts the fetch.
        self._max_attempts = 3 * max(1, self.config.n - 1)
        # Statistics (deterministic; surfaced in campaign metrics).
        # Registry-backed counters; the property shims below keep the
        # legacy attribute API.
        metrics = replica.metrics
        self._c_requests_sent = metrics.counter("sync.requests_sent")
        self._c_responses_served = metrics.counter("sync.responses_served")
        self._c_responses_applied = metrics.counter("sync.responses_applied")
        self._c_invalid_responses = metrics.counter("sync.invalid_responses")
        self._c_blocks_synced = metrics.counter("sync.blocks_synced")
        self._c_peer_rotations = metrics.counter("sync.peer_rotations")

    # ------------------------------------------------------------------
    # registry-backed statistics (legacy attribute API preserved)
    # ------------------------------------------------------------------

    @property
    def requests_sent(self) -> int:
        return self._c_requests_sent.value

    @requests_sent.setter
    def requests_sent(self, value: int) -> None:
        self._c_requests_sent.value = value

    @property
    def responses_served(self) -> int:
        return self._c_responses_served.value

    @responses_served.setter
    def responses_served(self, value: int) -> None:
        self._c_responses_served.value = value

    @property
    def responses_applied(self) -> int:
        return self._c_responses_applied.value

    @responses_applied.setter
    def responses_applied(self, value: int) -> None:
        self._c_responses_applied.value = value

    @property
    def invalid_responses(self) -> int:
        return self._c_invalid_responses.value

    @invalid_responses.setter
    def invalid_responses(self, value: int) -> None:
        self._c_invalid_responses.value = value

    @property
    def blocks_synced(self) -> int:
        return self._c_blocks_synced.value

    @blocks_synced.setter
    def blocks_synced(self, value: int) -> None:
        self._c_blocks_synced.value = value

    @property
    def peer_rotations(self) -> int:
        return self._c_peer_rotations.value

    @peer_rotations.setter
    def peer_rotations(self, value: int) -> None:
        self._c_peer_rotations.value = value

    # ------------------------------------------------------------------
    # staleness detection (called by the owning replica)
    # ------------------------------------------------------------------

    def note_missing(self, block_id) -> None:
        """A proposal or QC referenced ``block_id`` and we don't have it."""
        if block_id in self.replica.store or block_id in self._fetches:
            return
        self._start_fetch(block_id)

    def note_round_lag(self, round_number: int, certified_round: int) -> None:
        """The round advanced past the local certified tip by too much."""
        if round_number - certified_round <= self.config.sync_round_lag:
            return
        if _TIP in self._fetches:
            return
        self._start_fetch(
            _TIP, goal_round=round_number - self.config.sync_round_lag
        )

    # ------------------------------------------------------------------
    # fetching with retry + peer rotation
    # ------------------------------------------------------------------

    def _first_peer(self) -> int:
        return (self.replica.replica_id + 1) % self.config.n

    def _next_peer(self, peer: int) -> int:
        peer = (peer + 1) % self.config.n
        if peer == self.replica.replica_id:
            peer = (peer + 1) % self.config.n
        return peer

    def _start_fetch(self, target, goal_round: int = 0) -> None:
        if self.config.n < 2:
            return
        self._next_nonce += 1
        fetch = _Fetch(
            target=target,
            nonce=self._next_nonce,
            peer=self._first_peer(),
            goal_round=goal_round,
        )
        self._fetches[target] = fetch
        self._send_request(fetch)

    def _send_request(self, fetch: _Fetch) -> None:
        request = SyncRequestMsg(
            sender=self.replica.replica_id,
            target=fetch.target,
            max_blocks=self.config.sync_max_blocks,
            nonce=fetch.nonce,
        )
        signature = self.context.signing_key.sign(request.signing_payload())
        request = replace(request, signature=signature)
        self.requests_sent += 1
        tracer = self.replica.tracer
        if tracer is not None:
            target = "" if fetch.target is _TIP else fetch.target.short()
            tracer.emit(
                self.context.now, "sync_request", block=target,
                detail=f"peer={fetch.peer}" + ("" if target else " target=tip"),
                count=fetch.attempts,
            )
        self.context.send(fetch.peer, request)
        fetch.timer = self.context.set_timer(
            self.config.sync_retry, self._retry, fetch.target, fetch.nonce
        )

    def _retry(self, target, nonce: int) -> None:
        """Retry timer: the peer never answered (or answered uselessly)."""
        if self.replica.crashed:
            return
        fetch = self._fetches.get(target)
        if fetch is None or fetch.nonce != nonce:
            return  # resolved or superseded in the meantime
        if self._resolved(fetch):
            del self._fetches[target]
            return
        self._rotate(fetch)

    def _rotate(self, fetch: _Fetch) -> None:
        if fetch.attempts >= self._max_attempts:
            del self._fetches[fetch.target]
            return
        fetch.peer = self._next_peer(fetch.peer)
        fetch.attempts += 1
        self.peer_rotations += 1
        self._next_nonce += 1
        fetch.nonce = self._next_nonce
        self._send_request(fetch)

    def _resolved(self, fetch: _Fetch) -> bool:
        if fetch.target is _TIP:
            certified = self.replica.store.highest_certified_block().round
            return certified >= fetch.goal_round
        return fetch.target in self.replica.store

    # ------------------------------------------------------------------
    # serving peers
    # ------------------------------------------------------------------

    def serve(self, src: int, msg: SyncRequestMsg) -> None:
        """Answer a peer's request with a certified ancestor chain."""
        if src != msg.sender or not 0 <= msg.sender < self.config.n:
            return
        if self.config.verify_signatures:
            if msg.signature is None or not self.context.registry.verify(
                msg.signing_payload(), msg.signature
            ):
                return
        store = self.replica.store
        if msg.target is None:
            start = store.highest_certified_block()
            if start.is_genesis():
                start = None
        else:
            start = store.maybe_get(msg.target)
        blocks = []
        limit = max(1, min(msg.max_blocks, self.config.sync_max_blocks))
        cursor = start
        while (
            cursor is not None
            and not cursor.is_genesis()
            and len(blocks) < limit
        ):
            blocks.append(cursor)
            cursor = store.maybe_get(cursor.parent_id)
        tip_qc = store.qc_for(blocks[0].id()) if blocks else None
        response = SyncResponseMsg(
            sender=self.replica.replica_id,
            nonce=msg.nonce,
            blocks=tuple(blocks),
            tip_qc=tip_qc,
        )
        signature = self.context.signing_key.sign(response.signing_payload())
        response = replace(response, signature=signature)
        self.responses_served += 1
        tracer = self.replica.tracer
        if tracer is not None:
            tracer.emit(
                self.context.now, "sync_serve",
                detail=f"peer={src}", count=len(blocks),
            )
        self.context.send(src, response)

    # ------------------------------------------------------------------
    # applying responses
    # ------------------------------------------------------------------

    def accept(self, src: int, msg: SyncResponseMsg):
        """Validate and apply one response.

        Returns ``(inserted_blocks, tip_qc)`` — ``tip_qc`` only when it
        validated and certifies the newest received block.  Invalid
        responses are dropped whole (no store mutation) and the fetch
        rotates to the next peer immediately.
        """
        fetch = self._match(src, msg)
        if fetch is None:
            return [], None
        if not self._validate(msg):
            self.invalid_responses += 1
            self._cancel_timer(fetch)
            self._rotate(fetch)
            return [], None
        if not msg.blocks:
            # Honest miss: this peer doesn't have the target either.
            self._cancel_timer(fetch)
            self._rotate(fetch)
            return [], None

        store = self.replica.store
        inserted = []
        for block in reversed(msg.blocks):  # oldest first
            if block.id() in store:
                continue
            inserted.extend(store.add_block(block))
        tip_qc = None
        if msg.tip_qc is not None and msg.tip_qc.block_id == msg.blocks[0].id():
            tip_qc = msg.tip_qc
        self.responses_applied += 1
        self.blocks_synced += len(inserted)
        tracer = self.replica.tracer
        if tracer is not None:
            tracer.emit(
                self.context.now, "sync_apply",
                detail=f"peer={src}", count=len(inserted),
            )

        self._cancel_timer(fetch)
        if fetch.target is _TIP and not self._resolved(fetch):
            # The tip fetch keeps rotating until the certified round
            # actually caught up.
            self._rotate(fetch)
        else:
            # A valid chain response completes a block fetch: the
            # target is now stored or orphan-buffered, and any deeper
            # gap is chased below.  (A useless-but-valid chain from a
            # Byzantine peer just ends the fetch; the next staleness
            # signal restarts it.)
            self._fetches.pop(fetch.target, None)
        # Iterated deepening: chase a still-unknown parent of the
        # oldest block we just learned about.
        oldest = msg.blocks[-1]
        if oldest.parent_id is not None and oldest.parent_id not in store:
            self.note_missing(oldest.parent_id)
        return inserted, tip_qc

    def _match(self, src: int, msg: SyncResponseMsg):
        """Pair a response with its in-flight fetch (peer + nonce)."""
        if src != msg.sender:
            return None
        for fetch in self._fetches.values():
            if fetch.nonce == msg.nonce and fetch.peer == src:
                return fetch
        return None

    def _validate(self, msg: SyncResponseMsg) -> bool:
        """Whole-response validation before any insertion."""
        registry = self.context.registry
        quorum = self.config.quorum()
        if self.config.verify_signatures:
            if msg.signature is None or not registry.verify(
                msg.signing_payload(), msg.signature
            ):
                return False
        blocks = msg.blocks
        for index, block in enumerate(blocks):
            if block.is_genesis() or block.qc is None:
                return False
            if block.qc.block_id != block.parent_id:
                return False
            if index + 1 < len(blocks):
                nxt = blocks[index + 1]
                if block.parent_id != nxt.id():
                    return False
                if block.height != nxt.height + 1 or block.round <= nxt.round:
                    return False
            if self.config.verify_signatures and not block.qc.validate(
                registry, quorum
            ):
                return False
        if msg.tip_qc is not None:
            if not blocks or msg.tip_qc.block_id != blocks[0].id():
                return False
            if self.config.verify_signatures and not msg.tip_qc.validate(
                registry, quorum
            ):
                return False
        return True

    def _cancel_timer(self, fetch: _Fetch) -> None:
        if fetch.timer is not None:
            self.context.cancel_timer(fetch.timer)
            fetch.timer = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def inflight(self) -> int:
        return len(self._fetches)

    def stats(self) -> dict:
        return {
            "requests": self.requests_sent,
            "responses_served": self.responses_served,
            "responses_applied": self.responses_applied,
            "invalid_responses": self.invalid_responses,
            "blocks_synced": self.blocks_synced,
            "peer_rotations": self.peer_rotations,
        }

"""Aggregated measurements over a finished cluster run.

Implements the paper's methodology (Section 4): "each data point is
the average value measured over all blocks over all replicas".  The
helpers here average over *observer* replicas (which may be all of
them) and support a ``created_before`` cutoff so that blocks created
too close to the end of the run — which never had time to reach high
strength levels — do not bias the tail of the latency curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.resilience import level_for_ratio


@dataclass(slots=True)
class LatencyReport:
    """One point of a Figure 7/8-style series."""

    ratio: float
    level: int
    mean_latency: float | None
    samples: int
    eligible: int

    def reached_fraction(self) -> float:
        if self.eligible == 0:
            return 0.0
        return self.samples / self.eligible


def _eligible_blocks(replica, created_before):
    for event in replica.commit_tracker.commit_order:
        block = replica.store.maybe_get(event.block_id)
        if block is None or block.is_genesis():
            continue
        if created_before is not None and block.created_at > created_before:
            continue
        yield event, block


def regular_commit_latency(cluster, created_before: float | None = None):
    """Mean creation-to-commit latency over all blocks over observers."""
    total = 0.0
    count = 0
    for replica in cluster.observer_replicas():
        if replica.crashed:
            continue
        for event, _block in _eligible_blocks(replica, created_before):
            total += event.latency()
            count += 1
    return (total / count if count else None), count


def strong_commit_latency(
    cluster, level: int, created_before: float | None = None
) -> tuple:
    """Mean creation-to-``level``-strong latency; returns (mean, n, eligible)."""
    total = 0.0
    count = 0
    eligible = 0
    for replica in cluster.observer_replicas():
        if replica.crashed:
            continue
        tracker = replica.commit_tracker
        for _event, block in _eligible_blocks(replica, created_before):
            eligible += 1
            timeline = tracker.timeline_of(block.id())
            if timeline is None:
                continue
            latency = timeline.latency_to(level)
            if latency is None:
                continue
            total += latency
            count += 1
    return (total / count if count else None), count, eligible


def strong_latency_series(
    cluster,
    ratios,
    created_before: float | None = None,
) -> list:
    """A full Figure-7-style series: one LatencyReport per ratio."""
    f = cluster.config.resolved_f()
    series = []
    for ratio in ratios:
        level = level_for_ratio(ratio, f)
        mean, count, eligible = strong_commit_latency(
            cluster, level, created_before
        )
        series.append(
            LatencyReport(
                ratio=ratio,
                level=level,
                mean_latency=mean,
                samples=count,
                eligible=eligible,
            )
        )
    return series


def percentile(samples, quantile: float) -> float | None:
    """Deterministic nearest-rank percentile of ``samples``.

    Sorted-sample nearest-rank (``ceil(q·n)``-th value, 1-indexed):
    no interpolation, so the result is always an actual sample and the
    computation is byte-stable across platforms and worker counts.
    Returns ``None`` on empty input.  ``quantile`` must lie in
    ``(0, 1]``: values outside would silently clamp to the minimum or
    maximum sample, which is never what the caller meant.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile!r}")
    if not samples:
        return None
    ordered = sorted(samples)
    rank = -(-len(ordered) * quantile // 1)  # ceil without math
    return ordered[min(len(ordered), int(rank)) - 1]


def commit_latency_percentiles(
    cluster, quantiles=(0.5, 0.99), created_before: float | None = None
) -> dict:
    """Creation-to-commit latency percentiles over observer commits.

    Returns ``{quantile: latency_or_None}`` over the same eligible
    block set :func:`regular_commit_latency` averages.
    """
    samples = []
    for replica in cluster.observer_replicas():
        if replica.crashed:
            continue
        for event, _block in _eligible_blocks(replica, created_before):
            samples.append(event.latency())
    return {quantile: percentile(samples, quantile) for quantile in quantiles}


def throughput_txps(cluster, duration: float | None = None) -> float:
    """Committed transactions per second, averaged over observers."""
    horizon = duration if duration is not None else cluster.simulator.now
    if horizon <= 0:
        return 0.0
    observers = [r for r in cluster.observer_replicas() if not r.crashed]
    if not observers:
        return 0.0
    total = sum(replica.committed_tx_count() for replica in observers)
    return total / len(observers) / horizon


def messages_per_committed_block(cluster) -> float:
    """Network messages divided by distinct committed blocks (E5)."""
    observers = [r for r in cluster.observer_replicas() if not r.crashed]
    if not observers:
        return float("inf")
    blocks = max(len(replica.commit_tracker.commit_order) for replica in observers)
    if blocks == 0:
        return float("inf")
    return cluster.network.messages_sent / blocks


def check_commit_safety(replicas) -> None:
    """Assert BFT SMR safety across replicas.

    No two replicas may commit different blocks at the same height
    (Section 2), and each replica's own committed sequence must be
    consistent (a single chain).  Raises ``AssertionError`` with a
    diagnostic on violation.
    """
    by_height: dict[int, object] = {}
    for replica in replicas:
        for event in replica.commit_tracker.commit_order:
            existing = by_height.get(event.height)
            if existing is None:
                by_height[event.height] = event.block_id
            elif existing != event.block_id:
                raise AssertionError(
                    f"safety violation at height {event.height}: "
                    f"replica {replica.replica_id} committed "
                    f"{event.block_id.short()} but another replica committed "
                    f"{existing.short()}"
                )


def strong_commit_safety_violations(replicas, actual_faults: int) -> list:
    """Definition 1 check: conflicting strong commits under ``t`` faults.

    Returns a list of (level, block_a, block_b) tuples for every pair
    of conflicting blocks both strong committed at levels ``>= t``
    across any two replicas.  An empty list means SFT safety held.
    """
    violations = []
    strong: dict = {}
    for replica in replicas:
        for block_id, timeline in replica.commit_tracker.timelines():
            if timeline.current >= actual_faults:
                stored = strong.get(block_id)
                if stored is None or timeline.current > stored[0]:
                    strong[block_id] = (timeline.current, replica)
    items = list(strong.items())
    for i, (block_a, (level_a, replica_a)) in enumerate(items):
        store = replica_a.store
        for block_b, (level_b, _replica_b) in items[i + 1:]:
            if block_a not in store or block_b not in store:
                continue
            if store.conflicts(block_a, block_b):
                violations.append((min(level_a, level_b), block_a, block_b))
    return violations

"""Experiment runtime: cluster construction, workload, and metrics."""

from repro.runtime.client import ClientWorkload, CommitFeedback, Mempool
from repro.runtime.cluster import Cluster
from repro.runtime.config import ExperimentConfig, build_cluster
from repro.runtime.conflict_policy import ConflictAwareMempool
from repro.runtime.metrics import (
    LatencyReport,
    check_commit_safety,
    regular_commit_latency,
    strong_commit_latency,
    strong_latency_series,
    throughput_txps,
)
from repro.obs import TraceLog

__all__ = [
    "ExperimentConfig",
    "build_cluster",
    "Cluster",
    "Mempool",
    "ClientWorkload",
    "CommitFeedback",
    "ConflictAwareMempool",
    "TraceLog",
    "LatencyReport",
    "check_commit_safety",
    "regular_commit_latency",
    "strong_commit_latency",
    "strong_latency_series",
    "throughput_txps",
]

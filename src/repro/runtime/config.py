"""Declarative experiment configuration.

:class:`ExperimentConfig` captures one simulated deployment — protocol,
replica count, geo topology, network behaviour, and protocol knobs —
and :func:`build_cluster` turns it into a ready-to-run
:class:`~repro.runtime.cluster.Cluster`.

The defaults mirror the paper's evaluation: ``n = 100`` (``f = 33``),
1000-transaction / 450 KB blocks, round-robin leaders.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.net.network import Network, NetworkConfig
from repro.net.simulator import Simulator
from repro.net.topology import (
    AsymmetricTopology,
    RegionTopology,
    SymmetricTopology,
    Topology,
    UniformTopology,
)
from repro.protocols.base import ReplicaConfig
from repro.protocols.streamlet.replica import StreamletConfig

PROTOCOLS = ("diembft", "sft-diembft", "fbft", "streamlet", "sft-streamlet")


@dataclass(slots=True)
class ExperimentConfig:
    """One simulated experiment.

    ``topology`` is ``"uniform"``, ``"symmetric"``, ``"asymmetric"``
    (Figure 6), or ``"regions"`` (custom ``region_sizes`` with a flat
    cross-region delay of ``delta``); ``delta`` is the inter-region
    delay δ.  ``observers`` selects which replicas pay for
    endorsement/strength bookkeeping: ``"all"``, an integer stride
    (every k-th replica), or an explicit iterable of ids.

    ``partition_schedule`` holds ``(groups, start, end)`` entries —
    each partitions the replica set into ``groups`` during the
    ``[start, end)`` window and heals afterwards (late delivery, see
    :meth:`repro.net.network.Network.add_partition`).
    """

    protocol: str = "sft-diembft"
    n: int = 100
    f: int | None = None
    # Topology (Figure 6).
    topology: str = "symmetric"
    delta: float = 0.100
    region_sizes: tuple = ()
    intra_delay: float = 0.001
    ab_delay: float = 0.020
    uniform_delay: float = 0.010
    # Network behaviour.
    jitter: float = 0.002
    bandwidth_bytes_per_sec: float = 0.0
    processing_delay: float = 0.0
    gst: float = 0.0
    pre_gst_delay: float = 0.0
    # At-least-once delivery faults (default off, byte-identical when
    # off): per-unicast duplication probability and the extra-delay
    # window that lets messages overtake each other.
    duplicate_rate: float = 0.0
    reorder_window: float = 0.0
    # Protocol knobs.
    round_timeout: float = 1.0
    timeout_multiplier: float = 1.5
    max_timeout: float = 8.0
    qc_extra_wait: float = 0.0
    generalized_intervals: bool = False
    interval_window: int | None = None
    naive_accounting: bool = False
    verify_signatures: bool = True
    drop_stale_messages: bool = True
    block_batch_count: int = 1000
    block_batch_bytes: int = 450_000
    streamlet_round_duration: float | None = None
    # Block-sync / catch-up subprotocol (repro.sync); off preserves the
    # pre-sync runs byte-for-byte.
    sync_enabled: bool = True
    # Throughput program: real-transaction workload, batching,
    # pipelining, linear vote collection.  workload_rate = 0 keeps the
    # synthetic-payload path byte-for-byte; linear_votes off keeps the
    # all-to-all vote flow byte-for-byte.
    workload_rate: float = 0.0
    workload_payload_bytes: int = 64
    batch_size: int = 256
    max_batch_bytes: int = 0
    pipelined_proposals: bool = False
    linear_votes: bool = False
    # Checkpointing (repro.sync.checkpoint): every this-many commits
    # replicas sign state digests; 2f+1 matching digests truncate
    # history and enable snapshot joins.  0 keeps runs byte-for-byte.
    checkpoint_interval: int = 0
    # Observability (repro.obs): span-chain tracing level ("off",
    # "spans", "full") and the always-on per-replica flight-recorder
    # ring.  trace_level off keeps runs byte-for-byte; the flight ring
    # never feeds behaviour or metrics.
    trace_level: str = "off"
    flight_recorder: bool = True
    # Run control.
    duration: float = 60.0
    seed: int = 1
    observers: object = "all"
    crash_schedule: tuple = ()  # (replica_id, time) pairs
    # (replica_id, crash_time, restart_time) triples; non-empty turns
    # on the durable WAL disk and the restart machinery.
    recovery_schedule: tuple = ()
    partition_schedule: tuple = ()  # (groups, start, end) entries

    def resolved_f(self) -> int:
        return self.f if self.f is not None else (self.n - 1) // 3

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # derived pieces
    # ------------------------------------------------------------------

    def build_topology(self) -> Topology:
        if self.topology == "uniform":
            return UniformTopology(self.n, delay=self.uniform_delay)
        if self.topology == "symmetric":
            return SymmetricTopology(
                self.n, delta=self.delta, intra_delay=self.intra_delay
            )
        if self.topology == "asymmetric":
            if self.n != 100:
                raise ValueError(
                    "the asymmetric topology is defined for n=100 (45/45/10)"
                )
            return AsymmetricTopology(
                delta=self.delta,
                ab_delay=self.ab_delay,
                intra_delay=self.intra_delay,
            )
        if self.topology == "regions":
            sizes = tuple(self.region_sizes)
            if sum(sizes) != self.n:
                raise ValueError(
                    f"region_sizes {sizes} must sum to n={self.n}"
                )
            inter = {
                (i, j): self.delta
                for i in range(len(sizes))
                for j in range(i + 1, len(sizes))
            }
            return RegionTopology(sizes, inter, intra_delay=self.intra_delay)
        raise ValueError(f"unknown topology {self.topology!r}")

    def network_config(self) -> NetworkConfig:
        return NetworkConfig(
            jitter=self.jitter,
            seed=self.seed,
            gst=self.gst,
            pre_gst_delay=self.pre_gst_delay,
            bandwidth_bytes_per_sec=self.bandwidth_bytes_per_sec,
            processing_delay=self.processing_delay,
            duplicate_rate=self.duplicate_rate,
            reorder_window=self.reorder_window,
        )

    def observer_ids(self) -> tuple:
        if self.observers == "all":
            return tuple(range(self.n))
        if isinstance(self.observers, int):
            stride = max(1, self.observers)
            return tuple(range(0, self.n, stride))
        return tuple(self.observers)

    def replica_config(self, replica_id: int) -> ReplicaConfig:
        observing = replica_id in set(self.observer_ids())
        common = dict(
            n=self.n,
            f=self.resolved_f(),
            round_timeout=self.round_timeout,
            timeout_multiplier=self.timeout_multiplier,
            max_timeout=self.max_timeout,
            qc_extra_wait=self.qc_extra_wait,
            generalized_intervals=self.generalized_intervals,
            interval_window=self.interval_window,
            observer=observing,
            naive_endorsement=self.naive_accounting,
            verify_signatures=self.verify_signatures,
            drop_stale_messages=self.drop_stale_messages,
            block_batch_count=self.block_batch_count,
            block_batch_bytes=self.block_batch_bytes,
            sync_enabled=self.sync_enabled,
            batch_size=self.batch_size,
            max_batch_bytes=self.max_batch_bytes,
            pipelined_proposals=self.pipelined_proposals,
            linear_votes=self.linear_votes,
            checkpoint_interval=self.checkpoint_interval,
            trace_level=self.trace_level,
            flight_recorder=self.flight_recorder,
        )
        if self.protocol in ("streamlet", "sft-streamlet"):
            duration = self.streamlet_round_duration
            if duration is None:
                duration = 2.0 * (self._max_delay() + self.jitter) + 0.005
            return StreamletConfig(round_duration=duration, **common)
        return ReplicaConfig(**common)

    def _max_delay(self) -> float:
        topology = self.build_topology()
        candidates = [self.intra_delay]
        if self.topology == "uniform":
            candidates.append(self.uniform_delay)
        else:
            candidates.extend([self.delta, self.ab_delay])
        del topology
        return max(candidates)


def build_cluster(config: ExperimentConfig, replica_overrides: dict | None = None):
    """Construct a :class:`~repro.runtime.cluster.Cluster` from ``config``.

    This is the single factory path: every runnable cluster — honest,
    Byzantine (via ``replica_overrides``), partitioned (via
    ``config.partition_schedule``) — comes through here, whether the
    caller is a test, an example, the CLI, or the campaign engine.
    """
    from repro.crypto.registry import KeyRegistry
    from repro.runtime.cluster import Cluster

    if config.protocol not in PROTOCOLS:
        raise ValueError(
            f"unknown protocol {config.protocol!r}; expected one of {PROTOCOLS}"
        )
    simulator = Simulator()
    topology = config.build_topology()
    network = Network(simulator, topology, config.network_config())
    registry = KeyRegistry(config.n)
    return Cluster(
        config=config,
        simulator=simulator,
        topology=topology,
        network=network,
        registry=registry,
        replica_overrides=replica_overrides,
    )

"""A simulated cluster of replicas plus fault-injection hooks."""

from __future__ import annotations

from repro.protocols.base import ReplicaContext
from repro.protocols.diembft.replica import DiemBFTReplica
from repro.protocols.fbft.replica import FBFTDiemBFTReplica
from repro.protocols.sft_diembft.replica import SFTDiemBFTReplica
from repro.protocols.sft_streamlet.replica import SFTStreamletReplica
from repro.protocols.streamlet.replica import StreamletReplica

_PROTOCOL_CLASSES = {
    "diembft": DiemBFTReplica,
    "sft-diembft": SFTDiemBFTReplica,
    "fbft": FBFTDiemBFTReplica,
    "streamlet": StreamletReplica,
    "sft-streamlet": SFTStreamletReplica,
}


class Cluster:
    """Replicas, network, and simulator wired together.

    ``replica_overrides`` maps replica ids to alternative replica
    classes (adversarial behaviours from :mod:`repro.adversary`);
    they receive the same ``(config, context)`` constructor arguments.
    Overrides may be supplied at construction time (the
    :func:`~repro.runtime.config.build_cluster` factory path) or to
    :meth:`build` directly; the ``build`` argument wins.
    """

    def __init__(
        self,
        config,
        simulator,
        topology,
        network,
        registry,
        replica_overrides: dict | None = None,
    ):
        self.config = config
        self.simulator = simulator
        self.topology = topology
        self.network = network
        self.registry = registry
        self.replicas: list = []
        self.replica_overrides = dict(replica_overrides or {})
        self.byzantine_ids: frozenset = frozenset()
        self.workload = None  # KVWorkload when workload_rate > 0
        self.trace = None  # shared TraceLog when trace_level != "off"
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self, replica_overrides: dict | None = None) -> "Cluster":
        """Instantiate and register every replica (idempotent)."""
        if self._built:
            return self
        overrides = (
            self.replica_overrides
            if replica_overrides is None
            else dict(replica_overrides)
        )
        self.byzantine_ids = frozenset(overrides)
        if getattr(self.config, "trace_level", "off") != "off":
            from repro.obs import TraceLog

            self.trace = TraceLog()
        default_class = _PROTOCOL_CLASSES[self.config.protocol]
        for replica_id in range(self.config.n):
            context = ReplicaContext(
                replica_id, self.network, self.simulator, self.registry,
                trace=self.trace,
            )
            replica_class = overrides.get(replica_id, default_class)
            replica = replica_class(self.config.replica_config(replica_id), context)
            self.replicas.append(replica)
            self.network.register(replica_id, replica)
        for groups, start, end in getattr(self.config, "partition_schedule", ()):
            self.network.add_partition(groups, start, end)
        if getattr(self.config, "workload_rate", 0.0) > 0:
            from repro.runtime.workload import KVWorkload

            self.workload = KVWorkload(
                self,
                rate=self.config.workload_rate,
                payload_bytes=self.config.workload_payload_bytes,
                seed=self.config.seed,
            )
        self._built = True
        return self

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, duration: float | None = None) -> "Cluster":
        """Start every replica at t=0 and run to ``duration`` seconds."""
        if not self._built:
            self.build()
        horizon = duration if duration is not None else self.config.duration
        for replica in self.replicas:
            self.simulator.schedule_at(self.simulator.now, replica.start)
        if self.workload is not None:
            self.workload.start()
        for replica_id, crash_time in self.config.crash_schedule:
            self.simulator.schedule_at(
                crash_time, self.replicas[replica_id].crash
            )
        self.simulator.run_until(horizon)
        return self

    def run_more(self, extra: float) -> "Cluster":
        """Continue a finished run for ``extra`` simulated seconds."""
        self.simulator.run_until(self.simulator.now + extra)
        return self

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def observer_replicas(self) -> list:
        ids = set(self.config.observer_ids())
        return [replica for replica in self.replicas if replica.replica_id in ids]

    def honest_replicas(self) -> list:
        return [replica for replica in self.replicas if not replica.crashed]

    def correct_replicas(self) -> list:
        """Replicas that are neither crashed nor behaviour-overridden."""
        return [
            replica
            for replica in self.replicas
            if not replica.crashed and replica.replica_id not in self.byzantine_ids
        ]

    def replica(self, replica_id: int):
        return self.replicas[replica_id]

    def message_stats(self) -> dict:
        return self.network.stats()

"""A simulated cluster of replicas plus fault-injection hooks."""

from __future__ import annotations

from repro.net.sim import SimClock, SimTransport
from repro.protocols.base import ReplicaContext
from repro.protocols.diembft.replica import DiemBFTReplica
from repro.protocols.fbft.replica import FBFTDiemBFTReplica
from repro.protocols.sft_diembft.replica import SFTDiemBFTReplica
from repro.protocols.sft_streamlet.replica import SFTStreamletReplica
from repro.protocols.streamlet.replica import StreamletReplica

_PROTOCOL_CLASSES = {
    "diembft": DiemBFTReplica,
    "sft-diembft": SFTDiemBFTReplica,
    "fbft": FBFTDiemBFTReplica,
    "streamlet": StreamletReplica,
    "sft-streamlet": SFTStreamletReplica,
}


class Cluster:
    """Replicas, network, and simulator wired together.

    ``replica_overrides`` maps replica ids to alternative replica
    classes (adversarial behaviours from :mod:`repro.adversary`);
    they receive the same ``(config, context)`` constructor arguments.
    Overrides may be supplied at construction time (the
    :func:`~repro.runtime.config.build_cluster` factory path) or to
    :meth:`build` directly; the ``build`` argument wins.
    """

    def __init__(
        self,
        config,
        simulator,
        topology,
        network,
        registry,
        replica_overrides: dict | None = None,
    ):
        self.config = config
        self.simulator = simulator
        self.topology = topology
        self.network = network
        self.registry = registry
        # The replica-facing seam: replicas only ever see these two
        # adapters, never the Network/Simulator pair directly.
        self.transport = SimTransport(network)
        self.clock = SimClock(simulator)
        self.replicas: list = []
        self.replica_overrides = dict(replica_overrides or {})
        self.byzantine_ids: frozenset = frozenset()
        self.workload = None  # KVWorkload when workload_rate > 0
        self.trace = None  # shared TraceLog when trace_level != "off"
        # Crash-recovery: the simulated stable storage (DurableDisk)
        # when the config carries a recovery schedule, else None (the
        # default — zero WAL work, byte-identical replay).
        self.durable = None
        self.restarts = 0
        self.amnesia_restarts = 0
        self._built = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self, replica_overrides: dict | None = None) -> "Cluster":
        """Instantiate and register every replica (idempotent)."""
        if self._built:
            return self
        overrides = (
            self.replica_overrides
            if replica_overrides is None
            else dict(replica_overrides)
        )
        self.byzantine_ids = frozenset(overrides)
        if getattr(self.config, "trace_level", "off") != "off":
            from repro.obs import TraceLog

            self.trace = TraceLog()
        if getattr(self.config, "recovery_schedule", ()):
            from repro.types.wal import DurableDisk

            self.durable = DurableDisk()
        default_class = _PROTOCOL_CLASSES[self.config.protocol]
        for replica_id in range(self.config.n):
            context = ReplicaContext(
                replica_id, self.transport, self.clock, self.registry,
                trace=self.trace,
                durable=(
                    self.durable.state_for(replica_id)
                    if self.durable is not None
                    else None
                ),
            )
            replica_class = overrides.get(replica_id, default_class)
            replica = replica_class(self.config.replica_config(replica_id), context)
            self.replicas.append(replica)
            self.network.register(replica_id, replica)
        for groups, start, end in getattr(self.config, "partition_schedule", ()):
            self.network.add_partition(groups, start, end)
        if getattr(self.config, "workload_rate", 0.0) > 0:
            from repro.runtime.workload import KVWorkload

            self.workload = KVWorkload(
                self,
                rate=self.config.workload_rate,
                payload_bytes=self.config.workload_payload_bytes,
                seed=self.config.seed,
            )
        self._built = True
        return self

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, duration: float | None = None) -> "Cluster":
        """Start every replica at t=0 and run to ``duration`` seconds."""
        if not self._built:
            self.build()
        horizon = duration if duration is not None else self.config.duration
        for replica in self.replicas:
            self.simulator.schedule_at(self.simulator.now, replica.start)
        if self.workload is not None:
            self.workload.start()
        for replica_id, crash_time in self.config.crash_schedule:
            self.simulator.schedule_at(
                crash_time, self.replicas[replica_id].crash
            )
        for entry in getattr(self.config, "recovery_schedule", ()):
            replica_id, crash_time, restart_time = entry
            # Indirection through self.replicas: restart replaces the
            # instance, so later events must not capture it eagerly.
            self.simulator.schedule_at(
                crash_time, self._crash_current, replica_id
            )
            self.simulator.schedule_at(
                restart_time, self.restart_replica, replica_id
            )
        self.simulator.run_until(horizon)
        return self

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def _crash_current(self, replica_id: int) -> None:
        self.replicas[replica_id].crash()

    def restart_replica(self, replica_id: int):
        """Rebuild a crashed replica in place and rejoin it.

        The replacement instance starts from *empty volatile state* —
        fresh block store, fresh vote buckets, fresh pacemaker — and
        recovers exactly what the WAL holds (unless the replica class
        opts out via ``wal_restore = False``: the scripted amnesia
        differential).  It then rejoins through the ordinary block-sync
        / snapshot path rather than by replaying history.
        """
        if self.durable is None:
            raise RuntimeError(
                "restart_replica needs a recovery schedule (durable disk)"
            )
        replica_class = self.replica_overrides.get(
            replica_id, _PROTOCOL_CLASSES[self.config.protocol]
        )
        restores = getattr(replica_class, "wal_restore", True)
        context = ReplicaContext(
            replica_id, self.transport, self.clock, self.registry,
            trace=self.trace,
            # An amnesiac lost the disk: its rebirth neither reads nor
            # writes the WAL, so it behaves exactly like a pre-WAL node.
            durable=(
                self.durable.state_for(replica_id) if restores else None
            ),
        )
        replica = replica_class(
            self.config.replica_config(replica_id), context
        )
        self.replicas[replica_id] = replica
        self.network.register(replica_id, replica)
        if restores:
            state = self.durable.peek(replica_id)
            if state is not None:
                replica.restore_from_wal(state)
            self.restarts += 1
        else:
            self.amnesia_restarts += 1
        if replica.tracer is not None:
            replica.tracer.emit(
                self.simulator.now, "restart",
                detail="wal" if restores else "amnesia",
            )
        replica.start()
        replica.rejoin_after_restart()
        return replica

    def run_more(self, extra: float) -> "Cluster":
        """Continue a finished run for ``extra`` simulated seconds."""
        self.simulator.run_until(self.simulator.now + extra)
        return self

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def observer_replicas(self) -> list:
        ids = set(self.config.observer_ids())
        return [replica for replica in self.replicas if replica.replica_id in ids]

    def honest_replicas(self) -> list:
        return [replica for replica in self.replicas if not replica.crashed]

    def correct_replicas(self) -> list:
        """Replicas that are neither crashed nor behaviour-overridden."""
        return [
            replica
            for replica in self.replicas
            if not replica.crashed and replica.replica_id not in self.byzantine_ids
        ]

    def replica(self, replica_id: int):
        return self.replicas[replica_id]

    def message_stats(self) -> dict:
        return self.network.stats()

"""Client workload: transactions, mempools, and a load generator.

The paper's evaluation keeps leaders saturated ("sufficiently many
transactions are generated ... so that any leader always has enough
transactions").  Large benchmarks therefore use synthetic
:class:`~repro.types.transaction.TxBatch` payloads; the classes here
provide *real* transaction flow for the examples and the end-to-end
tests: clients submit :class:`~repro.types.transaction.Transaction`
objects to replica mempools, leaders drain them into block payloads,
and commit events acknowledge them.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.types.transaction import Payload, Transaction


class Mempool:
    """FIFO pool of pending client transactions for one replica.

    Drains are capped by ``max_block_transactions`` and, when non-zero,
    ``max_block_bytes`` (a payload always takes at least one
    transaction so a jumbo entry cannot wedge the queue).

    ``pipelined`` selects the drain discipline.  Off is stop-and-wait
    re-proposal: every drain copies the unacknowledged front of the
    queue, so a leader re-ships the same batch until commit feedback
    removes it.  On marks drained transactions *in flight* for
    ``inflight_timeout`` seconds and skips them in later drains, so
    consecutive proposals carry fresh batches — the pipelining that
    lets a leader propose round ``r+1``'s transactions before round
    ``r`` commits.  Transactions whose proposal went nowhere (failed
    round, crashed leader) become eligible again when the timeout
    lapses; nothing is lost either way because entries only leave the
    pool on commit.
    """

    def __init__(
        self,
        max_block_transactions: int = 1000,
        max_block_bytes: int = 0,
        pipelined: bool = False,
        inflight_timeout: float = 1.0,
    ) -> None:
        self.max_block_transactions = max_block_transactions
        self.max_block_bytes = max_block_bytes
        self.pipelined = pipelined
        self.inflight_timeout = inflight_timeout
        self._pending: OrderedDict = OrderedDict()
        self._in_flight: dict = {}  # txid -> eligibility deadline
        self.submitted = 0

    def submit(self, transaction: Transaction) -> None:
        self._pending[transaction.txid()] = transaction
        self.submitted += 1

    def pending_count(self) -> int:
        return len(self._pending)

    def remove_committed(self, transactions) -> None:
        """Drop transactions that made it into a committed block."""
        for transaction in transactions:
            txid = transaction.txid()
            self._pending.pop(txid, None)
            self._in_flight.pop(txid, None)

    def make_payload(self, now: float) -> Payload:
        """Drain up to a block's worth of transactions into a payload.

        Transactions stay pending until committed (leaders of failed
        rounds must not lose them), so this *copies* the front of the
        queue rather than popping it.
        """
        in_flight = self._in_flight
        if self.pipelined and in_flight:
            expired = [
                txid for txid, deadline in in_flight.items() if deadline <= now
            ]
            for txid in expired:
                del in_flight[txid]
        front = []
        size = 0
        max_bytes = self.max_block_bytes
        for txid, transaction in self._pending.items():
            if self.pipelined and txid in in_flight:
                continue
            tx_size = transaction.size_bytes()
            if front and max_bytes and size + tx_size > max_bytes:
                break
            front.append((txid, transaction))
            size += tx_size
            if len(front) >= self.max_block_transactions:
                break
        if self.pipelined:
            deadline = now + self.inflight_timeout
            for txid, _transaction in front:
                in_flight[txid] = deadline
        return Payload(
            transactions=tuple(transaction for _txid, transaction in front)
        )


class CommitFeedback:
    """Drains committed transactions out of replica mempools.

    Polls each replica's commit log on a simulated-time interval and
    calls :meth:`Mempool.remove_committed` so leaders stop re-proposing
    transactions that already made it into the chain.
    """

    def __init__(self, cluster, mempools: dict, interval: float = 0.05):
        self.cluster = cluster
        self.mempools = mempools
        self.interval = interval
        self._cursors = {replica.replica_id: 0 for replica in cluster.replicas}

    def start(self) -> None:
        self.cluster.simulator.schedule_at(self.interval, self._tick)

    def _tick(self) -> None:
        for replica in self.cluster.replicas:
            if replica.crashed:
                continue
            mempool = self.mempools.get(replica.replica_id)
            if mempool is None:
                continue
            commit_order = replica.commit_tracker.commit_order
            cursor = self._cursors[replica.replica_id]
            while cursor < len(commit_order):
                event = commit_order[cursor]
                cursor += 1
                block = replica.store.maybe_get(event.block_id)
                if block is not None and block.payload.transactions:
                    mempool.remove_committed(block.payload.transactions)
            self._cursors[replica.replica_id] = cursor
        self.cluster.simulator.schedule_in(self.interval, self._tick)


class ClientWorkload:
    """Open-loop transaction generator over a cluster.

    Submits ``rate`` transactions per second round-robin across
    replicas' mempools and rewires each replica's ``payload_source`` to
    drain its mempool.  Commit acknowledgement (end-to-end transaction
    latency) is measured against the *first* honest replica to commit
    the transaction's block.
    """

    def __init__(self, cluster, rate: float = 2000.0, payload_bytes: int = 64):
        self.cluster = cluster
        self.rate = rate
        self.payload_bytes = payload_bytes
        self.mempools: dict[int, Mempool] = {}
        self.sequence = 0
        self._interval = 1.0 / rate if rate > 0 else 0.0
        for replica in cluster.replicas:
            mempool = Mempool()
            self.mempools[replica.replica_id] = mempool
            replica.payload_source = mempool.make_payload

    def start(self) -> None:
        if self._interval > 0:
            self.cluster.simulator.schedule_at(0.0, self._tick)

    def _tick(self) -> None:
        simulator = self.cluster.simulator
        transaction = Transaction(
            client_id=0,
            sequence=self.sequence,
            payload=b"x" * self.payload_bytes,
            submitted_at=simulator.now,
        )
        self.sequence += 1
        target = self.sequence % len(self.cluster.replicas)
        replica = self.cluster.replicas[target]
        if not replica.crashed:
            self.mempools[target].submit(transaction)
        simulator.schedule_in(self._interval, self._tick)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def end_to_end_latencies(self) -> list:
        """Submit-to-first-commit latency for every acknowledged txn."""
        first_commit: dict = {}
        for replica in self.cluster.honest_replicas():
            for event in replica.commit_tracker.commit_order:
                block = replica.store.maybe_get(event.block_id)
                if block is None:
                    continue
                for transaction in block.payload.transactions:
                    txid = transaction.txid()
                    seen = first_commit.get(txid)
                    if seen is None or event.committed_at < seen[0]:
                        first_commit[txid] = (
                            event.committed_at,
                            transaction.submitted_at,
                        )
        return [commit - submit for commit, submit in first_commit.values()]

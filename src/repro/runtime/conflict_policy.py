"""Conflicting-transaction deferral (Section 5).

With strong commits, a later low-assurance transaction can commit
before an earlier high-assurance one ("txn2 is f-strong committed
before txn1 is 2f-strong committed"), which is dangerous when the two
conflict (same account, say).  The paper's remedy: "the protocol can
ask the leader to propose conflicting transactions only after the
block containing the earlier transaction is already strong committed".

:class:`ConflictAwareMempool` implements that leader-side policy.
Transactions are submitted with an optional ``conflict_key`` (e.g. the
sender account) and a ``required_strength``; a transaction is held
back while any earlier same-key transaction has not yet landed in a
block strong-committed to its required level.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.types.transaction import Payload, Transaction


@dataclass(slots=True)
class _TrackedTransaction:
    transaction: Transaction
    conflict_key: object
    required_strength: int
    included_in: object = None  # BlockId once seen in a committed block
    satisfied: bool = field(default=False)


class ConflictAwareMempool:
    """Mempool with the Section 5 conflicting-transaction policy.

    ``bind(replica)`` connects the pool to one replica: payloads drain
    from the pool, and strength queries go to the replica's commit
    tracker.  The pool scans newly committed blocks to learn where its
    transactions landed.
    """

    def __init__(self, max_block_transactions: int = 1000) -> None:
        self.max_block_transactions = max_block_transactions
        self._pending: OrderedDict = OrderedDict()
        self._tracked: dict = {}
        self._replica = None
        self._commit_cursor = 0
        self.deferred_count = 0

    def bind(self, replica) -> "ConflictAwareMempool":
        self._replica = replica
        replica.payload_source = self.make_payload
        return self

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        transaction: Transaction,
        conflict_key=None,
        required_strength: int = 0,
    ) -> None:
        """Queue ``transaction``; high-value ones declare their needs.

        ``required_strength`` is the x level the containing block must
        reach before *later* transactions with the same ``conflict_key``
        may be proposed.
        """
        txid = transaction.txid()
        self._pending[txid] = transaction
        self._tracked[txid] = _TrackedTransaction(
            transaction=transaction,
            conflict_key=conflict_key,
            required_strength=required_strength,
        )

    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # chain feedback
    # ------------------------------------------------------------------

    def _refresh_inclusions(self) -> None:
        """Scan newly committed blocks for our transactions."""
        if self._replica is None:
            return
        commit_order = self._replica.commit_tracker.commit_order
        store = self._replica.store
        while self._commit_cursor < len(commit_order):
            event = commit_order[self._commit_cursor]
            self._commit_cursor += 1
            block = store.maybe_get(event.block_id)
            if block is None:
                continue
            for transaction in block.payload.transactions:
                tracked = self._tracked.get(transaction.txid())
                if tracked is not None and tracked.included_in is None:
                    tracked.included_in = event.block_id

    def _is_blocking(self, tracked: _TrackedTransaction) -> bool:
        """Does this earlier transaction still hold back its key?"""
        if tracked.satisfied or tracked.conflict_key is None:
            return False
        if tracked.required_strength <= 0:
            return False
        if tracked.included_in is None:
            return True  # not yet committed anywhere
        strength = self._replica.commit_tracker.strength_of(tracked.included_in)
        if strength >= tracked.required_strength:
            tracked.satisfied = True
            return False
        return True

    # ------------------------------------------------------------------
    # payload production (the leader-side rule)
    # ------------------------------------------------------------------

    def make_payload(self, now: float) -> Payload:
        del now
        self._refresh_inclusions()
        chosen = []
        blocked_keys = set()
        for txid, transaction in self._pending.items():
            tracked = self._tracked[txid]
            key = tracked.conflict_key
            if key is not None:
                if key in blocked_keys:
                    self.deferred_count += 1
                    continue
                if tracked.included_in is not None and not self._is_blocking(
                    tracked
                ):
                    # Already committed and satisfied; drop from pending.
                    continue
                if tracked.included_in is not None:
                    # In flight, waiting on strength: blocks later txns.
                    blocked_keys.add(key)
                    self.deferred_count += 1
                    continue
                # Not yet included: propose it, and hold back later
                # same-key transactions if it demands strength.
                chosen.append(transaction)
                if tracked.required_strength > 0:
                    blocked_keys.add(key)
            else:
                chosen.append(transaction)
            if len(chosen) >= self.max_block_transactions:
                break
        self._garbage_collect()
        return Payload(transactions=tuple(chosen))

    def _garbage_collect(self) -> None:
        """Drop satisfied transactions from the pending queue."""
        done = [
            txid
            for txid, tracked in self._tracked.items()
            if tracked.included_in is not None and not self._is_blocking(tracked)
        ]
        for txid in done:
            self._pending.pop(txid, None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def status_of(self, transaction: Transaction) -> str:
        """``pending`` / ``in-flight`` / ``satisfied`` / ``unknown``."""
        tracked = self._tracked.get(transaction.txid())
        if tracked is None:
            return "unknown"
        self._refresh_inclusions()
        if tracked.included_in is None:
            return "pending"
        if self._is_blocking(tracked):
            return "in-flight"
        return "satisfied"

"""Deterministic KV-store workload for throughput experiments.

:class:`KVWorkload` is the load generator behind the ``workload_rate``
scenario knob: an open-loop client submitting
:class:`~repro.app.kvstore.KVCommand` transactions round-robin into
per-replica :class:`~repro.runtime.client.Mempool` queues, with leaders
draining batches (``batch_size`` / ``max_batch_bytes``) into block
payloads and commit feedback acknowledging them.

Everything is deterministic: the command stream comes from its own
seeded RNG (keyed off the experiment seed, independent of the network
jitter stream), submissions tick on simulated time, and measurements
are pure functions of the committed chain — so campaign reports stay
byte-identical across runs and worker counts with the workload on.

Unlike :class:`~repro.runtime.client.ClientWorkload` (the examples'
synthetic-payload generator), this workload carries real, replayable
state-machine commands so committed throughput can be audited against
:class:`~repro.app.kvstore.LedgerExecutor` semantics: txs/sec counts
*unique* committed transactions, and re-proposed duplicates are
reported separately.
"""

from __future__ import annotations

import random

from repro.app.kvstore import KVCommand
from repro.runtime.client import CommitFeedback, Mempool

#: Bounded key space keeps set/del/transfer commands colliding enough
#: to exercise external validity (failed transfers) deterministically.
_KEY_SPACE = 256


class KVWorkload:
    """Open-loop deterministic KV transaction generator over a cluster.

    Submits ``rate`` transactions per second round-robin across
    replicas' mempools and rewires each replica's ``payload_source`` to
    drain its own mempool (capped by that replica's
    ``batch_size``/``max_batch_bytes`` config, honouring its
    ``pipelined_proposals`` drain discipline).
    """

    def __init__(
        self,
        cluster,
        rate: float,
        payload_bytes: int = 64,
        seed: int = 0,
        feedback_interval: float = 0.05,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"workload rate must be positive, got {rate!r}")
        self.cluster = cluster
        self.rate = rate
        self.payload_bytes = payload_bytes
        self.rng = random.Random(f"kv-workload:{seed}")
        self.sequence = 0
        self.submitted = 0
        self._interval = 1.0 / rate
        self.mempools: dict[int, Mempool] = {}
        for replica in cluster.replicas:
            config = replica.config
            per_round = getattr(config, "round_duration", None)
            if not per_round:
                per_round = config.round_timeout
            mempool = Mempool(
                max_block_transactions=config.batch_size,
                max_block_bytes=config.max_batch_bytes,
                pipelined=config.pipelined_proposals,
                # In-flight entries outlive a full 3-chain commit plus
                # feedback lag before re-qualifying for proposals.
                inflight_timeout=8.0 * per_round,
            )
            self.mempools[replica.replica_id] = mempool
            replica.payload_source = mempool.make_payload
        self.feedback = CommitFeedback(
            cluster, self.mempools, interval=feedback_interval
        )

    def start(self) -> None:
        simulator = self.cluster.simulator
        simulator.schedule_at(simulator.now, self._tick)
        self.feedback.start()

    # ------------------------------------------------------------------
    # command stream
    # ------------------------------------------------------------------

    def _next_command(self) -> KVCommand:
        roll = self.rng.random()
        key = f"k{self.rng.randrange(_KEY_SPACE)}"
        if roll < 0.85:
            pad = "x" * max(0, self.payload_bytes - len(key) - 12)
            return KVCommand(op="set", key=key, value=f"{self.sequence}:{pad}")
        if roll < 0.95:
            other = f"k{self.rng.randrange(_KEY_SPACE)}"
            return KVCommand(op="transfer", key=key, key2=other, amount=1)
        return KVCommand(op="del", key=key)

    def _tick(self) -> None:
        simulator = self.cluster.simulator
        command = self._next_command()
        target = self.sequence % len(self.cluster.replicas)
        transaction = command.to_transaction(
            client_id=target,
            sequence=self.sequence,
            submitted_at=simulator.now,
        )
        self.sequence += 1
        replica = self.cluster.replicas[target]
        if not replica.crashed:
            self.mempools[target].submit(transaction)
            self.submitted += 1
        simulator.schedule_in(self._interval, self._tick)

    # ------------------------------------------------------------------
    # measurement (pure functions of the committed chain)
    # ------------------------------------------------------------------

    def committed_tx_stats(self, replica) -> tuple[int, int]:
        """``(unique, duplicates)`` committed through ``replica``'s log.

        ``unique`` counts distinct transaction ids in committed blocks
        (the exactly-once count a :class:`LedgerExecutor` applies);
        ``duplicates`` counts the re-proposed extra occurrences that
        wasted block space — the quantity pipelining suppresses.
        """
        seen: set = set()
        duplicates = 0
        for event in replica.commit_tracker.commit_order:
            block = replica.store.maybe_get(event.block_id)
            if block is None:
                continue
            for transaction in block.payload.transactions:
                txid = transaction.txid()
                if txid in seen:
                    duplicates += 1
                else:
                    seen.add(txid)
        return len(seen), duplicates

    def end_to_end_latencies(self) -> list:
        """Submit-to-first-commit latency for every acknowledged txn."""
        first_commit: dict = {}
        for replica in self.cluster.honest_replicas():
            for event in replica.commit_tracker.commit_order:
                block = replica.store.maybe_get(event.block_id)
                if block is None:
                    continue
                for transaction in block.payload.transactions:
                    txid = transaction.txid()
                    seen = first_commit.get(txid)
                    if seen is None or event.committed_at < seen[0]:
                        first_commit[txid] = (
                            event.committed_at,
                            transaction.submitted_at,
                        )
        return [commit - submit for commit, submit in first_commit.values()]

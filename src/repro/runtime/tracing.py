"""Structured event tracing for simulated runs.

Debugging a BFT protocol means asking "what did replica 7 see at
t = 3.2?"; this module answers it.  A :class:`TraceLog` collects
``(time, replica, kind, detail)`` tuples from instrumented replicas
with bounded memory, and supports filtered queries and round
reconstruction.  Tracing is opt-in (attach via :func:`attach_tracer`)
so production-size benchmarks pay nothing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TraceEvent:
    time: float
    replica_id: int
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:9.4f}] r{self.replica_id:<3} {self.kind:<12} {self.detail}"


class TraceLog:
    """Bounded in-memory event log shared by instrumented replicas."""

    def __init__(self, capacity: int = 100_000) -> None:
        self._events: deque = deque(maxlen=capacity)
        self.dropped = 0
        self.capacity = capacity

    def record(self, time: float, replica_id: int, kind: str, detail: str):
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(time=time, replica_id=replica_id, kind=kind,
                       detail=detail)
        )

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: str | None = None, replica_id: int | None = None,
               since: float = 0.0) -> list:
        """Filtered events in chronological order."""
        return [
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (replica_id is None or event.replica_id == replica_id)
            and event.time >= since
        ]

    def kinds(self) -> dict:
        """Histogram of event kinds."""
        histogram: dict = {}
        for event in self._events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    def round_timeline(self, replica_id: int) -> list:
        """(time, round) entries reconstructed from new-round events."""
        timeline = []
        for event in self.events(kind="new-round", replica_id=replica_id):
            round_number = int(event.detail.split()[0])
            timeline.append((event.time, round_number))
        return timeline


def attach_tracer(replica, trace: TraceLog) -> None:
    """Instrument one DiemBFT-family replica to emit trace events.

    Wraps the round, proposal, vote, commit and timeout paths; the
    replica's behaviour is unchanged.
    """
    original_new_round = replica._on_new_round
    original_maybe_vote = replica._maybe_vote
    original_local_timeout = replica._on_local_timeout
    original_certification = replica._on_new_certification

    def traced_new_round(round_number, reason):
        trace.record(
            replica.context.now, replica.replica_id, "new-round",
            f"{round_number} via {reason}",
        )
        original_new_round(round_number, reason)

    def traced_maybe_vote(msg):
        before = replica.r_vote
        original_maybe_vote(msg)
        if replica.r_vote > before:
            trace.record(
                replica.context.now, replica.replica_id, "vote",
                f"round {replica.r_vote} block {msg.block.id().short()}",
            )

    def traced_local_timeout(round_number):
        trace.record(
            replica.context.now, replica.replica_id, "timeout",
            f"round {round_number}",
        )
        original_local_timeout(round_number)

    def traced_certification(qc, now):
        commits_before = len(replica.commit_tracker.commit_order)
        trace.record(
            now, replica.replica_id, "qc",
            f"round {qc.round} block {qc.block_id.short()} "
            f"|votes|={len(qc.votes)}",
        )
        original_certification(qc, now)
        for event in replica.commit_tracker.commit_order[commits_before:]:
            trace.record(
                now, replica.replica_id, "commit",
                f"round {event.round} block {event.block_id.short()}",
            )

    replica._on_new_round = traced_new_round
    replica._maybe_vote = traced_maybe_vote
    replica._on_local_timeout = traced_local_timeout
    replica._on_new_certification = traced_certification
    # The pacemaker captured the original bound callbacks at replica
    # construction; rewire them too.
    replica.pacemaker._on_new_round = traced_new_round
    replica.pacemaker._on_local_timeout = traced_local_timeout

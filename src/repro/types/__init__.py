"""Core data model shared by every protocol in the library.

The types here implement Section 2.1 of the paper: blocks chained by
hash digests and quorum certificates, votes (plain and strong), quorum
and timeout certificates, and the fork-aware block store replicas keep.
"""

from repro.types.block import Block, BlockId, GENESIS_ROUND, make_genesis
from repro.types.chain import BlockStore, ChainError
from repro.types.messages import (
    Message,
    ProposalMsg,
    TimeoutMsg,
    VoteMsg,
)
from repro.types.quorum_cert import QuorumCertificate, TimeoutCertificate
from repro.types.transaction import Transaction, TxBatch
from repro.types.vote import StrongVote, Vote
from repro.types.wal import DurableDisk, DurableState

__all__ = [
    "Block",
    "BlockId",
    "GENESIS_ROUND",
    "make_genesis",
    "BlockStore",
    "ChainError",
    "Message",
    "ProposalMsg",
    "VoteMsg",
    "TimeoutMsg",
    "QuorumCertificate",
    "TimeoutCertificate",
    "Transaction",
    "TxBatch",
    "Vote",
    "StrongVote",
    "DurableDisk",
    "DurableState",
]

"""Quorum and timeout certificates.

A quorum certificate (QC) is a set of signed votes for one block from
``n - f = 2f + 1`` distinct replicas (Section 2.1).  In SFT mode the
votes are strong-votes, making the certificate a *strong-QC*
(Figure 4): the embedded markers are exactly the extra information the
endorsement tracker consumes.

A timeout certificate (TC) aggregates ``2f + 1`` timeout messages for
one round and justifies advancing past a leader that made no progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import HashDigest
from repro.crypto.registry import KeyRegistry


@dataclass(frozen=True, slots=True)
class QuorumCertificate:
    """Certificate that ``votes`` certify block ``block_id`` at ``round``.

    ``votes`` is a tuple of :class:`~repro.types.vote.Vote` or
    :class:`~repro.types.vote.StrongVote`; a QC whose votes are
    strong-votes is a strong-QC.  QCs are ranked by round (higher round
    ranks higher), per Section 2.1.
    """

    block_id: HashDigest
    round: int
    height: int
    votes: tuple = field(default_factory=tuple)
    _validate_memo: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def voters(self) -> frozenset:
        """The set of distinct replica ids that signed this QC."""
        return frozenset(vote.voter for vote in self.votes)

    def is_genesis(self) -> bool:
        """True for the bootstrap certificate of the genesis block."""
        return self.round == 0

    def is_strong(self) -> bool:
        """True when every vote carries strong-vote information."""
        return bool(self.votes) and all(
            hasattr(vote, "marker") for vote in self.votes
        )

    def ranks_higher_than(self, other: "QuorumCertificate") -> bool:
        """QC ranking used for ``qc_high`` updates (by round)."""
        return self.round > other.round

    def validate(self, registry: KeyRegistry, quorum: int) -> bool:
        """Check vote signatures, consistency, and quorum size.

        The genesis certificate is valid by definition.  Every vote must
        name this certificate's block and round, be signed by its
        claimed voter, and the distinct-voter count must reach
        ``quorum``.

        Validation is pure, so the verdict is memoized per certificate
        object: a QC object is shared by reference across the cluster,
        making re-validation by every receiving replica O(1) after
        first sight.  The memo is keyed on the exact ``(registry,
        quorum)`` pair and disabled alongside
        :attr:`KeyRegistry.memoize`.
        """
        if self.is_genesis():
            return True
        if KeyRegistry.memoize:
            memo = self._validate_memo
            if memo is not None and memo[0] is registry and memo[1] == quorum:
                return memo[2]
            result = self._validate_uncached(registry, quorum)
            object.__setattr__(self, "_validate_memo", (registry, quorum, result))
            return result
        return self._validate_uncached(registry, quorum)

    def _validate_uncached(self, registry: KeyRegistry, quorum: int) -> bool:
        block_id = self.block_id
        round_number = self.round
        for vote in self.votes:
            if vote.block_id != block_id or vote.block_round != round_number:
                return False
        return registry.verify_qc_votes(self.votes, quorum)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QC(round={self.round}, block={self.block_id.short()}, "
            f"|votes|={len(self.votes)})"
        )


@dataclass(frozen=True, slots=True)
class TimeoutCertificate:
    """Certificate that ``2f + 1`` replicas timed out of ``round``.

    ``highest_qc_round`` records the best QC round seen among the
    timeout messages; the next leader must propose extending a QC at
    least that high for honest replicas to vote.
    """

    round: int
    timeout_voters: frozenset
    highest_qc_round: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TC(round={self.round}, |voters|={len(self.timeout_voters)}, "
            f"hqc={self.highest_qc_round})"
        )

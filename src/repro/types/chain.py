"""Fork-aware block store.

Each replica keeps every block it has seen in a :class:`BlockStore`:
a tree rooted at genesis with parent pointers, per-block certification
state, and the ancestry queries the SFT machinery leans on
(``is_ancestor``, ``common_ancestor``, ``conflicts``).

Blocks that arrive before their parents (possible with Byzantine
leaders that equivocate selectively) are buffered as orphans and
inserted once the parent shows up.  The orphan pool is bounded: a
Byzantine peer can flood a replica with parentless garbage that never
becomes insertable, so past :data:`DEFAULT_ORPHAN_CAP` buffered blocks
the pool evicts deterministically, oldest round first.

With checkpointing enabled, :meth:`BlockStore.truncate_below` drops
every block outside the stable checkpoint's subtree, re-rooting the
store at the checkpoint block; ancestry walks stop gracefully at the
truncation boundary.
"""

from __future__ import annotations

from repro.types.block import Block, BlockId
from repro.types.quorum_cert import QuorumCertificate


class ChainError(Exception):
    """Raised on structurally invalid block-store operations."""


#: Maximum buffered parentless blocks before deterministic eviction.
DEFAULT_ORPHAN_CAP = 256


class BlockStore:
    """Tree of blocks with certification bookkeeping.

    The store is deliberately permissive: it records *every*
    structurally valid block, including equivocating ones — the voting
    rules, not the store, decide what is acceptable.
    """

    def __init__(
        self,
        genesis: Block,
        genesis_qc: QuorumCertificate,
        max_orphans: int = DEFAULT_ORPHAN_CAP,
    ) -> None:
        if not genesis.is_genesis():
            raise ChainError("block store must be rooted at a genesis block")
        if max_orphans < 1:
            raise ChainError("orphan cap must be at least 1")
        self.genesis_id = genesis.id()
        self._blocks: dict[BlockId, Block] = {self.genesis_id: genesis}
        self._children: dict[BlockId, list[BlockId]] = {self.genesis_id: []}
        self._qcs: dict[BlockId, QuorumCertificate] = {self.genesis_id: genesis_qc}
        self._orphans: dict[BlockId, list[Block]] = {}
        self._by_round: dict[int, list[BlockId]] = {genesis.round: [self.genesis_id]}
        self._by_height: dict[int, list[BlockId]] = {genesis.height: [self.genesis_id]}
        self.highest_certified_id: BlockId = self.genesis_id
        self.max_orphans = max_orphans
        self._orphan_total = 0
        #: Everything at or below this height has been truncated away;
        #: late-arriving blocks from pruned history are dropped, not
        #: buffered (they could never re-attach).
        self.truncated_height = -1
        #: High-water mark of live (stored) blocks — the memory-bound
        #: metric checkpoint truncation exists to hold down.
        self.peak_live_blocks = 1

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def add_block(self, block: Block) -> list:
        """Insert ``block``; returns the list of blocks newly inserted.

        The result includes ``block`` itself plus any buffered orphans
        that became insertable.  A duplicate returns ``[]``; a block
        whose parent is unknown is buffered (returns ``[]``) and
        inserted when the parent arrives.
        """
        block_id = block.id()
        if block_id in self._blocks:
            return []
        if block.parent_id is None:
            raise ChainError("cannot add a second genesis block")
        if block.parent_id not in self._blocks:
            self._buffer_orphan(block_id, block)
            return []
        self._insert(block_id, block)
        inserted = [block]
        inserted.extend(self._flush_orphans(block_id))
        return inserted

    def _buffer_orphan(self, block_id: BlockId, block: Block) -> None:
        """Buffer a parentless block, evicting past the bounded cap.

        Eviction is deterministic — lowest round first, ties broken on
        the block id — and considers the candidate itself, so a flood
        of bogus orphans can never grow the pool past ``max_orphans``.
        """
        if block.height <= self.truncated_height:
            return  # pruned history: the parent can never re-appear
        pending = self._orphans.get(block.parent_id)
        if pending is not None and any(
            orphan.id() == block_id for orphan in pending
        ):
            return
        if self._orphan_total >= self.max_orphans:
            victim_parent, victim = min(
                (
                    (parent_id, orphan)
                    for parent_id, orphans in self._orphans.items()
                    for orphan in orphans
                ),
                key=lambda item: (item[1].round, item[1].id().value),
            )
            if (victim.round, victim.id().value) > (block.round, block_id.value):
                return  # the candidate is the oldest: drop it instead
            self._orphans[victim_parent].remove(victim)
            if not self._orphans[victim_parent]:
                del self._orphans[victim_parent]
            self._orphan_total -= 1
        self._orphans.setdefault(block.parent_id, []).append(block)
        self._orphan_total += 1

    def _insert(self, block_id: BlockId, block: Block) -> None:
        parent = self._blocks[block.parent_id]
        if block.height != parent.height + 1:
            raise ChainError(
                f"height {block.height} does not extend parent height {parent.height}"
            )
        if block.round <= parent.round:
            raise ChainError(
                f"round {block.round} does not exceed parent round {parent.round}"
            )
        self._blocks[block_id] = block
        self._children[block_id] = []
        self._children[block.parent_id].append(block_id)
        self._by_round.setdefault(block.round, []).append(block_id)
        self._by_height.setdefault(block.height, []).append(block_id)
        if len(self._blocks) > self.peak_live_blocks:
            self.peak_live_blocks = len(self._blocks)
        # A block embeds its parent's QC; record it.
        if block.qc is not None:
            self.record_qc(block.qc)

    def _flush_orphans(self, parent_id: BlockId) -> list:
        inserted = []
        pending = self._orphans.pop(parent_id, [])
        self._orphan_total -= len(pending)
        for orphan in pending:
            inserted.extend(self.add_block(orphan))
        return inserted

    def record_qc(self, qc: QuorumCertificate) -> bool:
        """Record that ``qc.block_id`` is certified.

        Returns True if this certification is new *and* the block is
        known (a QC for an unknown block is remembered once the block
        arrives via its child's embedded QC, so dropping it is safe).
        """
        if qc.block_id in self._qcs:
            return False
        if qc.block_id not in self._blocks:
            return False
        self._qcs[qc.block_id] = qc
        best = self._blocks[self.highest_certified_id]
        candidate = self._blocks[qc.block_id]
        if candidate.round > best.round:
            self.highest_certified_id = qc.block_id
        return True

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: BlockId) -> Block:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise ChainError(f"unknown block {block_id.short()}") from None

    def maybe_get(self, block_id: BlockId) -> Block | None:
        return self._blocks.get(block_id)

    def all_qcs(self):
        """Every recorded certificate (invariant-oracle scans)."""
        return self._qcs.values()

    def qc_for(self, block_id: BlockId) -> QuorumCertificate | None:
        """The QC certifying ``block_id``, if known."""
        return self._qcs.get(block_id)

    def is_certified(self, block_id: BlockId) -> bool:
        return block_id in self._qcs

    def children(self, block_id: BlockId) -> tuple:
        return tuple(self._children.get(block_id, ()))

    def iter_children(self, block_id: BlockId):
        """Child ids without the defensive copy (read-only callers)."""
        return self._children.get(block_id, ())

    def blocks_at_round(self, round_number: int) -> tuple:
        return tuple(self._by_round.get(round_number, ()))

    def blocks_at_height(self, height: int) -> tuple:
        return tuple(self._by_height.get(height, ()))

    def parent(self, block_id: BlockId) -> Block | None:
        block = self.get(block_id)
        if block.parent_id is None:
            return None
        return self._blocks.get(block.parent_id)

    def all_blocks(self):
        """Iterate over every stored block (including genesis)."""
        return self._blocks.values()

    def orphan_count(self) -> int:
        return self._orphan_total

    def is_awaited(self, block_id: BlockId) -> bool:
        """True if some buffered orphan lists ``block_id`` as its parent."""
        return block_id in self._orphans

    # ------------------------------------------------------------------
    # truncation (checkpointing)
    # ------------------------------------------------------------------

    def truncate_below(self, root_id: BlockId) -> frozenset:
        """Drop every block outside ``root_id``'s subtree.

        ``root_id`` (the stable checkpoint block) becomes the store's
        effective root: it and all its descendants survive; everything
        else — pruned ancestors, committed siblings, abandoned forks,
        and orphans at or below the checkpoint height — is removed.
        Safe once a 2f+1 checkpoint certificate exists at ``root_id``:
        any future certified chain extends it.

        Returns the frozenset of pruned block ids so callers can clear
        their own per-block memo structures.
        """
        root = self.get(root_id)
        keep: set[BlockId] = set()
        frontier = [root_id]
        while frontier:
            cursor = frontier.pop()
            keep.add(cursor)
            frontier.extend(self._children.get(cursor, ()))
        pruned = frozenset(self._blocks) - keep
        for block_id in pruned:
            block = self._blocks.pop(block_id)
            self._children.pop(block_id, None)
            self._qcs.pop(block_id, None)
            siblings = self._by_round.get(block.round)
            if siblings is not None:
                siblings.remove(block_id)
                if not siblings:
                    del self._by_round[block.round]
            cohort = self._by_height.get(block.height)
            if cohort is not None:
                cohort.remove(block_id)
                if not cohort:
                    del self._by_height[block.height]
        self.truncated_height = max(self.truncated_height, root.height - 1)
        # Stale orphans: anything at or below the checkpoint height can
        # never re-attach (its parent chain is gone for good).  Swept
        # even when nothing was stored below the new root, because
        # truncated_height rises on that path too.
        for parent_id in list(self._orphans):
            pending = self._orphans[parent_id]
            fresh = [
                orphan
                for orphan in pending
                if orphan.height > self.truncated_height
            ]
            self._orphan_total -= len(pending) - len(fresh)
            if fresh:
                self._orphans[parent_id] = fresh
            else:
                del self._orphans[parent_id]
        if self.highest_certified_id not in self._blocks:
            best_id = root_id
            best_round = root.round
            for block_id in self._qcs:
                block = self._blocks.get(block_id)
                if block is not None and block.round > best_round:
                    best_round = block.round
                    best_id = block_id
            self.highest_certified_id = best_id
        return pruned

    def adopt_root(self, block: Block) -> tuple:
        """Install ``block`` as the store's new root (snapshot join).

        Used when a quorum-certified checkpoint block arrives via
        snapshot transfer and connects to nothing local: its parent
        chain exists only in history the cluster already truncated, so
        the block is registered without parent validation and
        everything outside its subtree — including genesis — is pruned.

        Returns ``(pruned_ids, flushed_blocks)``: the pruned id
        frozenset (for memo cleanup) and any buffered orphans that
        re-attached under the new root (for ordinary post-insertion
        processing).
        """
        block_id = block.id()
        if block_id not in self._blocks:
            self._blocks[block_id] = block
            self._children.setdefault(block_id, [])
            self._by_round.setdefault(block.round, []).append(block_id)
            self._by_height.setdefault(block.height, []).append(block_id)
            if len(self._blocks) > self.peak_live_blocks:
                self.peak_live_blocks = len(self._blocks)
            if block.qc is not None and block.parent_id in self._blocks:
                self.record_qc(block.qc)
        pruned = self.truncate_below(block_id)
        flushed = self._flush_orphans(block_id)
        return pruned, flushed

    def root_block(self) -> Block:
        """The store's effective root: genesis, or the last truncation root."""
        genesis = self._blocks.get(self.genesis_id)
        if genesis is not None:
            return genesis
        cursor = self._blocks[self.highest_certified_id]
        while cursor.parent_id is not None:
            parent = self._blocks.get(cursor.parent_id)
            if parent is None:
                return cursor
            cursor = parent
        return cursor

    # ------------------------------------------------------------------
    # ancestry
    # ------------------------------------------------------------------

    def is_ancestor(self, ancestor_id: BlockId, descendant_id: BlockId) -> bool:
        """True iff ``ancestor_id`` is an ancestor of (or equals) ``descendant_id``.

        Matches the paper's "B_l extends B_k": a block extends itself.
        """
        ancestor = self.get(ancestor_id)
        cursor = self.get(descendant_id)
        while cursor.height > ancestor.height:
            parent = self._blocks.get(cursor.parent_id)
            if parent is None:
                return False  # walk fell off the truncation boundary
            cursor = parent
        # The store holds exactly one Block object per id, so identity
        # comparison is equivalent to id comparison and avoids hashing.
        return cursor is ancestor

    def ancestor_at_height(self, block_id: BlockId, height: int) -> Block:
        """The unique ancestor of ``block_id`` at ``height``."""
        cursor = self.get(block_id)
        if height > cursor.height or height < 0:
            raise ChainError(f"no ancestor at height {height}")
        while cursor.height > height:
            parent = self._blocks.get(cursor.parent_id)
            if parent is None:
                raise ChainError(f"ancestor at height {height} was truncated")
            cursor = parent
        return cursor

    def common_ancestor(self, a_id: BlockId, b_id: BlockId) -> Block:
        """The deepest block that both ``a_id`` and ``b_id`` extend."""
        def _parent(block: Block) -> Block:
            parent = self._blocks.get(block.parent_id)
            if parent is None:
                raise ChainError(
                    f"common ancestor of {a_id.short()} and {b_id.short()} "
                    "was truncated"
                )
            return parent

        a = self.get(a_id)
        b = self.get(b_id)
        while a.height > b.height:
            a = _parent(a)
        while b.height > a.height:
            b = _parent(b)
        while a is not b:
            a = _parent(a)
            b = _parent(b)
        return a

    def conflicts(self, a_id: BlockId, b_id: BlockId) -> bool:
        """Two blocks conflict iff neither extends the other (Section 2.1)."""
        if a_id == b_id:
            return False
        return not self.is_ancestor(a_id, b_id) and not self.is_ancestor(b_id, a_id)

    def path_to_genesis(self, block_id: BlockId) -> list:
        """Blocks from ``block_id`` down to genesis, inclusive, in that order."""
        path = []
        cursor = self.get(block_id)
        while True:
            path.append(cursor)
            if cursor.parent_id is None:
                return path
            parent = self._blocks.get(cursor.parent_id)
            if parent is None:
                return path  # truncated: the path ends at the stored root
            cursor = parent

    def iter_ancestors(self, block_id: BlockId):
        """Yield ``block_id``'s block then each *stored* ancestor.

        Ends at genesis, or at the truncation root when history below
        the stable checkpoint has been pruned.
        """
        cursor = self.get(block_id)
        while True:
            yield cursor
            if cursor.parent_id is None:
                return
            parent = self._blocks.get(cursor.parent_id)
            if parent is None:
                return
            cursor = parent

    # ------------------------------------------------------------------
    # chain queries used by protocol rules
    # ------------------------------------------------------------------

    def highest_certified_block(self) -> Block:
        """The certified block with the highest round (DiemBFT proposing)."""
        return self._blocks[self.highest_certified_id]

    def longest_certified_tips(self) -> list:
        """Tips of the longest *certified* chains (Streamlet proposing).

        A certified chain is a chain whose blocks are all certified;
        because a block's QC certifies its parent, it is enough to find
        maximal-height certified blocks.
        """
        best_height = -1
        tips: list = []
        for block_id, qc in self._qcs.items():
            del qc
            block = self._blocks.get(block_id)
            if block is None:
                continue
            if block.height > best_height:
                best_height = block.height
                tips = [block]
            elif block.height == best_height:
                tips.append(block)
        return tips

    def certified_chain_height(self) -> int:
        """Height of the longest certified chain."""
        tips = self.longest_certified_tips()
        return tips[0].height if tips else 0

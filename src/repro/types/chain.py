"""Fork-aware block store.

Each replica keeps every block it has seen in a :class:`BlockStore`:
a tree rooted at genesis with parent pointers, per-block certification
state, and the ancestry queries the SFT machinery leans on
(``is_ancestor``, ``common_ancestor``, ``conflicts``).

Blocks that arrive before their parents (possible with Byzantine
leaders that equivocate selectively) are buffered as orphans and
inserted once the parent shows up.
"""

from __future__ import annotations

from repro.types.block import Block, BlockId
from repro.types.quorum_cert import QuorumCertificate


class ChainError(Exception):
    """Raised on structurally invalid block-store operations."""


class BlockStore:
    """Tree of blocks with certification bookkeeping.

    The store is deliberately permissive: it records *every*
    structurally valid block, including equivocating ones — the voting
    rules, not the store, decide what is acceptable.
    """

    def __init__(self, genesis: Block, genesis_qc: QuorumCertificate) -> None:
        if not genesis.is_genesis():
            raise ChainError("block store must be rooted at a genesis block")
        self.genesis_id = genesis.id()
        self._blocks: dict[BlockId, Block] = {self.genesis_id: genesis}
        self._children: dict[BlockId, list[BlockId]] = {self.genesis_id: []}
        self._qcs: dict[BlockId, QuorumCertificate] = {self.genesis_id: genesis_qc}
        self._orphans: dict[BlockId, list[Block]] = {}
        self._by_round: dict[int, list[BlockId]] = {genesis.round: [self.genesis_id]}
        self._by_height: dict[int, list[BlockId]] = {genesis.height: [self.genesis_id]}
        self.highest_certified_id: BlockId = self.genesis_id

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def add_block(self, block: Block) -> list:
        """Insert ``block``; returns the list of blocks newly inserted.

        The result includes ``block`` itself plus any buffered orphans
        that became insertable.  A duplicate returns ``[]``; a block
        whose parent is unknown is buffered (returns ``[]``) and
        inserted when the parent arrives.
        """
        block_id = block.id()
        if block_id in self._blocks:
            return []
        if block.parent_id is None:
            raise ChainError("cannot add a second genesis block")
        if block.parent_id not in self._blocks:
            pending = self._orphans.setdefault(block.parent_id, [])
            if all(orphan.id() != block_id for orphan in pending):
                pending.append(block)
            return []
        self._insert(block_id, block)
        inserted = [block]
        inserted.extend(self._flush_orphans(block_id))
        return inserted

    def _insert(self, block_id: BlockId, block: Block) -> None:
        parent = self._blocks[block.parent_id]
        if block.height != parent.height + 1:
            raise ChainError(
                f"height {block.height} does not extend parent height {parent.height}"
            )
        if block.round <= parent.round:
            raise ChainError(
                f"round {block.round} does not exceed parent round {parent.round}"
            )
        self._blocks[block_id] = block
        self._children[block_id] = []
        self._children[block.parent_id].append(block_id)
        self._by_round.setdefault(block.round, []).append(block_id)
        self._by_height.setdefault(block.height, []).append(block_id)
        # A block embeds its parent's QC; record it.
        if block.qc is not None:
            self.record_qc(block.qc)

    def _flush_orphans(self, parent_id: BlockId) -> list:
        inserted = []
        pending = self._orphans.pop(parent_id, [])
        for orphan in pending:
            inserted.extend(self.add_block(orphan))
        return inserted

    def record_qc(self, qc: QuorumCertificate) -> bool:
        """Record that ``qc.block_id`` is certified.

        Returns True if this certification is new *and* the block is
        known (a QC for an unknown block is remembered once the block
        arrives via its child's embedded QC, so dropping it is safe).
        """
        if qc.block_id in self._qcs:
            return False
        if qc.block_id not in self._blocks:
            return False
        self._qcs[qc.block_id] = qc
        best = self._blocks[self.highest_certified_id]
        candidate = self._blocks[qc.block_id]
        if candidate.round > best.round:
            self.highest_certified_id = qc.block_id
        return True

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: BlockId) -> Block:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise ChainError(f"unknown block {block_id.short()}") from None

    def maybe_get(self, block_id: BlockId) -> Block | None:
        return self._blocks.get(block_id)

    def qc_for(self, block_id: BlockId) -> QuorumCertificate | None:
        """The QC certifying ``block_id``, if known."""
        return self._qcs.get(block_id)

    def is_certified(self, block_id: BlockId) -> bool:
        return block_id in self._qcs

    def children(self, block_id: BlockId) -> tuple:
        return tuple(self._children.get(block_id, ()))

    def iter_children(self, block_id: BlockId):
        """Child ids without the defensive copy (read-only callers)."""
        return self._children.get(block_id, ())

    def blocks_at_round(self, round_number: int) -> tuple:
        return tuple(self._by_round.get(round_number, ()))

    def blocks_at_height(self, height: int) -> tuple:
        return tuple(self._by_height.get(height, ()))

    def parent(self, block_id: BlockId) -> Block | None:
        block = self.get(block_id)
        if block.parent_id is None:
            return None
        return self._blocks.get(block.parent_id)

    def all_blocks(self):
        """Iterate over every stored block (including genesis)."""
        return self._blocks.values()

    def orphan_count(self) -> int:
        return sum(len(pending) for pending in self._orphans.values())

    def is_awaited(self, block_id: BlockId) -> bool:
        """True if some buffered orphan lists ``block_id`` as its parent."""
        return block_id in self._orphans

    # ------------------------------------------------------------------
    # ancestry
    # ------------------------------------------------------------------

    def is_ancestor(self, ancestor_id: BlockId, descendant_id: BlockId) -> bool:
        """True iff ``ancestor_id`` is an ancestor of (or equals) ``descendant_id``.

        Matches the paper's "B_l extends B_k": a block extends itself.
        """
        ancestor = self.get(ancestor_id)
        cursor = self.get(descendant_id)
        while cursor.height > ancestor.height:
            cursor = self._blocks[cursor.parent_id]
        # The store holds exactly one Block object per id, so identity
        # comparison is equivalent to id comparison and avoids hashing.
        return cursor is ancestor

    def ancestor_at_height(self, block_id: BlockId, height: int) -> Block:
        """The unique ancestor of ``block_id`` at ``height``."""
        cursor = self.get(block_id)
        if height > cursor.height or height < 0:
            raise ChainError(f"no ancestor at height {height}")
        while cursor.height > height:
            cursor = self._blocks[cursor.parent_id]
        return cursor

    def common_ancestor(self, a_id: BlockId, b_id: BlockId) -> Block:
        """The deepest block that both ``a_id`` and ``b_id`` extend."""
        a = self.get(a_id)
        b = self.get(b_id)
        while a.height > b.height:
            a = self._blocks[a.parent_id]
        while b.height > a.height:
            b = self._blocks[b.parent_id]
        while a is not b:
            a = self._blocks[a.parent_id]
            b = self._blocks[b.parent_id]
        return a

    def conflicts(self, a_id: BlockId, b_id: BlockId) -> bool:
        """Two blocks conflict iff neither extends the other (Section 2.1)."""
        if a_id == b_id:
            return False
        return not self.is_ancestor(a_id, b_id) and not self.is_ancestor(b_id, a_id)

    def path_to_genesis(self, block_id: BlockId) -> list:
        """Blocks from ``block_id`` down to genesis, inclusive, in that order."""
        path = []
        cursor = self.get(block_id)
        while True:
            path.append(cursor)
            if cursor.parent_id is None:
                return path
            cursor = self._blocks[cursor.parent_id]

    def iter_ancestors(self, block_id: BlockId):
        """Yield ``block_id``'s block then each ancestor up to genesis."""
        cursor = self.get(block_id)
        while True:
            yield cursor
            if cursor.parent_id is None:
                return
            cursor = self._blocks[cursor.parent_id]

    # ------------------------------------------------------------------
    # chain queries used by protocol rules
    # ------------------------------------------------------------------

    def highest_certified_block(self) -> Block:
        """The certified block with the highest round (DiemBFT proposing)."""
        return self._blocks[self.highest_certified_id]

    def longest_certified_tips(self) -> list:
        """Tips of the longest *certified* chains (Streamlet proposing).

        A certified chain is a chain whose blocks are all certified;
        because a block's QC certifies its parent, it is enough to find
        maximal-height certified blocks.
        """
        best_height = -1
        tips: list = []
        for block_id, qc in self._qcs.items():
            del qc
            block = self._blocks.get(block_id)
            if block is None:
                continue
            if block.height > best_height:
                best_height = block.height
                tips = [block]
            elif block.height == best_height:
                tips.append(block)
        return tips

    def certified_chain_height(self) -> int:
        """Height of the longest certified chain."""
        tips = self.longest_certified_tips()
        return tips[0].height if tips else 0

"""Wire messages exchanged by replicas.

Every message carries its sender and is signed at the protocol layer
(the vote/timeout payloads embed signatures; proposals are signed as a
whole).  The Streamlet echo mechanism re-wraps messages in
:class:`EchoMsg` so duplicate suppression has a uniform handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.serialization import canonical_bytes
from repro.crypto.signatures import Signature
from repro.types.block import Block
from repro.types.quorum_cert import QuorumCertificate, TimeoutCertificate


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for protocol messages (used for isinstance checks)."""

    sender: int


@dataclass(frozen=True, slots=True)
class ProposalMsg(Message):
    """⟨propose, B_k, r⟩_{L_r} — a leader's block proposal.

    ``tc`` justifies proposing in a round reached through timeouts.
    Light-client strong-commit updates (Section 5) ride inside the
    block itself (``block.commit_log``) so the block's QC certifies
    them.
    """

    round: int
    block: Block
    tc: TimeoutCertificate | None = None
    signature: Signature | None = None
    _cached_payload: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def signing_payload(self) -> bytes:
        """Signed bytes, computed once — all ``n`` receivers share them."""
        cached = self._cached_payload
        if cached is not None:
            return cached
        payload = canonical_bytes(
            "proposal", self.round, self.block.id().value, self.sender
        )
        object.__setattr__(self, "_cached_payload", payload)
        return payload


@dataclass(frozen=True, slots=True)
class VoteMsg(Message):
    """Envelope carrying one (strong-)vote to its collector."""

    vote: object  # Vote | StrongVote


@dataclass(frozen=True, slots=True)
class TimeoutMsg(Message):
    """⟨timeout, r, qc_high⟩_i — sent when the round-``r`` timer expires.

    With block-sync enabled the sender attaches the vote it cast in the
    timed-out round (``vote``), so peers can recover a QC whose
    collector — the next-round leader — crashed before aggregating.
    The vote is individually signed; the timeout signature still covers
    only ``(round, sender)``, keeping sync-off runs byte-identical.
    """

    round: int
    qc_high: QuorumCertificate
    signature: Signature | None = None
    vote: object | None = None
    _cached_payload: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def signing_payload(self) -> bytes:
        cached = self._cached_payload
        if cached is not None:
            return cached
        payload = canonical_bytes("timeout", self.round, self.sender)
        object.__setattr__(self, "_cached_payload", payload)
        return payload


@dataclass(frozen=True, slots=True)
class QCMsg(Message):
    """⟨qc, B_k, r⟩ — an aggregated certificate broadcast by a collector.

    Linear vote collection (the Linear-PBFT pattern): replicas send
    their votes point-to-point to the round's collector, which forms
    the QC and multicasts it in this envelope — one O(n) fan-in plus
    one O(n) fan-out per decision instead of an O(n²) all-to-all vote
    phase.  The message is self-certifying: the QC already carries
    ``2f + 1`` individually signed votes, so no outer signature is
    needed and receivers validate it with the usual
    :meth:`~repro.types.quorum_cert.QuorumCertificate.validate`.
    """

    qc: QuorumCertificate


@dataclass(frozen=True, slots=True)
class NewRoundMsg(Message):
    """Advance notification carrying a TC to replicas that missed it."""

    tc: TimeoutCertificate


@dataclass(frozen=True, slots=True)
class ExtraVotesMsg(Message):
    """FBFT-adapted baseline (Appendix B): late votes multicast by a leader.

    Each message carries votes for ``round`` that arrived after the QC
    was formed; the leader multicasts them one by one as they arrive,
    which is what drives the baseline to O(n^2) messages per decision.
    """

    round: int
    votes: tuple = ()


@dataclass(frozen=True, slots=True)
class EchoMsg(Message):
    """Streamlet echo wrapper: forward a previously unseen message."""

    inner: Message
    origin: int = -1


@dataclass(frozen=True, slots=True)
class ClientRequestMsg(Message):
    """A client transaction submitted to one replica's mempool."""

    transaction: object


@dataclass(frozen=True, slots=True)
class ClientReplyMsg(Message):
    """A replica's acknowledgement that a client transaction committed.

    Real-network clients collect these from the cluster and accept a
    transaction once ``f + 1`` distinct replicas report the same
    ``(txid, block_id)`` — at least one reporter is honest, so the
    commit is final (the PBFT client reply rule).  ``sender`` is the
    replying replica; the simulator tier reads commit logs directly and
    never sends these.
    """

    txid: object = None  # HashDigest of the committed transaction
    block_id: object = None  # BlockId of the committing block
    height: int = 0
    round: int = 0


@dataclass(frozen=True, slots=True)
class SyncRequestMsg(Message):
    """⟨sync-req, target, max, nonce⟩_i — ask a peer for missing blocks.

    ``target`` names the block whose certified ancestor chain the
    requester is missing (a proposal or QC referenced it but the local
    :class:`~repro.types.chain.BlockStore` has never seen it); ``None``
    asks for the peer's highest certified chain (round-lag catch-up).
    ``max_blocks`` bounds one response; deeper gaps are closed by
    iterated requests.  ``nonce`` pairs responses with requests across
    retries and peer rotation.
    """

    target: object | None = None  # BlockId (HashDigest) or None for tip
    max_blocks: int = 8
    nonce: int = 0
    signature: Signature | None = None
    _cached_payload: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def signing_payload(self) -> bytes:
        cached = self._cached_payload
        if cached is not None:
            return cached
        target_bytes = b"" if self.target is None else self.target.value
        payload = canonical_bytes(
            "sync-req", self.sender, target_bytes, self.max_blocks, self.nonce
        )
        object.__setattr__(self, "_cached_payload", payload)
        return payload


@dataclass(frozen=True, slots=True)
class SyncResponseMsg(Message):
    """⟨sync-resp, nonce, blocks, tip_qc⟩_i — a certified ancestor chain.

    ``blocks`` runs newest-first: ``blocks[0]`` is the requested target
    (or the responder's certified tip) and ``blocks[i + 1]`` is the
    parent of ``blocks[i]``, so each embedded ``block.qc`` certifies
    the next entry.  ``tip_qc`` certifies ``blocks[0]`` itself when the
    responder knows one.  Empty ``blocks`` signals a miss — the
    responder does not have the target — so the requester rotates peers
    immediately.  Block contents are authenticated by their hashes (a
    QC names its block by content hash); the message signature binds
    the chain to the responder for accounting.
    """

    nonce: int = 0
    blocks: tuple = ()
    tip_qc: QuorumCertificate | None = None
    signature: Signature | None = None
    _cached_payload: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def signing_payload(self) -> bytes:
        cached = self._cached_payload
        if cached is not None:
            return cached
        payload = canonical_bytes(
            "sync-resp",
            self.sender,
            self.nonce,
            tuple(block.id().value for block in self.blocks),
        )
        object.__setattr__(self, "_cached_payload", payload)
        return payload


@dataclass(frozen=True, slots=True)
class CheckpointMsg(Message):
    """⟨checkpoint, h, d⟩_i — a signed state digest at commit height ``h``.

    Every ``checkpoint_interval`` commits each replica digests its
    executed kvstore state together with the committed-chain block at
    the checkpoint height and multicasts this message (the PBFT
    checkpoint subprotocol).  ``2f + 1`` matching ``(height, digest)``
    pairs from distinct signers form a checkpoint certificate: proof
    the state is durable, so history below it may be truncated and a
    lagging replica may install it wholesale via snapshot transfer.
    """

    height: int = 0
    block_id: object = None  # BlockId (HashDigest) of the checkpoint block
    digest: object = None  # HashDigest over (height, block, state)
    signature: Signature | None = None
    _cached_payload: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def signing_payload(self) -> bytes:
        cached = self._cached_payload
        if cached is not None:
            return cached
        payload = canonical_bytes(
            "checkpoint", self.height, self.block_id.value, self.digest.value
        )
        object.__setattr__(self, "_cached_payload", payload)
        return payload


@dataclass(frozen=True, slots=True)
class SnapshotRequestMsg(Message):
    """⟨snapshot-req, h, nonce⟩_i — ask a peer for a stable checkpoint.

    ``min_height`` is the lowest checkpoint height worth shipping (the
    requester already has state through its own last checkpoint);
    ``nonce`` pairs responses with requests across retries and peer
    rotation, mirroring :class:`SyncRequestMsg`.
    """

    min_height: int = 0
    nonce: int = 0
    signature: Signature | None = None
    _cached_payload: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def signing_payload(self) -> bytes:
        cached = self._cached_payload
        if cached is not None:
            return cached
        payload = canonical_bytes(
            "snapshot-req", self.sender, self.min_height, self.nonce
        )
        object.__setattr__(self, "_cached_payload", payload)
        return payload


@dataclass(frozen=True, slots=True)
class SnapshotResponseMsg(Message):
    """⟨snapshot-resp, nonce, cert, block, state⟩_i — a full state transfer.

    Ships the responder's latest stable checkpoint: the checkpoint
    ``block``, the ``2f + 1`` signer certificate over its digest
    (``cert_height``/``cert_block_id``/``cert_digest``/``cert_signers``,
    each signer a ``(replica_id, signature)`` pair over the
    :class:`CheckpointMsg` payload), the executed kvstore ``state`` as
    sorted key/value pairs, and the sorted ``applied_txids`` of the
    executor's dedup set (duplicates can straddle the checkpoint
    boundary, so exactly-once semantics need it shipped).  Empty
    ``cert_signers`` signals a miss — the responder has no stable
    checkpoint at or above ``min_height`` — and the requester rotates.
    The requester recomputes the digest from the shipped state and
    validates the certificate before mutating anything.
    """

    nonce: int = 0
    cert_height: int = 0
    cert_block_id: object = None  # BlockId of the checkpoint block
    cert_digest: object = None  # HashDigest the signers agreed on
    cert_signers: tuple = ()  # ((replica_id, Signature), ...)
    block: Block | None = None
    state: tuple = ()  # sorted ((key, value), ...) kvstore items
    applied_txids: tuple = ()  # sorted executor dedup set
    applied_count: int = 0
    rejected_count: int = 0
    signature: Signature | None = None
    _cached_payload: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def signing_payload(self) -> bytes:
        cached = self._cached_payload
        if cached is not None:
            return cached
        payload = canonical_bytes(
            "snapshot-resp",
            self.sender,
            self.nonce,
            self.cert_height,
            b"" if self.cert_digest is None else self.cert_digest.value,
        )
        object.__setattr__(self, "_cached_payload", payload)
        return payload


__all__ = [
    "Message",
    "ProposalMsg",
    "VoteMsg",
    "QCMsg",
    "TimeoutMsg",
    "NewRoundMsg",
    "ExtraVotesMsg",
    "EchoMsg",
    "ClientRequestMsg",
    "ClientReplyMsg",
    "SyncRequestMsg",
    "SyncResponseMsg",
    "CheckpointMsg",
    "SnapshotRequestMsg",
    "SnapshotResponseMsg",
]

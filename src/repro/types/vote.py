"""Vote messages: plain DiemBFT votes and SFT strong-votes.

A *strong-vote* (Figure 4) is a vote that additionally carries either a
``marker`` — the largest round (DiemBFT) or height (Streamlet) of any
*conflicting* block this replica ever voted for — or, in the
generalized Section 3.4 form, an explicit set of round intervals the
vote endorses.  Plain votes are the degenerate case used by the
baseline protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import HashDigest
from repro.crypto.serialization import canonical_bytes
from repro.crypto.signatures import Signature


@dataclass(frozen=True, slots=True)
class Vote:
    """A signed vote for one block in one round.

    ``block_id``/``block_round`` identify the voted block; ``height``
    is carried for the height-based Streamlet rules.  The signature
    covers every semantic field.
    """

    block_id: HashDigest
    block_round: int
    height: int
    voter: int
    signature: Signature | None = None
    _cached_payload: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # Plain votes carry no interval set; exposing the empty tuple as a
    # class attribute lets hot paths (wire sizing, endorsement
    # ingestion) read ``vote.intervals`` without a getattr probe.
    intervals = ()

    def signing_payload(self) -> bytes:
        """Bytes covered by the vote signature (computed once, cached)."""
        cached = self._cached_payload
        if cached is not None:
            return cached
        payload = canonical_bytes(
            "vote", self.block_id.value, self.block_round, self.height, self.voter
        )
        object.__setattr__(self, "_cached_payload", payload)
        return payload

    def conflicts_marker(self) -> int:
        """Marker accessor; plain votes behave like marker ``0``.

        Allows code that consumes strong-votes to accept plain votes
        uniformly (a plain vote from an honest replica that never forked
        has marker 0).
        """
        return 0


@dataclass(frozen=True, slots=True)
class StrongVote:
    """A strong-vote ⟨vote, B, r, marker⟩ (Figure 4 / Figure 11).

    ``marker`` is the round-based marker for SFT-DiemBFT or the
    height-based marker for SFT-Streamlet, as produced by
    :mod:`repro.core.strong_vote`.  ``intervals`` optionally carries the
    generalized endorsed-round intervals of Section 3.4 as a tuple of
    ``(lo, hi)`` pairs (inclusive); when present it takes precedence
    over the marker for endorsement checks.
    """

    block_id: HashDigest
    block_round: int
    height: int
    voter: int
    marker: int = 0
    intervals: tuple = ()
    signature: Signature | None = None
    _cached_payload: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def signing_payload(self) -> bytes:
        """Bytes covered by the strong-vote signature (cached).

        A vote object is shared by reference across every replica of a
        simulated cluster, so the canonical encoding — recomputed on
        every sign *and* every verify before — is now paid once per
        process.
        """
        cached = self._cached_payload
        if cached is not None:
            return cached
        payload = canonical_bytes(
            "strong-vote",
            self.block_id.value,
            self.block_round,
            self.height,
            self.voter,
            self.marker,
            tuple(self.intervals),
        )
        object.__setattr__(self, "_cached_payload", payload)
        return payload

    def conflicts_marker(self) -> int:
        return self.marker

    def uses_intervals(self) -> bool:
        """True when this vote carries generalized interval information."""
        return bool(self.intervals)

    def endorses_round(self, target_round: int) -> bool:
        """Whether this vote endorses an *ancestor* block at ``target_round``.

        Direct endorsement (``B = B'``) is handled by the caller — this
        method only answers the indirect case of the endorsement
        definition: ``marker < r`` or ``r ∈ I``.
        """
        if self.uses_intervals():
            return any(lo <= target_round <= hi for lo, hi in self.intervals)
        return self.marker < target_round

    def endorses_height(self, target_height: int) -> bool:
        """Height-based (k-endorsement) analogue for SFT-Streamlet."""
        if self.uses_intervals():
            return any(lo <= target_height <= hi for lo, hi in self.intervals)
        return self.marker < target_height

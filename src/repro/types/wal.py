"""Durable voting-state write-ahead records for crash recovery.

Real BFT deployments survive crash–recovery only because the voting
record is persisted *before* any vote leaves the replica: a reborn
replica that forgot which rounds it voted in can be made to double-vote,
which is indistinguishable from equivocation and breaks safety (PBFT
makes the same argument for its message log).  This module provides the
simulated equivalent: an in-memory "disk" keyed by replica id that
survives :meth:`~repro.protocols.base.BaseReplica.crash` and is handed
back to the replacement instance built by
:meth:`~repro.runtime.cluster.Cluster.restart_replica`.

``DurableState`` holds exactly the safety-critical subset of replica
state — last vote per round, ``r_vote``/``r_lock``, ``qc_high``,
timed-out rounds (timeout votes), and the strong-vote history tips that
endorsement markers are computed from.  Everything else (block store,
pending QCs, message dedup caches) is volatile by design and is rebuilt
through the PR 7 snapshot + block-sync rejoin path.

Every ``record_*`` call models an fsync: replicas invoke it *before*
the corresponding message is sent, and the ``records`` counter lets the
metrics layer report how many synchronous writes the protocol paid for.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DurableState:
    """Per-replica write-ahead record surviving simulated crashes.

    ``votes`` maps round → block id voted for in that round (at most
    one entry per round for a correct replica — the append-only
    ``vote_log`` keeps every write so tests can assert exactly that).
    ``voted_tips`` persists the strong-vote history as
    ``(block_id, key)`` pairs, where ``key`` is the marker-relevant
    chain key of the tip at fsync time (see
    :meth:`repro.core.strong_vote.VotingHistory.tip_keys`).
    """

    replica_id: int
    votes: dict = field(default_factory=dict)  # round -> BlockId
    vote_log: list = field(default_factory=list)  # append-only (round, BlockId)
    r_vote: int = 0
    r_lock: int = 0
    qc_high = None
    last_vote = None
    timed_out_rounds: set = field(default_factory=set)
    voted_tips: tuple = ()
    highest_voted_round: int = 0
    certified_height: int = 0  # Streamlet's lock analog (see below)
    records: int = 0  # fsync'd writes
    restores: int = 0  # times a reborn replica reloaded this record

    # -- write path (each call models one fsync) -----------------------

    def record_vote(self, round_number: int, block_id, vote=None) -> None:
        self.votes[round_number] = block_id
        self.vote_log.append((round_number, block_id))
        if round_number > self.r_vote:
            self.r_vote = round_number
        if vote is not None:
            self.last_vote = vote
        self.records += 1

    def record_lock(self, r_lock: int) -> None:
        if r_lock > self.r_lock:
            self.r_lock = r_lock
            self.records += 1

    def record_qc_high(self, qc) -> None:
        if self.qc_high is None or qc.round > self.qc_high.round:
            self.qc_high = qc
            self.records += 1

    def record_timeout(self, round_number: int) -> None:
        if round_number not in self.timed_out_rounds:
            self.timed_out_rounds.add(round_number)
            self.records += 1

    def record_certified_height(self, height: int) -> None:
        """Persist the longest certified chain height (Streamlet).

        Streamlet's safety argument leans on the longest-chain voting
        rule the way DiemBFT's leans on ``r_lock``: a replica must
        never vote for a block extending a chain *shorter* than the
        longest certified chain it has seen.  The block store is
        volatile, so a reborn replica's local longest chain is genesis
        — this height is the durable floor it holds the rule to until
        block-sync catches its store up.
        """
        if height > self.certified_height:
            self.certified_height = height
            self.records += 1

    def record_tips(self, tips: tuple, highest_voted_round: int) -> None:
        self.voted_tips = tuple(tips)
        if highest_voted_round > self.highest_voted_round:
            self.highest_voted_round = highest_voted_round
        self.records += 1

    # -- read path -----------------------------------------------------

    def has_voted(self, round_number: int) -> bool:
        return round_number in self.votes

    def voted_rounds(self) -> set:
        return set(self.votes)

    def note_restore(self) -> None:
        self.restores += 1

    def double_votes(self) -> list:
        """Rounds with conflicting vote-log entries (should be empty)."""
        seen: dict = {}
        bad = []
        for round_number, block_id in self.vote_log:
            prior = seen.setdefault(round_number, block_id)
            if prior != block_id:
                bad.append(round_number)
        return bad


class DurableDisk:
    """The simulated stable storage: one :class:`DurableState` per id.

    Created by the cluster only when a recovery schedule is present, so
    default-off runs perform zero WAL work and replay byte-identically.
    """

    def __init__(self):
        self._states: dict = {}

    def state_for(self, replica_id: int) -> DurableState:
        state = self._states.get(replica_id)
        if state is None:
            state = DurableState(replica_id)
            self._states[replica_id] = state
        return state

    def peek(self, replica_id: int):
        """The record for ``replica_id`` if one exists, else ``None``."""
        return self._states.get(replica_id)

    def stats(self) -> dict:
        return {
            "replicas": len(self._states),
            "records": sum(s.records for s in self._states.values()),
            "restores": sum(s.restores for s in self._states.values()),
        }

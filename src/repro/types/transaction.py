"""Client transactions and block payloads.

Two payload styles are supported:

* :class:`Transaction` — a real, individually tracked client request.
  Used by examples and small runs where end-to-end transaction latency
  matters.
* :class:`TxBatch` — a compact descriptor ("1000 transactions totalling
  450 KB") standing in for the paper's saturated-load blocks.  Large
  simulations (n = 100, hundreds of rounds) use batches so block
  payloads stay O(1) in memory while throughput accounting stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import HashDigest, hash_fields


@dataclass(frozen=True, slots=True)
class Transaction:
    """A single externally-submitted client transaction."""

    client_id: int
    sequence: int
    payload: bytes = b""
    submitted_at: float = 0.0

    def txid(self) -> HashDigest:
        """Return a collision-resistant transaction identifier."""
        return hash_fields("txn", self.client_id, self.sequence, self.payload)

    def size_bytes(self) -> int:
        """Approximate wire size of this transaction."""
        return 16 + len(self.payload)


@dataclass(frozen=True, slots=True)
class TxBatch:
    """A synthetic batch of transactions with exact aggregate accounting.

    ``count`` transactions totalling ``size_bytes`` were nominally
    created at ``created_at``; the batch hashes like an opaque blob so
    blocks containing different batches have different digests.
    """

    count: int
    size_bytes: int
    created_at: float = 0.0
    tag: int = 0

    def digest(self) -> HashDigest:
        return hash_fields("batch", self.count, self.size_bytes, self.tag)


@dataclass(slots=True)
class Payload:
    """Block payload: real transactions and/or a synthetic batch."""

    transactions: tuple = field(default_factory=tuple)
    batch: TxBatch | None = None

    def tx_count(self) -> int:
        """Number of client transactions this payload commits."""
        count = len(self.transactions)
        if self.batch is not None:
            count += self.batch.count
        return count

    def size_bytes(self) -> int:
        """Approximate serialized size of the payload."""
        size = sum(txn.size_bytes() for txn in self.transactions)
        if self.batch is not None:
            size += self.batch.size_bytes
        return size

    def digest_fields(self) -> tuple:
        """Fields contributing to the enclosing block's hash."""
        tx_ids = tuple(txn.txid().value for txn in self.transactions)
        batch_digest = self.batch.digest().value if self.batch else b""
        return (tx_ids, batch_digest)


EMPTY_PAYLOAD = Payload()

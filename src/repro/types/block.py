"""Blocks and the genesis bootstrap.

Block format (Section 2.1): ``B_k = (H(B_{k-1}), qc, txn)`` where the
``qc`` certifies the parent block.  We additionally track the protocol
round that proposed the block, the chain height, the proposer id, and
the creation timestamp (strong-commit latency is measured "from when a
block is created", Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import HashDigest, hash_fields
from repro.types.quorum_cert import QuorumCertificate
from repro.types.transaction import Payload

BlockId = HashDigest

GENESIS_ROUND = 0


@dataclass(frozen=True, slots=True)
class Block:
    """One block in the chain.

    ``parent_id`` is the digest of the parent; ``qc`` certifies the
    parent (``qc.block_id == parent_id`` for every non-genesis block).
    The block id is the hash of all consensus-relevant fields, so two
    proposals for the same round with different payloads or parents are
    distinct blocks — the raw material of equivocation.
    """

    parent_id: BlockId | None
    qc: QuorumCertificate | None
    round: int
    height: int
    proposer: int
    payload: Payload = field(default_factory=Payload)
    created_at: float = 0.0
    commit_log: tuple = ()
    _cached_id: BlockId | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def id(self) -> BlockId:
        """Content hash of the block (computed once, then cached)."""
        cached = self._cached_id
        if cached is not None:
            return cached
        parent_bytes = self.parent_id.value if self.parent_id else b""
        qc_fields = (
            (self.qc.block_id.value, self.qc.round) if self.qc else (b"", -1)
        )
        digest = hash_fields(
            "block",
            parent_bytes,
            qc_fields,
            self.round,
            self.height,
            self.proposer,
            self.payload.digest_fields(),
            tuple(self.commit_log),
        )
        object.__setattr__(self, "_cached_id", digest)
        return digest

    def is_genesis(self) -> bool:
        return self.parent_id is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Block(round={self.round}, height={self.height}, "
            f"proposer={self.proposer}, id={self.id().short()})"
        )


def make_genesis() -> tuple[Block, QuorumCertificate]:
    """Create the genesis block and its bootstrap certificate.

    The genesis block sits at round 0 / height 0 and is considered
    certified and committed by definition; the returned certificate is
    what replicas initialize ``qc_high`` with ("⊥ of round 0",
    Figure 2).
    """
    genesis = Block(
        parent_id=None,
        qc=None,
        round=GENESIS_ROUND,
        height=0,
        proposer=-1,
        payload=Payload(),
        created_at=0.0,
    )
    genesis_qc = QuorumCertificate(
        block_id=genesis.id(),
        round=GENESIS_ROUND,
        height=0,
        votes=(),
    )
    return genesis, genesis_qc

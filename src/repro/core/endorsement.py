"""Incremental endorsement accounting — the heart of SFT.

Endorsement definition (Figure 4): a strong-vote
``⟨vote, B', r', marker⟩_i`` *endorses* a round-``r`` block ``B`` iff
``B = B'``, or ``B'`` extends ``B`` and ``marker < r``.  Appendix D
(Figure 11) replaces rounds by heights and parameterizes the threshold:
the vote *k-endorses* ``B`` iff ``B = B'`` or (``B'`` extends ``B`` and
``marker < k``).  Generalized votes (Section 3.4) endorse ``B`` iff the
threshold lies in the vote's interval set.

:class:`EndorsementTracker` ingests strong-QCs as a replica learns
them and maintains, per block:

* ``endorsers`` — the materialized endorser set (round mode, where the
  threshold is the block's own round and hence fixed);
* ``direct``   — voters that voted for the block itself (they endorse
  unconditionally, which matters for height-mode ``k`` queries);
* ``coverage`` — per voter, the smallest marker (or union of interval
  sets) among that voter's votes whose ancestor walk passed through
  the block.

Processing a vote walks the voted block's ancestor path.  The walk
stops early at a block where the voter's stored coverage is at least
as permissive as the new vote (``stored_marker <= new_marker``, or the
new vote's still-relevant intervals are a subset of the stored union):
ancestor paths are unique, so the earlier vote's walk already recorded
everything the new walk would contribute below that point.  Steady
state cost is O(1) per vote, and the result is *exact* —
:class:`BruteForceEndorsementOracle` recomputes endorser sets from the
raw vote log and certifies the optimization in the test suite.
"""

from __future__ import annotations

from repro.core.intervals import IntervalSet
from repro.types.block import Block, BlockId
from repro.types.chain import BlockStore
from repro.types.quorum_cert import QuorumCertificate


class _BlockEndorsementState:
    """Per-block endorsement bookkeeping."""

    __slots__ = ("direct", "marker_coverage", "interval_coverage", "endorsers")

    def __init__(self) -> None:
        self.direct: set[int] = set()
        self.marker_coverage: dict[int, int] = {}
        self.interval_coverage: dict[int, IntervalSet] = {}
        self.endorsers: set[int] = set()


class EndorsementTracker:
    """Tracks endorser sets for every block one replica knows about.

    ``mode`` selects the conflict metric: ``"round"`` (SFT-DiemBFT) or
    ``"height"`` (SFT-Streamlet).  Listeners registered through
    :meth:`add_listener` are invoked as ``listener(block, count, now)``
    in round mode whenever a block gains an endorser.

    ``naive=True`` deliberately reproduces the flawed accounting that
    Appendix C refutes: markers (and interval sets) are ignored and
    every vote is treated as endorsing the full ancestor path, exactly
    "counting all indirect votes".  Only the invariant oracle and the
    fuzzer use it — to demonstrate the Definition 1 violation that SFT
    markers repair.
    """

    def __init__(
        self, store: BlockStore, mode: str = "round", naive: bool = False
    ) -> None:
        if mode not in ("round", "height"):
            raise ValueError("mode must be 'round' or 'height'")
        self._store = store
        self._mode = mode
        self._naive = naive
        self._states: dict[BlockId, _BlockEndorsementState] = {}
        self._listeners: list = []
        self._processed_qcs: set[BlockId] = set()
        self.skipped_votes = 0

    def add_listener(self, listener) -> None:
        """Register ``listener(block, count, now)`` for round-mode growth."""
        self._listeners.append(listener)

    def forget_pruned(self, pruned) -> None:
        """Drop per-block state for checkpoint-truncated blocks.

        Pruned blocks sit below the stable checkpoint (or on forks
        abandoned below it); their endorser counts can never again be
        queried by a commit rule, so the bookkeeping is released to keep
        long-running memory bounded.
        """
        for block_id in pruned:
            self._states.pop(block_id, None)
            self._processed_qcs.discard(block_id)

    def _state(self, block_id: BlockId) -> _BlockEndorsementState:
        state = self._states.get(block_id)
        if state is None:
            state = _BlockEndorsementState()
            self._states[block_id] = state
        return state

    def _key(self, block: Block) -> int:
        return block.round if self._mode == "round" else block.height

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def add_strong_qc(self, qc: QuorumCertificate, now: float = 0.0) -> None:
        """Process every strong-vote contained in ``qc``.

        Re-submitting the same QC is a cheap no-op.  Votes for blocks
        this replica does not know yet are counted in ``skipped_votes``
        (their endorsements are recovered when the vote re-appears in a
        later QC; in practice QCs always follow their blocks).
        """
        if qc.block_id in self._processed_qcs:
            return
        if qc.block_id not in self._store:
            self.skipped_votes += len(qc.votes)
            return
        self._processed_qcs.add(qc.block_id)
        for vote in qc.votes:
            self.add_vote(vote, now)

    def add_vote(self, vote, now: float = 0.0) -> None:
        """Process a single (strong-)vote.

        Plain :class:`~repro.types.vote.Vote` objects behave like
        strong-votes with marker 0, so the tracker is also usable for
        direct-vote accounting in tests.
        """
        block = self._store.maybe_get(vote.block_id)
        if block is None:
            self.skipped_votes += 1
            return
        voter = vote.voter

        # Direct endorsement: a vote always endorses its own block.
        state = self._state(vote.block_id)
        if voter not in state.direct:
            state.direct.add(voter)
            if voter not in state.endorsers:
                self._add_endorser(block, state, voter, now)

        if self._naive:
            # Flawed Appendix-C accounting: pretend the voter never
            # voted for a conflicting block (marker 0 endorses the
            # whole ancestor path).
            self._walk_marker(block, voter, 0, now)
        elif vote.intervals:
            self._walk_intervals(
                block, voter, IntervalSet.from_pairs(vote.intervals), now
            )
        else:
            self._walk_marker(block, voter, vote.conflicts_marker(), now)

    # ------------------------------------------------------------------
    # ancestor walks
    # ------------------------------------------------------------------

    def _walk_marker(self, block: Block, voter: int, marker: int, now: float) -> None:
        round_mode = self._mode == "round"
        cursor = block
        while cursor is not None:
            state = self._state(cursor.id())
            stored = state.marker_coverage.get(voter)
            if stored is not None and stored <= marker:
                return  # an earlier vote already covered this path at least as deeply
            state.marker_coverage[voter] = (
                marker if stored is None else min(stored, marker)
            )
            if round_mode:
                if marker < cursor.round:
                    if voter not in state.endorsers:
                        self._add_endorser(cursor, state, voter, now)
                else:
                    # Rounds strictly decrease towards genesis, so this
                    # vote endorses nothing below either.  Coverage is
                    # recorded, so equal-or-larger markers stop here.
                    return
            if cursor.parent_id is None:
                return
            cursor = self._store.maybe_get(cursor.parent_id)

    def _walk_intervals(
        self, block: Block, voter: int, intervals: IntervalSet, now: float
    ) -> None:
        round_mode = self._mode == "round"
        cursor = block
        while cursor is not None:
            state = self._state(cursor.id())
            key = self._key(cursor)
            if round_mode:
                # Only thresholds <= this block's round matter from here
                # down (rounds strictly decrease towards genesis).
                relevant = intervals.clamp(0, key)
                if relevant.is_empty():
                    return
            else:
                # Height mode: k-endorsement thresholds are unbounded, so
                # the full interval set stays relevant all the way down.
                relevant = intervals
            stored = state.interval_coverage.get(voter)
            if stored is not None and relevant.issubset(stored):
                return
            state.interval_coverage[voter] = (
                relevant if stored is None else stored.union(relevant)
            )
            if round_mode and key in relevant:
                if voter not in state.endorsers:
                    self._add_endorser(cursor, state, voter, now)
            if cursor.parent_id is None:
                return
            cursor = self._store.maybe_get(cursor.parent_id)

    def _add_endorser(
        self, block: Block, state: _BlockEndorsementState, voter: int, now: float
    ) -> None:
        state.endorsers.add(voter)
        if self._mode != "round":
            return
        count = len(state.endorsers)
        for listener in self._listeners:
            listener(block, count, now)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def count(self, block_id: BlockId) -> int:
        """Endorser count in round mode (threshold = the block's round)."""
        state = self._states.get(block_id)
        return len(state.endorsers) if state is not None else 0

    def endorsers(self, block_id: BlockId) -> frozenset:
        """The endorser set in round mode."""
        state = self._states.get(block_id)
        return frozenset(state.endorsers) if state is not None else frozenset()

    def count_at(self, block_id: BlockId, k: int) -> int:
        """``k``-endorser count (height mode, Figure 11)."""
        return len(self.endorsers_at(block_id, k))

    def endorsers_at(self, block_id: BlockId, k: int) -> frozenset:
        """The set of ``k``-endorsers of ``block_id``."""
        state = self._states.get(block_id)
        if state is None:
            return frozenset()
        result = set(state.direct)
        for voter, marker in state.marker_coverage.items():
            if marker < k:
                result.add(voter)
        for voter, intervals in state.interval_coverage.items():
            if k in intervals:
                result.add(voter)
        return frozenset(result)


class BruteForceEndorsementOracle:
    """Reference implementation: recompute endorsements from a vote log.

    Quadratic and allocation-heavy — used only by tests to certify that
    :class:`EndorsementTracker`'s early-stopping walks are exact.
    """

    def __init__(self, store: BlockStore, mode: str = "round") -> None:
        self._store = store
        self._mode = mode
        self._votes: list = []

    def add_vote(self, vote) -> None:
        self._votes.append(vote)

    def add_strong_qc(self, qc: QuorumCertificate) -> None:
        for vote in qc.votes:
            self.add_vote(vote)

    def endorsers(self, block_id: BlockId, k: int | None = None) -> frozenset:
        """Endorsers of ``block_id`` (``k`` overrides the threshold)."""
        block = self._store.maybe_get(block_id)
        if block is None:
            return frozenset()
        threshold = k
        if threshold is None:
            threshold = block.round if self._mode == "round" else block.height
        result = set()
        for vote in self._votes:
            if vote.block_id not in self._store:
                continue
            if vote.block_id == block_id:
                result.add(vote.voter)
                continue
            if not self._store.is_ancestor(block_id, vote.block_id):
                continue
            if vote.intervals:
                if any(lo <= threshold <= hi for lo, hi in vote.intervals):
                    result.add(vote.voter)
            elif vote.conflicts_marker() < threshold:
                result.add(vote.voter)
        return frozenset(result)

    def count(self, block_id: BlockId, k: int | None = None) -> int:
        return len(self.endorsers(block_id, k))

"""Strength levels, ratio grids, and per-block strength timelines.

A block is *x-strong committed* when it tolerates ``x`` Byzantine
faults (Definition 1); ``x`` ranges over ``[f, 2f]``.  The evaluation
(Figure 7) reports latency at ratios ``x/f ∈ {1.0, 1.1, …, 2.0}``; we
translate a ratio to the absolute level ``ceil(ratio · f)`` — the
smallest integer strength that delivers "at least ratio·f" tolerance.
"""

from __future__ import annotations

import math
from repro.types.block import Block


def max_strength(f: int) -> int:
    """The strongest achievable commit level, ``2f``."""
    return 2 * f


def level_for_ratio(ratio: float, f: int) -> int:
    """Absolute strength level for a paper-style ratio like ``1.4``.

    Uses ``floor`` — the paper's convention: with ``f = 33`` it calls
    ``x = 56 = 2f - 10`` "1.7f" (Section 4.1, asymmetric setting), so a
    ratio label denotes the largest integer strength not exceeding
    ``ratio·f``.  A tiny epsilon guards against float artifacts
    (``1.7 * 33 = 56.09999…``).
    """
    return math.floor(ratio * f + 1e-9)


def ratio_grid(start: float = 1.0, stop: float = 2.0, step: float = 0.1) -> tuple:
    """The x-axis of Figure 7: ratios from ``start`` to ``stop``."""
    count = int(round((stop - start) / step)) + 1
    return tuple(round(start + i * step, 10) for i in range(count))


class StrengthTimeline:
    """First-reach times of every strength level for one block.

    Levels are recorded densely (every integer from ``f`` up to the
    current strength), so ``first_reached(level)`` is an O(1) lookup.
    """

    __slots__ = ("block", "current", "first_reach")

    def __init__(self, block: Block) -> None:
        self.block = block
        self.current = -1
        self.first_reach: dict[int, float] = {}

    def raise_to(self, level: int, now: float) -> bool:
        """Record that strength reached ``level`` at time ``now``.

        Returns True if the level increased.  Every intermediate level
        is stamped with the same time (strength jumps when a straggler's
        strong-vote lands in a QC, Section 4.1).
        """
        if level <= self.current:
            return False
        start = self.current + 1 if self.current >= 0 else 0
        for intermediate in range(start, level + 1):
            self.first_reach.setdefault(intermediate, now)
        self.current = level
        return True

    def first_reached(self, level: int) -> float | None:
        """Time the block first became ``level``-strong, or None."""
        return self.first_reach.get(level)

    def latency_to(self, level: int) -> float | None:
        """Creation-to-level latency (what Figures 7 and 8 plot)."""
        reached = self.first_reach.get(level)
        if reached is None:
            return None
        return reached - self.block.created_at

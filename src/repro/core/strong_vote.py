"""Voting history, markers, and generalized endorsement intervals.

Figure 4: when voting for block ``B``, a replica attaches
``marker = max{B'.round | B' conflicts B and replica voted for B'}``
(``0`` by default).  SFT-Streamlet (Figure 11) uses heights instead of
rounds.  Section 3.4 generalizes the marker to the interval set
``I = [1, r] \\ (∪_F D_F)`` with ``D_F = [r_l + 1, r_h]`` per fork
``F``: ``r_h`` the largest round voted on ``F`` among blocks
conflicting with ``B`` and ``r_l`` the round of the common ancestor.

:class:`VotingHistory` implements both, maintaining — exactly as the
protocol description requires ("for every fork in the blockchain, the
replica additionally keeps the highest voted block on that fork") — the
set of *voted tips*: voted blocks that are not ancestors of other voted
blocks.  Tips suffice for both computations:

* any voted block ``V`` conflicting with ``B`` satisfies ``V ⪯ T`` for
  some tip ``T``; if ``T`` were an ancestor of ``B`` then so would be
  ``V`` — contradiction — hence ``T`` conflicts with ``B`` and has key
  (round/height) ≥ ``V``'s, so the max over conflicting tips equals the
  max over all conflicting voted blocks;
* the fork interval ``D_F`` of the paper is exactly
  ``[key(common_ancestor(B, T)) + 1, key(T)]`` for the conflicting tip
  ``T`` of that fork.

A brute-force recomputation over the full vote log is kept for
property-based cross-checks.
"""

from __future__ import annotations

from repro.core.intervals import IntervalSet
from repro.types.block import Block, BlockId
from repro.types.chain import BlockStore


def _key_of(block: Block, mode: str) -> int:
    return block.round if mode == "round" else block.height


class VotingHistory:
    """Tracks every block one replica voted for and derives markers.

    ``mode`` is ``"round"`` for SFT-DiemBFT or ``"height"`` for
    SFT-Streamlet.
    """

    def __init__(self, store: BlockStore, mode: str = "round") -> None:
        if mode not in ("round", "height"):
            raise ValueError("mode must be 'round' or 'height'")
        self._store = store
        self._mode = mode
        self._tips: list[BlockId] = []
        self._all_votes: list[BlockId] = []
        self.highest_voted_round = 0
        # Crash-recovery: tips reloaded from the WAL as (id, key) pairs.
        # Their blocks may be absent from the fresh post-restart store,
        # so they are kept separately with their fsync-time keys and
        # treated conservatively (see marker_for / intervals_for).
        self._restored: dict[BlockId, int] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_vote(self, block: Block) -> None:
        """Record that the replica voted for ``block``.

        Maintains the tip set: tips that ``block`` extends are absorbed
        by ``block``.
        """
        block_id = block.id()
        self._all_votes.append(block_id)
        self.highest_voted_round = max(self.highest_voted_round, block.round)
        surviving = [
            tip
            for tip in self._tips
            if not self._store.is_ancestor(tip, block_id)
        ]
        surviving.append(block_id)
        self._tips = surviving
        if self._restored:
            # A restored tip the new vote demonstrably extends is
            # absorbed exactly like a live tip; unknown-lineage tips
            # stay (conservatively treated as conflicting).
            self._restored = {
                tip: key
                for tip, key in self._restored.items()
                if not (
                    tip in self._store
                    and self._store.is_ancestor(tip, block_id)
                )
            }

    def voted_tips(self) -> tuple:
        """Current maximal voted blocks, one per live fork."""
        return tuple(self._tips)

    def tip_keys(self) -> tuple:
        """The tip set as durable ``(block_id, key)`` pairs — what the
        WAL persists so markers survive a crash."""
        live = tuple(
            (tip, _key_of(self._store.get(tip), self._mode))
            for tip in self._tips
        )
        return live + tuple(self._restored.items())

    def restore(self, entries, highest_voted_round: int) -> None:
        """Crash-recovery seam: reload WAL ``(block_id, key)`` tips.

        Restored tips whose blocks the fresh store does not (yet) know
        cannot be placed in the chain, so they contribute their full
        fsync-time key to every marker — the safe direction: an
        inflated marker endorses *fewer* rounds, never more.
        """
        for tip, key in entries:
            self._restored[tip] = max(self._restored.get(tip, 0), key)
        self.highest_voted_round = max(
            self.highest_voted_round, highest_voted_round
        )

    def forget_pruned(self, pruned) -> None:
        """Drop voted blocks removed by checkpoint truncation.

        Pruned blocks lie strictly below (or on forks abandoned below)
        the stable checkpoint, which carries a 2f+1 commit certificate;
        conflicts with them can no longer affect any live block, so —
        exactly like PBFT discarding pre-checkpoint log entries — their
        marker contribution is safely forgotten.
        """
        self._tips = [tip for tip in self._tips if tip not in pruned]
        self._all_votes = [
            voted for voted in self._all_votes if voted not in pruned
        ]
        for block_id in pruned:
            self._restored.pop(block_id, None)

    def vote_count(self) -> int:
        return len(self._all_votes)

    # ------------------------------------------------------------------
    # marker (Section 3.2 / Figure 4, Figure 11)
    # ------------------------------------------------------------------

    def marker_for(self, block: Block) -> int:
        """Marker to attach when voting for ``block`` (0 when fork-free)."""
        block_id = block.id()
        marker = 0
        for tip in self._tips:
            if self._store.conflicts(tip, block_id):
                marker = max(marker, _key_of(self._store.get(tip), self._mode))
        for tip, key in self._restored.items():
            if tip in self._store:
                if self._store.conflicts(tip, block_id):
                    marker = max(marker, key)
            else:
                # Unknown lineage: assume the worst (a conflict) so the
                # post-restart marker never under-reports.
                marker = max(marker, key)
        return marker

    def marker_brute_force(self, block: Block) -> int:
        """Oracle: recompute the marker from the full vote log."""
        block_id = block.id()
        marker = 0
        for voted_id in self._all_votes:
            if self._store.conflicts(voted_id, block_id):
                marker = max(marker, _key_of(self._store.get(voted_id), self._mode))
        return marker

    # ------------------------------------------------------------------
    # generalized intervals (Section 3.4)
    # ------------------------------------------------------------------

    def intervals_for(self, block: Block, window: int | None = None) -> IntervalSet:
        """Endorsed-round intervals ``I`` for a vote on ``block``.

        ``window = n`` restricts to the paper's "last n rounds" variant
        ``I = [r - n, r] \\ (∪_F D_F)``; ``None`` uses the full
        ``[1, r]`` range.  Genesis (key 0) is never part of ``I`` —
        the genesis block needs no endorsement.
        """
        block_id = block.id()
        r = _key_of(block, self._mode)
        lo = 1 if window is None else max(1, r - window)
        base = IntervalSet.single(lo, r)
        excluded = []
        for tip in self._tips:
            if not self._store.conflicts(tip, block_id):
                continue
            tip_block = self._store.get(tip)
            ancestor = self._store.common_ancestor(block_id, tip)
            r_l = _key_of(ancestor, self._mode)
            r_h = _key_of(tip_block, self._mode)
            excluded.append((r_l + 1, r_h))
        for tip, key in self._restored.items():
            if tip in self._store:
                if not self._store.conflicts(tip, block_id):
                    continue
                ancestor = self._store.common_ancestor(block_id, tip)
                excluded.append((_key_of(ancestor, self._mode) + 1, key))
            else:
                # Unknown lineage after a restart: exclude the whole
                # prefix up to the fsync-time key (never over-endorse).
                excluded.append((1, key))
        return base.subtract(IntervalSet.from_pairs(excluded))

    def intervals_brute_force(
        self, block: Block, window: int | None = None
    ) -> IntervalSet:
        """Oracle: intervals from the full vote log, one D per voted block.

        Uses every voted conflicting block (not just tips); the result
        must equal :meth:`intervals_for` because each voted block's
        exclusion interval is contained in its tip's.
        """
        block_id = block.id()
        r = _key_of(block, self._mode)
        lo = 1 if window is None else max(1, r - window)
        base = IntervalSet.single(lo, r)
        excluded = []
        for voted_id in self._all_votes:
            if not self._store.conflicts(voted_id, block_id):
                continue
            voted = self._store.get(voted_id)
            ancestor = self._store.common_ancestor(block_id, voted_id)
            excluded.append(
                (_key_of(ancestor, self._mode) + 1, _key_of(voted, self._mode))
            )
        return base.subtract(IntervalSet.from_pairs(excluded))

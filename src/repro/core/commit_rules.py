"""Regular and strong commit rules (3-chain and strong 3-chain).

Regular rules:

* DiemBFT (Figure 2): commit ``B_k`` (and ancestors) on seeing three
  adjacent certified blocks ``B_k, B_k+1, B_k+2`` with consecutive
  rounds — detection fires when the QC for ``B_k+2`` becomes known.
* Streamlet (Figure 10): commit ``B_k`` (the middle block) on seeing
  certified ``B_k-1, B_k, B_k+1`` at consecutive rounds.

Strong rules:

* SFT-DiemBFT (Figure 4): ``x``-strong commit ``B_k`` (and ancestors)
  iff the 3-chain blocks each have ``≥ x + f + 1`` endorsers.
* SFT-Streamlet (Figure 11): same with ``k``-endorsers, ``k`` the
  height of the middle block.

Because an ``x``-strong commit of a block strong-commits *all its
ancestors*, a block's strength is the max over every descendant
3-chain; :class:`CommitTracker` propagates level increases down the
ancestor path, recording first-reach times per level — the data behind
Figures 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.endorsement import EndorsementTracker
from repro.core.resilience import StrengthTimeline, max_strength
from repro.types.block import Block, BlockId
from repro.types.chain import BlockStore
from repro.types.quorum_cert import QuorumCertificate


@dataclass(frozen=True, slots=True)
class CommitEvent:
    """A block became (regularly) committed at this replica."""

    block_id: BlockId
    round: int
    height: int
    committed_at: float
    created_at: float

    def latency(self) -> float:
        return self.committed_at - self.created_at


@dataclass(frozen=True, slots=True)
class StrongCommitEvent:
    """A block reached a new strength level at this replica."""

    block_id: BlockId
    level: int
    at: float


class CommitTracker:
    """Per-replica commit state machine.

    ``rule`` is ``"diembft"`` (head-committing 3-chain) or
    ``"streamlet"`` (middle-committing 3-chain).  When an
    :class:`EndorsementTracker` is attached, strong-commit strength is
    tracked as endorsements accrue.
    """

    def __init__(
        self,
        store: BlockStore,
        f: int,
        rule: str = "diembft",
        endorsement: EndorsementTracker | None = None,
    ) -> None:
        if rule not in ("diembft", "streamlet"):
            raise ValueError("rule must be 'diembft' or 'streamlet'")
        self._store = store
        self.f = f
        self._rule = rule
        self._endorsement = endorsement
        self.committed: dict[BlockId, CommitEvent] = {}
        self.commit_order: list[CommitEvent] = []
        self.strong_events: list[StrongCommitEvent] = []
        self._timelines: dict[BlockId, StrengthTimeline] = {}
        self._active_triples: dict[BlockId, tuple] = {}
        self._max_strength = max_strength(f)
        self._quorum = 2 * f + 1
        self.highest_committed_round = 0
        #: Commit heights installed via snapshot transfer rather than
        #: 3-chain detection: a joiner's commit log legitimately jumps
        #: to the checkpoint height, and the prefix-consistency oracle
        #: excuses exactly these gaps.
        self.snapshot_heights: set[int] = set()
        #: First time this replica processed each block's QC — the
        #: proposal→QC phase boundary in the latency decomposition
        #: (:mod:`repro.obs.phases`).  Same lifetime as ``committed``.
        self.qc_times: dict[BlockId, float] = {}
        #: Optional :class:`repro.obs.Tracer` the owning replica
        #: attaches; ``endorse`` lifecycle spans are emitted here, the
        #: one place strength raises happen for every protocol family.
        self.tracer = None
        if endorsement is not None and rule == "diembft":
            endorsement.add_listener(self._on_endorser_update)

    # ------------------------------------------------------------------
    # regular commits
    # ------------------------------------------------------------------

    def on_new_qc(self, qc: QuorumCertificate, now: float) -> list:
        """Feed a newly learned QC; returns newly committed blocks.

        The caller must have recorded the QC's block (and the QC
        itself) in the block store first.
        """
        self.qc_times.setdefault(qc.block_id, now)
        tip = self._store.maybe_get(qc.block_id)
        if tip is None:
            return []
        if self._rule == "diembft":
            return self._check_diembft_commit(tip, now)
        return self._check_streamlet_commit(tip, now)

    def _check_diembft_commit(self, tip: Block, now: float) -> list:
        middle = self._store.parent(tip.id())
        if middle is None:
            return []
        head = self._store.parent(middle.id())
        if head is None:
            return []
        if tip.round != middle.round + 1 or middle.round != head.round + 1:
            return []
        if not (
            self._store.is_certified(tip.id())
            and self._store.is_certified(middle.id())
            and self._store.is_certified(head.id())
        ):
            return []
        self._register_triple(head, middle, tip, now)
        return self._commit_through(head, now)

    def _check_streamlet_commit(self, tip: Block, now: float) -> list:
        middle = self._store.parent(tip.id())
        if middle is None:
            return []
        head = self._store.parent(middle.id())
        if head is None:
            return []
        if tip.round != middle.round + 1 or middle.round != head.round + 1:
            return []
        if not (
            self._store.is_certified(tip.id())
            and self._store.is_certified(middle.id())
            and self._store.is_certified(head.id())
        ):
            return []
        self._register_triple(head, middle, tip, now)
        return self._commit_through(middle, now)

    def _commit_through(self, block: Block, now: float) -> list:
        """Commit ``block`` and all uncommitted ancestors (oldest first)."""
        pending = []
        cursor = block
        while cursor is not None and cursor.id() not in self.committed:
            pending.append(cursor)
            if cursor.parent_id is None:
                break
            cursor = self._store.maybe_get(cursor.parent_id)
        newly = []
        for blk in reversed(pending):
            event = CommitEvent(
                block_id=blk.id(),
                round=blk.round,
                height=blk.height,
                committed_at=now,
                created_at=blk.created_at,
            )
            self.committed[blk.id()] = event
            self.commit_order.append(event)
            newly.append(event)
            if blk.round > self.highest_committed_round:
                self.highest_committed_round = blk.round
        return newly

    def is_committed(self, block_id: BlockId) -> bool:
        return block_id in self.committed

    def forget_pruned(self, pruned) -> None:
        """Drop 3-chain work state anchored at truncated blocks.

        Strength timelines survive (they are observer metrics the
        analysis layer reads after the run); only the active-triple
        work set shrinks, since a pruned anchor can never fire again.
        """
        for anchor_id in [a for a in self._active_triples if a in pruned]:
            del self._active_triples[anchor_id]

    # ------------------------------------------------------------------
    # strong commits
    # ------------------------------------------------------------------

    def _register_triple(self, head: Block, middle: Block, tip: Block, now: float):
        """Remember a consecutive-round 3-chain for strength evaluation."""
        anchor = head if self._rule == "diembft" else middle
        if anchor.id() in self._active_triples:
            return
        self._active_triples[anchor.id()] = (head, middle, tip)
        if self._endorsement is not None:
            self._evaluate_triple(head, middle, tip, now)

    def _on_endorser_update(self, block: Block, count: int, now: float) -> None:
        """Endorsement listener (round mode): re-check affected triples.

        Strength is ``min(counts) - f - 1`` and a strong commit needs
        strength ≥ f, i.e. every 3-chain member at ≥ 2f + 1 endorsers.
        While ``block`` itself is still below quorum no triple through
        it can fire, so the first 2f updates per block skip the
        structural walk entirely — the dominant listener cost at scale.
        """
        if count < self._quorum:
            return
        # ``block`` participates in each triple, so any strength
        # computed below is ≤ min(count - f - 1, 2f); an anchor already
        # at that level cannot rise — skip the certification/count
        # queries.
        bound = count - self.f - 1
        if bound > self._max_strength:
            bound = self._max_strength
        timelines = self._timelines
        head_anchor = self._rule == "diembft"
        for triple in self._triples_containing(block):
            anchor = triple[0] if head_anchor else triple[1]
            timeline = timelines.get(anchor.id())
            if timeline is not None and timeline.current >= bound:
                continue
            self._evaluate_triple(*triple, now)

    def _triples_containing(self, block: Block):
        """Consecutive-round 3-chains in which ``block`` participates."""
        store = self._store
        block_id = block.id()
        parent = store.parent(block_id)
        grand = store.parent(parent.id()) if parent is not None else None
        # block as tip
        if (
            parent is not None
            and grand is not None
            and block.round == parent.round + 1
            and parent.round == grand.round + 1
        ):
            yield (grand, parent, block)
        # block as middle
        if parent is not None and block.round == parent.round + 1:
            for child_id in store.iter_children(block_id):
                child = store.get(child_id)
                if child.round == block.round + 1:
                    yield (parent, block, child)
        # block as head
        for child_id in store.iter_children(block_id):
            child = store.get(child_id)
            if child.round != block.round + 1:
                continue
            for grandchild_id in store.iter_children(child_id):
                grandchild = store.get(grandchild_id)
                if grandchild.round == child.round + 1:
                    yield (block, child, grandchild)

    def _evaluate_triple(
        self, head: Block, middle: Block, tip: Block, now: float
    ) -> None:
        """Apply the strong commit rule to one 3-chain.

        Two provably-no-op cases exit early: an anchor already at max
        strength cannot rise (``raise_to`` would refuse), and a
        computed strength at or below the anchor's current level
        changes nothing either.  Both skips leave every observable
        state — timelines, events, first-reach times — identical.
        """
        if self._endorsement is None:
            return
        anchor = head if self._rule == "diembft" else middle
        timeline = self._timelines.get(anchor.id())
        if timeline is not None and timeline.current >= self._max_strength:
            return  # saturated: nothing a new endorser can add
        if not (
            self._store.is_certified(head.id())
            and self._store.is_certified(middle.id())
            and self._store.is_certified(tip.id())
        ):
            return
        if self._rule == "diembft":
            counts = (
                self._endorsement.count(head.id()),
                self._endorsement.count(middle.id()),
                self._endorsement.count(tip.id()),
            )
        else:
            k = middle.height
            counts = (
                self._endorsement.count_at(head.id(), k),
                self._endorsement.count_at(middle.id(), k),
                self._endorsement.count_at(tip.id(), k),
            )
        strength = min(counts) - self.f - 1
        strength = min(strength, self._max_strength)
        if strength < self.f:
            return  # below the regular commit threshold: no strong commit yet
        if timeline is not None and strength <= timeline.current:
            return  # already recorded at this level or higher
        self._raise_strength(anchor, strength, now)

    def evaluate_strong_commits(self, now: float) -> None:
        """Re-evaluate every registered 3-chain (height mode driver).

        Streamlet's ``k``-endorser counts have no incremental listener,
        so the replica calls this after ingesting each strong-QC.
        Saturated triples (strength ``2f``) are dropped from the active
        set.
        """
        if self._endorsement is None:
            return
        saturated = []
        for anchor_id, (head, middle, tip) in self._active_triples.items():
            self._evaluate_triple(head, middle, tip, now)
            timeline = self._timelines.get(anchor_id)
            if timeline is not None and timeline.current >= max_strength(self.f):
                saturated.append(anchor_id)
        for anchor_id in saturated:
            del self._active_triples[anchor_id]

    def _raise_strength(self, anchor: Block, strength: int, now: float) -> None:
        """Propagate a strength increase to ``anchor`` and its ancestors."""
        cursor = anchor
        while cursor is not None:
            timeline = self._timelines.get(cursor.id())
            if timeline is None:
                timeline = StrengthTimeline(cursor)
                self._timelines[cursor.id()] = timeline
            if not timeline.raise_to(strength, now):
                return  # this ancestor (hence all below) already at >= strength
            self.strong_events.append(
                StrongCommitEvent(block_id=cursor.id(), level=strength, at=now)
            )
            if self.tracer is not None:
                self.tracer.emit(
                    now, "endorse", round=cursor.round, height=cursor.height,
                    block=cursor.id().short(), value=float(strength),
                )
            if cursor.parent_id is None:
                return
            cursor = self._store.maybe_get(cursor.parent_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def strength_of(self, block_id: BlockId) -> int:
        """Current strength level of a block (-1 if not strong committed)."""
        timeline = self._timelines.get(block_id)
        return timeline.current if timeline is not None else -1

    def timeline_of(self, block_id: BlockId) -> StrengthTimeline | None:
        return self._timelines.get(block_id)

    def timelines(self):
        """Iterate over all (block_id, StrengthTimeline) pairs."""
        return self._timelines.items()

    def commit_count(self) -> int:
        return len(self.commit_order)

"""The paper's primary contribution: strengthened fault tolerance.

This package is protocol-agnostic: it implements markers and
generalized interval votes (Sections 3.2 and 3.4), endorsement
accounting, and the strong commit rules, parameterized by whether
conflicts are measured in *rounds* (SFT-DiemBFT) or *heights*
(SFT-Streamlet, Appendix D).
"""

from repro.core.commit_rules import CommitEvent, CommitTracker, StrongCommitEvent
from repro.core.endorsement import BruteForceEndorsementOracle, EndorsementTracker
from repro.core.intervals import IntervalSet
from repro.core.resilience import (
    StrengthTimeline,
    level_for_ratio,
    max_strength,
    ratio_grid,
)
from repro.core.strong_vote import VotingHistory

__all__ = [
    "IntervalSet",
    "VotingHistory",
    "EndorsementTracker",
    "BruteForceEndorsementOracle",
    "CommitTracker",
    "CommitEvent",
    "StrongCommitEvent",
    "StrengthTimeline",
    "level_for_ratio",
    "max_strength",
    "ratio_grid",
]

"""Closed-integer-interval sets for generalized strong-votes.

Section 3.4 generalizes the single ``marker`` to a set ``I`` of round
intervals the strong-vote endorses: ``I = [1, r] \\ (∪_F D_F)`` where
each fork ``F`` the voter ever voted on contributes a non-endorsed
interval ``D_F = [r_l + 1, r_h]``.  :class:`IntervalSet` provides the
small algebra those computations need: union, subtraction,
intersection, membership, and subset tests over disjoint, normalized,
closed ``[lo, hi]`` integer intervals.

Instances are immutable; all operations return new sets.
"""

from __future__ import annotations


class IntervalSet:
    """An immutable set of integers stored as disjoint closed intervals.

    Internal representation: a tuple of ``(lo, hi)`` pairs with
    ``lo <= hi``, sorted ascending, pairwise disjoint and
    non-adjacent (``prev.hi + 1 < next.lo``), which makes every set
    have exactly one representation.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals=()) -> None:
        self._intervals = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals) -> tuple:
        spans = []
        for lo, hi in intervals:
            if lo > hi:
                continue
            spans.append((int(lo), int(hi)))
        if not spans:
            return ()
        spans.sort()
        merged = [spans[0]]
        for lo, hi in spans[1:]:
            last_lo, last_hi = merged[-1]
            if lo <= last_hi + 1:
                merged[-1] = (last_lo, max(last_hi, hi))
            else:
                merged.append((lo, hi))
        return tuple(merged)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def single(cls, lo: int, hi: int) -> "IntervalSet":
        """The closed interval ``[lo, hi]`` (empty when ``lo > hi``)."""
        return cls(((lo, hi),))

    @classmethod
    def point(cls, value: int) -> "IntervalSet":
        return cls(((value, value),))

    @classmethod
    def from_pairs(cls, pairs) -> "IntervalSet":
        return cls(tuple(pairs))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self._intervals

    def pairs(self) -> tuple:
        """The normalized ``(lo, hi)`` pairs (the wire representation)."""
        return self._intervals

    def __contains__(self, value: int) -> bool:
        # Binary search over disjoint sorted intervals.
        intervals = self._intervals
        lo_idx, hi_idx = 0, len(intervals)
        while lo_idx < hi_idx:
            mid = (lo_idx + hi_idx) // 2
            lo, hi = intervals[mid]
            if value < lo:
                hi_idx = mid
            elif value > hi:
                lo_idx = mid + 1
            else:
                return True
        return False

    def min(self) -> int:
        if not self._intervals:
            raise ValueError("empty interval set has no minimum")
        return self._intervals[0][0]

    def max(self) -> int:
        if not self._intervals:
            raise ValueError("empty interval set has no maximum")
        return self._intervals[-1][1]

    def count(self) -> int:
        """Number of integers contained in the set."""
        return sum(hi - lo + 1 for lo, hi in self._intervals)

    def iter_values(self):
        """Iterate over every contained integer (ascending)."""
        for lo, hi in self._intervals:
            yield from range(lo, hi + 1)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._intervals + other._intervals)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        result = []
        a, b = self._intervals, other._intervals
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                result.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self \\ other``."""
        result = []
        b = other._intervals
        for lo, hi in self._intervals:
            cursor = lo
            for b_lo, b_hi in b:
                if b_hi < cursor:
                    continue
                if b_lo > hi:
                    break
                if b_lo > cursor:
                    result.append((cursor, b_lo - 1))
                cursor = max(cursor, b_hi + 1)
                if cursor > hi:
                    break
            if cursor <= hi:
                result.append((cursor, hi))
        return IntervalSet(result)

    def issubset(self, other: "IntervalSet") -> bool:
        """True iff every value of ``self`` is in ``other``."""
        return self.subtract(other).is_empty()

    def overlaps(self, other: "IntervalSet") -> bool:
        return not self.intersection(other).is_empty()

    def clamp(self, lo: int, hi: int) -> "IntervalSet":
        """Intersection with ``[lo, hi]`` — the windowing of Section 3.4."""
        return self.intersection(IntervalSet.single(lo, hi))

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __len__(self) -> int:
        """Number of disjoint intervals (not contained integers)."""
        return len(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"[{lo},{hi}]" for lo, hi in self._intervals)
        return f"IntervalSet({body})"

"""Command-line interface: run SFT experiments from the shell.

Examples::

    python -m repro run --protocol sft-diembft --n 31 --duration 20
    python -m repro run --topology asymmetric --delta 0.2 --timeout 0.15
    python -m repro figure 7a            # regenerate a paper figure
    python -m repro counterexample       # Appendix C walkthrough
    python -m repro health --n 31        # QC-diversity health report
    python -m repro campaign run scenarios/smoke.toml --workers 4
    python -m repro campaign diff report.json baseline.json
    python -m repro fuzz run --seeds 0:50 --workers 4
    python -m repro fuzz replay scenarios/fuzz_corpus/appendix_c_naive.json
    python -m repro fuzz shrink failing.json --out minimal.json
    python -m repro bench run --suite smoke --label local
    python -m repro bench compare BENCH_local.json BENCH_baseline.json
    python -m repro trace summarize scenarios/fuzz_corpus/some_case.json
    python -m repro trace export scenario.json --out trace.json
    python -m repro rt run scenarios/rt_smoke.toml --clients 4
    python -m repro rt diff scenarios/rt_smoke.toml
"""

from __future__ import annotations

import argparse
import sys

from repro.adversary import AppendixCScenario
from repro.analysis import (
    format_campaign_table,
    format_fig7_table,
    format_series_csv,
    line_chart,
)
from repro.analysis.chain_stats import collect_chain_stats
from repro.analysis.health import QCDiversityMonitor
from repro.core.resilience import ratio_grid
from repro.runtime.config import PROTOCOLS, ExperimentConfig, build_cluster
from repro.runtime.metrics import (
    check_commit_safety,
    regular_commit_latency,
    strong_latency_series,
    throughput_txps,
)


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", choices=PROTOCOLS, default="sft-diembft")
    parser.add_argument("--n", type=int, default=31, help="replica count")
    parser.add_argument(
        "--topology", choices=("uniform", "symmetric", "asymmetric"),
        default="symmetric",
    )
    parser.add_argument("--delta", type=float, default=0.1,
                        help="inter-region delay δ in seconds")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="simulated seconds")
    parser.add_argument("--timeout", type=float, default=1.0,
                        help="pacemaker base round timeout")
    parser.add_argument("--extra-wait", type=float, default=0.0,
                        help="leader QC extra wait (Section 4.2)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--intervals", action="store_true",
                        help="generalized interval votes (Section 3.4)")
    parser.add_argument("--crash", type=int, default=0,
                        help="crash this many replicas at t=0")
    parser.add_argument("--csv", action="store_true",
                        help="emit the latency series as CSV")


def _config_from_args(args) -> ExperimentConfig:
    crash_schedule = tuple(
        (args.n - 1 - index, 0.0) for index in range(args.crash)
    )
    return ExperimentConfig(
        protocol=args.protocol,
        n=args.n,
        topology=args.topology,
        delta=args.delta,
        jitter=0.004,
        duration=args.duration,
        round_timeout=args.timeout,
        qc_extra_wait=args.extra_wait,
        seed=args.seed,
        generalized_intervals=args.intervals,
        verify_signatures=args.n <= 31,
        observers="all" if args.n <= 31 else 5,
        crash_schedule=crash_schedule,
    )


def command_run(args) -> int:
    config = _config_from_args(args)
    print(f"protocol={config.protocol} n={config.n} f={config.resolved_f()} "
          f"topology={config.build_topology().describe()} "
          f"duration={config.duration}s seed={config.seed}")
    cluster = build_cluster(config).run()
    survivors = [replica for replica in cluster.replicas if not replica.crashed]
    check_commit_safety(survivors)
    replica = survivors[0]
    commits = len(replica.commit_tracker.commit_order)
    mean, count = regular_commit_latency(
        cluster, created_before=config.duration * 0.66
    )
    print(f"\ncommits: {commits}  rounds: {replica.current_round}  "
          f"throughput: {throughput_txps(cluster):.0f} txn/s")
    if mean is not None:
        print(f"regular commit latency: {mean:.3f}s over {count} samples")
    series = strong_latency_series(
        cluster, ratio_grid(), created_before=config.duration * 0.66
    )
    if args.csv:
        print(format_series_csv(series, label=config.protocol))
    else:
        print()
        print(format_fig7_table(
            {"run": series}, title="strong commit latency"
        ))
    stats = collect_chain_stats(replica)
    print(f"\nchain: {stats.blocks_committed} committed / "
          f"{stats.blocks_total} blocks, {stats.skipped_rounds} skipped "
          f"rounds, QC diversity {stats.qc_diversity:.2f}")
    return 0


def command_figure(args) -> int:
    if args.which == "7a":
        deltas, topology, timeout = (0.1, 0.2), "symmetric", 1.5
    elif args.which == "7b":
        deltas, topology, timeout = (0.1, 0.2), "asymmetric", 0.15
    else:
        print("supported figures: 7a, 7b", file=sys.stderr)
        return 2
    results = {}
    for delta in deltas:
        config = ExperimentConfig(
            protocol="sft-diembft",
            n=100,
            topology=topology,
            delta=delta,
            jitter=0.004,
            duration=args.duration,
            round_timeout=timeout,
            timeout_multiplier=1.0 if topology == "asymmetric" else 1.5,
            seed=11,
            verify_signatures=False,
            observers=10,
        )
        label = f"δ={delta * 1000:.0f}ms"
        print(f"running {topology} {label}…", file=sys.stderr)
        cluster = build_cluster(config).run()
        results[label] = strong_latency_series(
            cluster, ratio_grid(), created_before=args.duration * 0.6
        )
    print(format_fig7_table(results, title=f"Figure {args.which} (measured)"))
    print()
    print(line_chart(
        {
            label: [(point.ratio, point.mean_latency) for point in series]
            for label, series in results.items()
        },
        x_label="x-strong (f)",
        y_label="latency (s)",
    ))
    return 0


def command_counterexample(args) -> int:
    result = AppendixCScenario(f=args.f).run()
    print(f"Appendix C with f={args.f}:")
    print(f"  naive: main={result.naive_main_strength} "
          f"fork={result.naive_fork_strength} "
          f"violates Definition 1: {result.naive_violates_definition_1()}")
    print(f"  SFT:   main={result.sft_main_strength} "
          f"fork={result.sft_fork_strength} "
          f"safe: {result.sft_is_safe()}")
    return 0 if result.sft_is_safe() else 1


def command_health(args) -> int:
    config = _config_from_args(args)
    cluster = build_cluster(config).run()
    replica = cluster.replicas[0]
    monitor = QCDiversityMonitor(config.n)
    monitor.observe_chain(replica.store, replica.commit_tracker.commit_order)
    print(f"observed {monitor.qc_count()} chain QCs; "
          f"max achievable strength: "
          f"{monitor.max_achievable_strength(config.resolved_f())} "
          f"(2f = {2 * config.resolved_f()})")
    print(f"\n{'replica':>8}{'QCs':>7}{'rate':>7}{'last round':>12}")
    for health in monitor.report():
        last = health.last_seen_round if health.last_seen_round else "—"
        flag = "  ← outcast" if health.is_outcast() else ""
        print(f"{health.replica_id:>8}{health.qc_appearances:>7}"
              f"{health.appearance_rate:>7.2f}{str(last):>12}{flag}")
    return 0


def _load_campaign(path):
    """Load a campaign spec, turning user errors into clean exits."""
    from repro.experiments import Campaign

    try:
        return Campaign.from_file(path)
    except (ValueError, TypeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2) from error


def command_campaign_run(args) -> int:
    from repro.experiments import CampaignRunner, diff_reports, save_report

    campaign = _load_campaign(args.spec)
    try:
        jobs = campaign.expand()
    except ValueError as error:
        # Cross-axis combinations can still be invalid (e.g. a fault
        # mix that no longer fits a matrixed-down n).
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"campaign {campaign.name}: {len(jobs)} jobs, "
        f"workers={args.workers}",
        file=sys.stderr,
    )

    def progress(entry):
        metrics = entry["metrics"]
        print(
            f"  {entry['job_id']}: {metrics['commits']} commits "
            f"in {entry['wall_clock_s']:.1f}s",
            file=sys.stderr,
        )

    runner = CampaignRunner(jobs, workers=args.workers, name=campaign.name)
    report = runner.run(progress=progress)
    if args.flight_dir:
        written = _write_flight_dumps(report, args.flight_dir)
        for path in written:
            print(f"flight recording written to {path}", file=sys.stderr)
    if args.out:
        save_report(report, args.out)
        print(f"report written to {args.out}", file=sys.stderr)
    print(format_campaign_table(report))

    exit_code = 0
    if not report["summary"]["all_safe"]:
        print("SAFETY VIOLATION in at least one job", file=sys.stderr)
        exit_code = 1
    if not report["summary"]["all_invariants_ok"]:
        print("INVARIANT VIOLATION in at least one job", file=sys.stderr)
        exit_code = 1
    if args.baseline:
        regressions = diff_reports(
            report,
            _load_report_file(args.baseline),
            latency_tolerance=args.tolerance,
            message_tolerance=args.tolerance,
            commit_tolerance=args.tolerance,
        )
        exit_code = _report_regressions(regressions) or exit_code
    return exit_code


def _write_flight_dumps(report, directory) -> list:
    """Persist every job's flight recording under ``directory``."""
    from pathlib import Path

    from repro.obs import write_flight_dump

    written = []
    for entry in report.get("jobs", []):
        recording = entry.get("flight_recording")
        if recording is None:
            continue
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        name = entry["job_id"].replace("/", "_")
        path = target / f"{name}-flight.json"
        write_flight_dump(recording, path)
        written.append(str(path))
    return written


def _report_regressions(regressions) -> int:
    if not regressions:
        print("\nbaseline check: no regressions")
        return 0
    print(f"\nbaseline check: {len(regressions)} regression(s)")
    for regression in regressions:
        print(f"  {regression.describe()}")
    return 1


def _load_report_file(path):
    """Load a report JSON, turning user errors into clean exits."""
    import json

    from repro.experiments import load_report

    try:
        return load_report(path)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2) from error


def command_campaign_report(args) -> int:
    report = _load_report_file(args.report)
    print(format_campaign_table(report))
    summary = report.get("summary", {})
    if summary:
        print(
            f"\ntotal commits: {summary.get('total_commits')}  "
            f"mean regular latency: {summary.get('mean_regular_latency_s')}s  "
            f"all safe: {summary.get('all_safe')}"
        )
    return 0


def command_campaign_diff(args) -> int:
    from repro.experiments import diff_reports

    regressions = diff_reports(
        _load_report_file(args.report),
        _load_report_file(args.baseline),
        latency_tolerance=args.tolerance,
        message_tolerance=args.tolerance,
        commit_tolerance=args.tolerance,
    )
    return _report_regressions(regressions)


def _describe_violations(violations, indent: str = "  ") -> None:
    for violation in violations:
        tag = "expected counterexample" if violation["expected"] else "VIOLATION"
        print(f"{indent}[{tag}] {violation['invariant']}: {violation['detail']}")


def command_fuzz_run(args) -> int:
    from repro.experiments import save_report
    from repro.fuzz import PROFILES, parse_seed_range, run_fuzz

    try:
        seeds = parse_seed_range(args.seeds)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    profile = PROFILES[args.profile]
    print(
        f"fuzz {profile.name}: {len(seeds)} seeds, workers={args.workers}",
        file=sys.stderr,
    )

    def progress(entry):
        print(
            f"  {entry['job_id']}: {entry['metrics']['commits']} commits "
            f"in {entry['wall_clock_s']:.1f}s",
            file=sys.stderr,
        )

    report = run_fuzz(
        seeds,
        profile,
        workers=args.workers,
        corpus_dir=args.corpus_dir,
        shrink=not args.no_shrink,
        progress=progress,
    )
    if args.out:
        save_report(report, args.out)
        print(f"report written to {args.out}", file=sys.stderr)

    for case in report["cases"]:
        if case["violations"]:
            status = (
                "expected"
                if all(v["expected"] for v in case["violations"])
                else "VIOLATION"
            )
        else:
            status = "ok"
        print(f"{case['name']}: {status}  commits={case['commits']}")
        _describe_violations(case["violations"])
        if "minimized_spec" in case:
            print(f"  minimized after {case['shrink_attempts']} attempts")

    summary = report["summary"]
    print(
        f"\n{summary['cases']} cases: "
        f"{summary['unexpected_violations']} unexpected violation(s), "
        f"{summary['expected_counterexamples']} expected counterexample(s)"
    )
    for name in summary["minimized"]:
        print(f"  minimized spec: {args.corpus_dir}/{name}")
    return 1 if summary["unexpected_violations"] else 0


def _load_fuzz_spec(path):
    from repro.experiments import load_scenario

    try:
        return load_scenario(path)
    except (ValueError, TypeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2) from error


def command_fuzz_replay(args) -> int:
    from repro.fuzz import evaluate_case

    spec = _load_fuzz_spec(args.spec)
    seed = args.seed if args.seed is not None else spec.seeds[0]
    entry = evaluate_case(spec, seed)
    invariants = entry["metrics"]["invariants"]
    print(
        f"{spec.name} (seed {seed}): "
        f"{entry['metrics']['commits']} commits, "
        f"{len(invariants['violations'])} violation(s)"
    )
    _describe_violations(invariants["violations"])
    if args.flight_out:
        recording = entry.get("flight_recording")
        if recording is None:
            print("no flight recording (no violations)", file=sys.stderr)
        else:
            from repro.obs import write_flight_dump

            write_flight_dump(recording, args.flight_out)
            print(f"flight recording written to {args.flight_out}",
                  file=sys.stderr)
    if invariants["ok"]:
        print("all invariants hold" if not invariants["violations"]
              else "only expected counterexamples — invariants hold")
    if args.strict and invariants["violations"]:
        return 1
    return 0 if invariants["ok"] else 1


def command_fuzz_shrink(args) -> int:
    from repro.experiments import save_scenario
    from repro.fuzz import shrink_spec

    spec = _load_fuzz_spec(args.spec)
    try:
        result = shrink_spec(spec, seed=args.seed)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    minimized = result.spec.with_overrides(name=f"{spec.name}-min")
    out = args.out or f"{spec.name}-min.json"
    save_scenario(minimized, out)
    print(
        f"{spec.name}: shrunk={result.shrunk} after {result.attempts} "
        f"attempts → {out}"
    )
    return 0


def command_bench_run(args) -> int:
    from repro.perf import (
        SUITES,
        bench_path,
        build_report,
        compare_benchmarks,
        format_bench_table,
        run_suite,
        save_bench,
    )

    cases = SUITES[args.suite]()
    print(
        f"bench {args.label}: suite={args.suite} ({len(cases)} cases), "
        f"repeats={args.repeats}, workers={args.workers}",
        file=sys.stderr,
    )

    def progress(entry):
        wall = entry.get("run_wall_clock_s", entry["wall_clock_s"])
        print(
            f"  {entry['job_id']}: {entry['metrics'].get('events', 0)} events "
            f"in {wall:.2f}s",
            file=sys.stderr,
        )

    results = run_suite(
        cases, repeats=args.repeats, workers=args.workers, progress=progress
    )
    report = build_report(
        args.label, args.suite, results, repeats=args.repeats,
        workers=args.workers,
    )
    out = args.out or bench_path(args.label)
    save_bench(report, out)
    print(f"report written to {out}", file=sys.stderr)
    print(format_bench_table(report))
    if args.baseline:
        from repro.perf import format_comparison

        baseline = _load_bench_file(args.baseline)
        print()
        print(format_comparison(report, baseline))
        _print_bench_warnings(report, baseline)
        try:
            regressions = compare_benchmarks(
                report, baseline, threshold=args.threshold
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return _report_bench_regressions(regressions, args.threshold)
    return 0


def _load_bench_file(path):
    import json

    from repro.perf import load_bench

    try:
        return load_bench(path)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2) from error


def _print_bench_warnings(current, baseline) -> list:
    """Surface cases present in only one report (partial coverage)."""
    from repro.perf import coverage_warnings

    warnings = coverage_warnings(current, baseline)
    if warnings:
        print(f"\nbench coverage: {len(warnings)} warning(s)")
        for warning in warnings:
            print(f"  warning: {warning}")
    return warnings


def _report_bench_regressions(regressions, threshold) -> int:
    if not regressions:
        print(f"\nbench gate: no regressions (threshold {threshold:.0%})")
        return 0
    print(f"\nbench gate: {len(regressions)} regression(s) past "
          f"{threshold:.0%}")
    for regression in regressions:
        print(f"  {regression.describe()}")
    return 1


def command_bench_compare(args) -> int:
    from repro.perf import compare_benchmarks, format_comparison

    current = _load_bench_file(args.report)
    baseline = _load_bench_file(args.baseline)
    print(format_comparison(current, baseline))
    warnings = _print_bench_warnings(current, baseline)
    try:
        regressions = compare_benchmarks(
            current, baseline, threshold=args.threshold
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    exit_code = _report_bench_regressions(regressions, args.threshold)
    if args.strict_coverage and warnings:
        # A renamed or dropped case would otherwise escape the gate by
        # simply not being compared.
        print(
            f"bench gate: strict coverage failed — {len(warnings)} case(s) "
            "present in only one report",
            file=sys.stderr,
        )
        return exit_code or 1
    return exit_code


def _print_rt_summary(summary: dict) -> None:
    import json

    print(json.dumps(summary, indent=2, sort_keys=True))


def command_rt_run(args) -> int:
    from repro.rt_net.manager import RuntimeLaunchError, RuntimeManager

    spec = _load_fuzz_spec(args.spec)
    duration = args.duration if args.duration is not None else spec.duration
    try:
        manager = RuntimeManager(
            spec, seed=args.seed, workdir=args.workdir
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"rt run {spec.name}: n={spec.n} protocol={spec.protocol} "
        f"duration={duration}s clients={args.clients}",
        file=sys.stderr,
    )
    try:
        if args.clients > 0:
            import time as _time

            from repro.rt_net.clients import drive_fleet

            experiment = spec.to_experiment_config(manager.seed)
            manager.start()
            manager.wait_ready()
            fleet = drive_fleet(
                manager.endpoints(),
                experiment.resolved_f(),
                duration,
                num_clients=args.clients,
                seed=manager.seed,
            )
            _time.sleep(0.5)  # let trailing replies drain into results
            report = manager.stop()
            print("client fleet:", file=sys.stderr)
            _print_rt_summary(fleet)
        else:
            report = manager.run(duration)
    except RuntimeLaunchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        manager.cleanup()
    _print_rt_summary(report.summary())
    if report.min_commits() < 1:
        print("FAIL: some replica committed nothing", file=sys.stderr)
        return 1
    if not report.chains_agree():
        print("FAIL: replicas disagree on the committed prefix",
              file=sys.stderr)
        return 1
    return 0


def command_rt_diff(args) -> int:
    from repro.rt_net.differential import run_differential
    from repro.rt_net.manager import RuntimeLaunchError

    spec = _load_fuzz_spec(args.spec)
    print(f"rt diff {spec.name}: simulator oracle vs TCP cluster…",
          file=sys.stderr)
    try:
        result = run_differential(
            spec,
            seed=args.seed,
            tcp_duration=args.duration,
            workdir=args.workdir,
        )
    except (ValueError, RuntimeLaunchError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _print_rt_summary(result.summary())
    if not result.ok():
        for problem in result.problems():
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    return 0


def _run_traced_cluster(args):
    """Run one scenario with tracing forced on; returns (spec, cluster)."""
    spec = _load_fuzz_spec(args.spec)
    if spec.script:
        print("error: scripted scenarios have no cluster to trace",
              file=sys.stderr)
        raise SystemExit(2)
    spec = spec.with_overrides(trace_level=args.level)
    seed = args.seed if args.seed is not None else spec.seeds[0]
    print(f"tracing {spec.name} (seed {seed}, level {args.level})…",
          file=sys.stderr)
    cluster = spec.build(seed)
    cluster.run()
    return spec, cluster


def command_trace_summarize(args) -> int:
    from repro.obs import summarize_trace

    _spec, cluster = _run_traced_cluster(args)
    print(summarize_trace(cluster.trace, reference_replica=args.reference))
    return 0


def command_trace_export(args) -> int:
    import json

    from repro.obs import chrome_trace, validate_chrome_trace

    spec, cluster = _run_traced_cluster(args)
    data = chrome_trace(cluster.trace, reference_replica=args.reference)
    problems = validate_chrome_trace(data)
    if problems:
        for problem in problems:
            print(f"error: invalid trace event: {problem}", file=sys.stderr)
        return 1
    out = args.out or f"{spec.name}-trace.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"{len(data['traceEvents'])} trace events "
        f"({data['otherData']['recorded_events']} recorded, "
        f"{data['otherData']['dropped_events']} dropped) → {out}"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Strengthened Fault Tolerance in BFT replication "
                    "(ICDCS 2021) — simulation toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    _add_run_arguments(run_parser)
    run_parser.set_defaults(handler=command_run)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate a paper figure"
    )
    figure_parser.add_argument("which", choices=("7a", "7b"))
    figure_parser.add_argument("--duration", type=float, default=30.0)
    figure_parser.set_defaults(handler=command_figure)

    counter_parser = subparsers.add_parser(
        "counterexample", help="Appendix C naive-counting walkthrough"
    )
    counter_parser.add_argument("--f", type=int, default=2)
    counter_parser.set_defaults(handler=command_counterexample)

    health_parser = subparsers.add_parser(
        "health", help="QC-diversity replica health report (Section 5)"
    )
    _add_run_arguments(health_parser)
    health_parser.set_defaults(handler=command_health)

    campaign_parser = subparsers.add_parser(
        "campaign", help="declarative experiment campaigns (scenarios/)"
    )
    campaign_sub = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_run = campaign_sub.add_parser(
        "run", help="expand a scenario matrix and run every job"
    )
    campaign_run.add_argument("spec", help="scenario TOML/JSON file")
    campaign_run.add_argument("--workers", type=int, default=1,
                              help="parallel worker processes")
    campaign_run.add_argument("--out", default=None,
                              help="write the JSON campaign report here")
    campaign_run.add_argument("--baseline", default=None,
                              help="fail on regression vs this report")
    campaign_run.add_argument("--tolerance", type=float, default=0.25,
                              help="relative regression tolerance")
    campaign_run.add_argument("--flight-dir", default=None,
                              help="write flight-recorder dumps for "
                                   "violating jobs into this directory")
    campaign_run.set_defaults(handler=command_campaign_run)

    campaign_report = campaign_sub.add_parser(
        "report", help="pretty-print a saved campaign report"
    )
    campaign_report.add_argument("report", help="campaign report JSON")
    campaign_report.set_defaults(handler=command_campaign_report)

    campaign_diff = campaign_sub.add_parser(
        "diff", help="compare a campaign report against a baseline"
    )
    campaign_diff.add_argument("report", help="current campaign report JSON")
    campaign_diff.add_argument("baseline", help="baseline campaign report JSON")
    campaign_diff.add_argument("--tolerance", type=float, default=0.25,
                               help="relative regression tolerance")
    campaign_diff.set_defaults(handler=command_campaign_diff)

    fuzz_parser = subparsers.add_parser(
        "fuzz", help="randomized fault-schedule fuzzing (invariant oracle)"
    )
    fuzz_sub = fuzz_parser.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_sub.add_parser(
        "run", help="fuzz a seed range and judge every trace"
    )
    fuzz_run.add_argument("--seeds", default="0:50",
                          help="seed range 'lo:hi', list '1,2,9', or one seed")
    fuzz_run.add_argument("--profile", choices=("default", "smoke"),
                          default="default")
    fuzz_run.add_argument("--workers", type=int, default=1,
                          help="parallel worker processes")
    fuzz_run.add_argument("--out", default=None,
                          help="write the JSON fuzz report here")
    fuzz_run.add_argument("--corpus-dir", default=None,
                          help="write minimized failing specs here")
    fuzz_run.add_argument("--no-shrink", action="store_true",
                          help="skip shrinking failing schedules")
    fuzz_run.set_defaults(handler=command_fuzz_run)

    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-run one spec and re-check every invariant"
    )
    fuzz_replay.add_argument("spec", help="scenario TOML/JSON file")
    fuzz_replay.add_argument("--seed", type=int, default=None,
                             help="override the spec's first seed")
    fuzz_replay.add_argument("--strict", action="store_true",
                             help="fail even on expected counterexamples")
    fuzz_replay.add_argument("--flight-out", default=None,
                             help="write the flight-recorder dump here "
                                  "when the replay violates an invariant")
    fuzz_replay.set_defaults(handler=command_fuzz_replay)

    fuzz_shrink = fuzz_sub.add_parser(
        "shrink", help="bisect a failing spec to a minimal schedule"
    )
    fuzz_shrink.add_argument("spec", help="scenario TOML/JSON file")
    fuzz_shrink.add_argument("--seed", type=int, default=None,
                             help="override the spec's first seed")
    fuzz_shrink.add_argument("--out", default=None,
                             help="where to write the minimized spec")
    fuzz_shrink.set_defaults(handler=command_fuzz_shrink)

    bench_parser = subparsers.add_parser(
        "bench", help="macro-benchmarks and BENCH_*.json perf tracking"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run the benchmark suite and write BENCH_<label>.json"
    )
    bench_run.add_argument("--suite", choices=("full", "smoke"),
                           default="full")
    bench_run.add_argument("--label", default="local",
                           help="report label (file: BENCH_<label>.json)")
    bench_run.add_argument("--repeats", type=int, default=3,
                           help="runs per case; best-of wall clock is kept")
    bench_run.add_argument("--workers", type=int, default=1,
                           help="parallel workers (1 for stable timings)")
    bench_run.add_argument("--out", default=None,
                           help="override the report path")
    bench_run.add_argument("--baseline", default=None,
                           help="also compare against this bench report")
    bench_run.add_argument("--threshold", type=float, default=0.20,
                           help="relative events/sec regression threshold")
    bench_run.set_defaults(handler=command_bench_run)

    bench_compare = bench_sub.add_parser(
        "compare", help="gate one bench report against a baseline"
    )
    bench_compare.add_argument("report", help="current BENCH_*.json")
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json")
    bench_compare.add_argument("--threshold", type=float, default=0.20,
                               help="relative events/sec regression threshold")
    bench_compare.add_argument("--strict-coverage", action="store_true",
                               help="fail when a case is present in only "
                                    "one report (renames/drops escape the "
                                    "gate otherwise)")
    bench_compare.set_defaults(handler=command_bench_compare)

    rt_parser = subparsers.add_parser(
        "rt", help="real-network runtime (multi-process asyncio TCP)"
    )
    rt_sub = rt_parser.add_subparsers(dest="rt_command", required=True)

    def _add_rt_arguments(sub) -> None:
        sub.add_argument("spec", help="scenario TOML/JSON file")
        sub.add_argument("--seed", type=int, default=None,
                         help="override the spec's first seed")
        sub.add_argument("--duration", type=float, default=None,
                         help="wall seconds to run (default: spec duration)")
        sub.add_argument("--workdir", default=None,
                         help="keep configs/logs/results here instead of "
                              "a temporary directory")

    rt_run = rt_sub.add_parser(
        "run", help="spawn a TCP replica cluster and run a workload"
    )
    _add_rt_arguments(rt_run)
    rt_run.add_argument("--clients", type=int, default=0,
                        help="drive this many closed-loop clients "
                             "(f+1-matching-reply acknowledgement)")
    rt_run.set_defaults(handler=command_rt_run)

    rt_diff = rt_sub.add_parser(
        "diff",
        help="run the same spec under the simulator and over TCP and "
             "require identical committed chains",
    )
    _add_rt_arguments(rt_diff)
    rt_diff.set_defaults(handler=command_rt_diff)

    trace_parser = subparsers.add_parser(
        "trace", help="causal block-lifecycle tracing (Perfetto export)"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    def _add_trace_arguments(sub) -> None:
        sub.add_argument("spec", help="scenario TOML/JSON file")
        sub.add_argument("--seed", type=int, default=None,
                         help="override the spec's first seed")
        sub.add_argument("--level", choices=("spans", "full"),
                         default="spans",
                         help="trace detail (full adds message deliveries)")
        sub.add_argument("--reference", type=int, default=0,
                         help="replica whose lifecycle is decomposed")

    trace_summarize = trace_sub.add_parser(
        "summarize", help="run one scenario traced and print a span summary"
    )
    _add_trace_arguments(trace_summarize)
    trace_summarize.set_defaults(handler=command_trace_summarize)

    trace_export = trace_sub.add_parser(
        "export",
        help="run one scenario traced and export Chrome trace-event JSON",
    )
    _add_trace_arguments(trace_export)
    trace_export.add_argument("--out", default=None,
                              help="output path (default <name>-trace.json)")
    trace_export.set_defaults(handler=command_trace_export)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

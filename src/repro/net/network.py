"""Message passing over the simulated network.

Semantics implemented here (Section 2 of the paper):

* all-to-all reliable authenticated channels;
* partial synchrony: an unknown Global Stabilization Time (GST) before
  which delivery may be arbitrarily delayed; after GST every message
  arrives within the topology delay (+ jitter);
* optional bandwidth modelling: a multicast of a large block from one
  sender serializes onto its uplink, so receivers see staggered
  arrival times — this is what makes strong-QC membership a race and
  drives endorsement diversity (Section 4.1);
* temporary partitions for fault-injection tests (messages crossing a
  partition are held and delivered at heal time — channels stay
  reliable).

Message sizes are estimated from payloads so that bandwidth effects
scale with the paper's ~450 KB blocks.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field

from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.types.messages import (
    CheckpointMsg,
    EchoMsg,
    ExtraVotesMsg,
    ProposalMsg,
    QCMsg,
    SnapshotRequestMsg,
    SnapshotResponseMsg,
    SyncRequestMsg,
    SyncResponseMsg,
    TimeoutMsg,
    VoteMsg,
)

_VOTE_SIZE = 200
_TIMEOUT_SIZE = 300
_HEADER_SIZE = 64
_QC_SIZE = 2_000
_HASH_SIZE = 32


def _vote_wire_size(vote) -> int:
    """Plain vote size plus the strong-vote extras (marker/intervals)."""
    size = _VOTE_SIZE
    intervals = vote.intervals  # () on plain votes (class attribute)
    if intervals:
        size += 16 * len(intervals)
    elif hasattr(vote, "marker"):
        size += 8  # the single marker integer (Figure 4)
    return size


def _proposal_size(message) -> int:
    return _HEADER_SIZE + message.block.payload.size_bytes() + 2_000


def _vote_msg_size(message) -> int:
    return _vote_wire_size(message.vote)


def _timeout_size(message) -> int:
    size = _TIMEOUT_SIZE
    if message.vote is not None:  # sync-enabled vote recovery piggyback
        size += _vote_wire_size(message.vote)
    return size


def _sync_request_size(message) -> int:
    del message
    return _HEADER_SIZE + _HASH_SIZE + 16  # target hash + max/nonce ints


def _sync_response_size(message) -> int:
    # Each entry ships a full block (payload + header) plus its embedded
    # parent QC; the optional tip QC rides on top.
    size = _HEADER_SIZE
    for block in message.blocks:
        size += block.payload.size_bytes() + _QC_SIZE + _HEADER_SIZE
    if message.tip_qc is not None:
        size += _QC_SIZE
    return size


def _checkpoint_size(message) -> int:
    del message
    # height int + checkpoint block hash + state digest + signature.
    return _HEADER_SIZE + 8 + 2 * _HASH_SIZE


def _snapshot_request_size(message) -> int:
    del message
    return _HEADER_SIZE + 16  # min-height + nonce ints


def _snapshot_response_size(message) -> int:
    # The dominant cost is the full kvstore image; each entry ships its
    # key/value strings, each applied txid a hash, each certificate
    # signer a (id, signature) pair, plus the checkpoint block itself.
    size = _HEADER_SIZE + 8 + 2 * _HASH_SIZE
    size += sum(len(key) + len(value) + 8 for key, value in message.state)
    size += _HASH_SIZE * len(message.applied_txids)
    size += (_HASH_SIZE + 8) * len(message.cert_signers)
    if message.block is not None:
        size += message.block.payload.size_bytes() + _QC_SIZE + _HEADER_SIZE
    return size


def _extra_votes_size(message) -> int:
    if message.votes:
        return _HEADER_SIZE + sum(
            _vote_wire_size(vote) for vote in message.votes
        )
    return _HEADER_SIZE + _VOTE_SIZE


def _qc_msg_size(message) -> int:
    # The aggregated certificate ships every embedded signed vote, so
    # linear mode trades O(n²) vote messages for one O(n·vote) payload.
    return _HEADER_SIZE + sum(
        _vote_wire_size(vote) for vote in message.qc.votes
    )


def _echo_size(message) -> int:
    return _HEADER_SIZE + wire_size_bytes(message.inner)


def _default_size(message) -> int:
    del message
    return _HEADER_SIZE


#: Concrete type → size estimator.  Unknown types (message subclasses,
#: test stubs) resolve through :func:`_resolve_sizer` exactly once.
_WIRE_SIZERS: dict = {
    ProposalMsg: _proposal_size,
    VoteMsg: _vote_msg_size,
    QCMsg: _qc_msg_size,
    TimeoutMsg: _timeout_size,
    ExtraVotesMsg: _extra_votes_size,
    EchoMsg: _echo_size,
    SyncRequestMsg: _sync_request_size,
    SyncResponseMsg: _sync_response_size,
    CheckpointMsg: _checkpoint_size,
    SnapshotRequestMsg: _snapshot_request_size,
    SnapshotResponseMsg: _snapshot_response_size,
}

#: Resolution order for subclasses — mirrors the old isinstance chain.
_MESSAGE_BASES = (
    ProposalMsg,
    VoteMsg,
    QCMsg,
    TimeoutMsg,
    ExtraVotesMsg,
    EchoMsg,
    SyncRequestMsg,
    SyncResponseMsg,
    CheckpointMsg,
    SnapshotRequestMsg,
    SnapshotResponseMsg,
)


def _resolve_sizer(message_type):
    """Find (and memoize) the sizer for a not-yet-seen message type."""
    sizer = _default_size
    for base in _MESSAGE_BASES:
        if issubclass(message_type, base):
            sizer = _WIRE_SIZERS[base]
            break
    _WIRE_SIZERS[message_type] = sizer
    return sizer


def wire_size_bytes(message) -> int:
    """Estimate the serialized size of a protocol message.

    Dispatch is a single dict lookup on the concrete type instead of
    an isinstance chain — ``Network.send`` calls this once per message.
    """
    message_type = type(message)
    sizer = _WIRE_SIZERS.get(message_type)
    if sizer is None:
        sizer = _resolve_sizer(message_type)
    return sizer(message)


@dataclass(slots=True)
class NetworkConfig:
    """Tunable delivery behaviour.

    ``jitter`` adds ``U[0, jitter)`` seconds per message.  ``gst``
    activates partial synchrony: messages sent before GST incur
    ``pre_gst_delay`` extra (delivered no earlier than GST).
    ``bandwidth_bytes_per_sec`` serializes each sender's outgoing
    traffic; 0 disables bandwidth modelling.

    At-least-once delivery faults (both default off, preserving
    byte-identical replay): ``duplicate_rate`` redelivers each unicast
    a second time with that probability, and ``reorder_window`` adds
    ``U[0, reorder_window)`` extra seconds per message so later sends
    can overtake earlier ones.  Channels stay reliable — the original
    copy always arrives — but exactly-once is gone, which is the regime
    where recovery/redelivery idempotency bugs hide.
    """

    jitter: float = 0.0
    seed: int = 0
    gst: float = 0.0
    pre_gst_delay: float = 0.0
    bandwidth_bytes_per_sec: float = 0.0
    processing_delay: float = 0.0
    duplicate_rate: float = 0.0
    reorder_window: float = 0.0


@dataclass(slots=True)
class _Partition:
    groups: tuple
    start: float
    end: float
    group_of: dict = field(default_factory=dict)

    def __post_init__(self):
        for index, group in enumerate(self.groups):
            for replica in group:
                self.group_of[replica] = index

    def separates(self, src: int, dst: int) -> bool:
        src_group = self.group_of.get(src)
        dst_group = self.group_of.get(dst)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group


class Network:
    """Delivers messages between registered handlers with simulated delays."""

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        config: NetworkConfig | None = None,
    ) -> None:
        self.simulator = simulator
        self.topology = topology
        self.config = config or NetworkConfig()
        self._rng = random.Random(self.config.seed)
        # At-least-once faults draw from their own stream so turning
        # them on never perturbs the jitter / multicast-shuffle
        # sequence above (byte-identical default-off replay).
        self._delivery_rng = (
            random.Random(f"at-least-once:{self.config.seed}")
            if self.config.duplicate_rate > 0 or self.config.reorder_window > 0
            else None
        )
        self._handlers: dict[int, object] = {}
        self._uplink_busy_until: dict[int, float] = {}
        self._partitions: list[_Partition] = []
        self._partitions_min_end = math.inf
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_sent = 0
        self.sent_by_type: Counter = Counter()
        self.dropped_to_unregistered = 0
        self.messages_duplicated = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def register(self, replica_id: int, handler) -> None:
        """Attach ``handler.deliver(src, message)`` as the endpoint."""
        self._handlers[replica_id] = handler

    def unregister(self, replica_id: int) -> None:
        """Remove an endpoint (a crashed replica receives nothing)."""
        self._handlers.pop(replica_id, None)

    def add_partition(self, groups, start: float, end: float) -> None:
        """Partition replicas into ``groups`` during ``[start, end)``.

        Cross-group messages sent in the window are held and delivered
        after ``end`` (+ the normal delay) — reliable channels, late
        delivery, which is exactly pre-GST partial synchrony.
        """
        self._partitions.append(
            _Partition(tuple(tuple(group) for group in groups), start, end)
        )
        self._partitions_min_end = min(self._partitions_min_end, end)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, message) -> None:
        """Send one message; delivery is scheduled on the simulator."""
        now = self.simulator.now
        size = wire_size_bytes(message)
        self.messages_sent += 1
        self.bytes_sent += size
        self.sent_by_type[type(message).__name__] += 1

        depart = now + self._serialization_delay(src, size)
        arrival = depart + self._link_delay(src, dst, depart)
        if self._delivery_rng is not None:
            arrival = self._at_least_once(src, dst, message, arrival)
        # Deliveries are never cancelled: the fire-and-forget fast path
        # skips allocating a TimerHandle per message.
        self.simulator.schedule_fire(arrival, self._deliver, src, dst, message)

    def _at_least_once(self, src: int, dst: int, message, arrival: float) -> float:
        """Apply the at-least-once delivery faults to one unicast.

        Reordering perturbs this copy's arrival by ``U[0, window)``
        extra seconds; duplication schedules an independent second
        delivery inside the same window (or one topology delay when no
        window is configured, so duplicates never arrive in lock-step
        with the original).
        """
        rng = self._delivery_rng
        window = self.config.reorder_window
        if window > 0:
            arrival += rng.uniform(0.0, window)
        if self.config.duplicate_rate > 0 and (
            rng.random() < self.config.duplicate_rate
        ):
            spread = window if window > 0 else self.topology.delay(src, dst)
            extra = rng.uniform(0.0, spread) if spread > 0 else 0.0
            self.messages_duplicated += 1
            self.simulator.schedule_fire(
                arrival + extra, self._deliver, src, dst, message
            )
        return arrival

    def multicast(self, src: int, message, include_self: bool = False) -> None:
        """Send ``message`` to every replica (optionally including ``src``).

        With bandwidth modelling on, per-destination copies serialize
        one after another in a random order — receivers of a 450 KB
        proposal see measurably staggered arrivals.
        """
        destinations = [
            replica for replica in range(self.topology.n)
            if include_self or replica != src
        ]
        if self.config.bandwidth_bytes_per_sec > 0:
            self._rng.shuffle(destinations)
        for dst in destinations:
            self.send(src, dst, message)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _serialization_delay(self, src: int, size: int) -> float:
        """Model the sender's uplink as a FIFO pipe."""
        bandwidth = self.config.bandwidth_bytes_per_sec
        if bandwidth <= 0:
            return 0.0
        now = self.simulator.now
        busy_until = max(self._uplink_busy_until.get(src, now), now)
        transmit = size / bandwidth
        self._uplink_busy_until[src] = busy_until + transmit
        return (busy_until + transmit) - now

    def _link_delay(self, src: int, dst: int, depart: float) -> float:
        base = self.topology.delay(src, dst)
        if self.config.jitter > 0 and src != dst:
            base += self._rng.uniform(0.0, self.config.jitter)
        arrival = depart + base
        # Partitions: hold cross-group traffic until the heal time.
        # Healed partitions (end <= now <= every future depart) can
        # never separate another message — prune them so partition-heavy
        # runs stop paying an O(partitions) scan per message.
        if self._partitions and self.simulator.now >= self._partitions_min_end:
            self._prune_partitions(self.simulator.now)
        for partition in self._partitions:
            if partition.start <= depart < partition.end and partition.separates(
                src, dst
            ):
                arrival = max(arrival, partition.end + base)
        # Partial synchrony: before GST, delivery may lag arbitrarily;
        # we model it as pre_gst_delay extra, never before GST itself.
        if depart < self.config.gst:
            arrival = max(arrival + self.config.pre_gst_delay, self.config.gst)
        return arrival - depart

    def _prune_partitions(self, now: float) -> None:
        """Drop healed partitions; every future depart is >= ``now``."""
        self._partitions = [
            partition for partition in self._partitions if partition.end > now
        ]
        self._partitions_min_end = min(
            (partition.end for partition in self._partitions), default=math.inf
        )

    def _deliver(self, src: int, dst: int, message) -> None:
        handler = self._handlers.get(dst)
        if handler is None:
            self.dropped_to_unregistered += 1
            return
        self.messages_delivered += 1
        if self.config.processing_delay > 0:
            self.simulator.schedule_fire(
                self.simulator.now + self.config.processing_delay,
                handler.deliver, src, message,
            )
        else:
            handler.deliver(src, message)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def reset_counters(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_sent = 0
        self.sent_by_type = Counter()

    def stats(self) -> dict:
        data = {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "bytes": self.bytes_sent,
            "by_type": dict(self.sent_by_type),
        }
        if self._delivery_rng is not None:
            # Only surfaced when the fault is on, so default-off runs
            # keep the committed metrics schema byte-for-byte.
            data["duplicated"] = self.messages_duplicated
        return data

"""Discrete-event network substrate.

This package replaces the paper's 100-node EC2 deployment: a
deterministic event-driven simulator (:mod:`repro.net.simulator`),
geo-distribution delay models matching Figure 6
(:mod:`repro.net.topology`), and a message-passing layer with GST
semantics, jitter, bandwidth serialization and partitions
(:mod:`repro.net.network`).
"""

from repro.net.simulator import Simulator, TimerHandle
from repro.net.network import Network, NetworkConfig, wire_size_bytes
from repro.net.sim import SimClock, SimTransport
from repro.net.topology import (
    AsymmetricTopology,
    RegionTopology,
    SymmetricTopology,
    Topology,
    UniformTopology,
)

__all__ = [
    "Simulator",
    "TimerHandle",
    "Network",
    "NetworkConfig",
    "wire_size_bytes",
    "SimTransport",
    "SimClock",
    "Topology",
    "UniformTopology",
    "RegionTopology",
    "SymmetricTopology",
    "AsymmetricTopology",
]

"""Geo-distribution delay models (Figure 6).

A topology maps ``(src, dst)`` replica pairs to one-way base delays.
Two concrete shapes mirror the paper's evaluation:

* **symmetric**: replicas split evenly into 3 regions, fixed delay δ
  between any cross-region pair (Figure 6 left: 34/33/33);
* **asymmetric**: regions A, B, C with 45/45/10 replicas; A↔B is
  20 ms while C↔A and C↔B are δ (Figure 6 right).

Intra-region delay defaults to 1 ms (same-AZ neighbours).
"""

from __future__ import annotations


class Topology:
    """Base class: a delay function over replica pairs."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("topology needs at least one replica")
        self.n = n

    def delay(self, src: int, dst: int) -> float:
        """One-way base delay in seconds from ``src`` to ``dst``."""
        raise NotImplementedError

    def region_of(self, replica_id: int) -> int:
        """Region index of a replica (0 for flat topologies)."""
        del replica_id
        return 0

    def describe(self) -> str:
        return f"{type(self).__name__}(n={self.n})"


class UniformTopology(Topology):
    """Every pair of distinct replicas has the same delay."""

    def __init__(self, n: int, delay: float = 0.001) -> None:
        super().__init__(n)
        self._delay = delay

    def delay(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self._delay


class RegionTopology(Topology):
    """Replicas grouped into regions with a per-region-pair delay table.

    ``region_sizes`` lists the number of replicas per region (assigned
    contiguously by id).  ``inter_delays[(i, j)]`` gives the one-way
    delay between regions ``i`` and ``j``; pairs may be specified in
    either order.  ``intra_delay`` applies within a region.
    """

    def __init__(
        self,
        region_sizes,
        inter_delays: dict,
        intra_delay: float = 0.001,
    ) -> None:
        sizes = tuple(int(size) for size in region_sizes)
        if any(size <= 0 for size in sizes):
            raise ValueError("every region needs at least one replica")
        super().__init__(sum(sizes))
        self.region_sizes = sizes
        self.intra_delay = intra_delay
        self._inter = {}
        for (a, b), value in inter_delays.items():
            self._inter[(a, b)] = value
            self._inter[(b, a)] = value
        self._region_of = []
        for region, size in enumerate(sizes):
            self._region_of.extend([region] * size)
        for i in range(len(sizes)):
            for j in range(i + 1, len(sizes)):
                if (i, j) not in self._inter:
                    raise ValueError(f"missing inter-region delay for ({i}, {j})")

    def region_of(self, replica_id: int) -> int:
        return self._region_of[replica_id]

    def delay(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        region_src = self._region_of[src]
        region_dst = self._region_of[dst]
        if region_src == region_dst:
            return self.intra_delay
        return self._inter[(region_src, region_dst)]

    def replicas_in_region(self, region: int) -> tuple:
        start = sum(self.region_sizes[:region])
        return tuple(range(start, start + self.region_sizes[region]))


class SymmetricTopology(RegionTopology):
    """Figure 6 (left): 3 regions, even split, uniform cross-region δ."""

    def __init__(self, n: int = 100, delta: float = 0.100, intra_delay: float = 0.001):
        base = n // 3
        remainder = n - 3 * base
        sizes = [base + (1 if i < remainder else 0) for i in range(3)]
        inter = {(0, 1): delta, (0, 2): delta, (1, 2): delta}
        super().__init__(sizes, inter, intra_delay)
        self.delta = delta

    def describe(self) -> str:
        sizes = "/".join(str(size) for size in self.region_sizes)
        return f"symmetric({sizes}, δ={self.delta * 1000:.0f}ms)"


class AsymmetricTopology(RegionTopology):
    """Figure 6 (right): A=45, B=45, C=10; A↔B 20 ms; C↔{A,B} = δ."""

    def __init__(
        self,
        delta: float = 0.100,
        n_a: int = 45,
        n_b: int = 45,
        n_c: int = 10,
        ab_delay: float = 0.020,
        intra_delay: float = 0.001,
    ):
        inter = {(0, 1): ab_delay, (0, 2): delta, (1, 2): delta}
        super().__init__((n_a, n_b, n_c), inter, intra_delay)
        self.delta = delta
        self.ab_delay = ab_delay

    def describe(self) -> str:
        sizes = "/".join(str(size) for size in self.region_sizes)
        return (
            f"asymmetric({sizes}, A↔B={self.ab_delay * 1000:.0f}ms, "
            f"δ={self.delta * 1000:.0f}ms)"
        )

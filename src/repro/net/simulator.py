"""Deterministic discrete-event simulator.

A single priority queue of ``(time, seq, callback)`` entries; ``seq``
is a monotonically increasing tie-breaker so same-time events run in
schedule order, making every run fully deterministic for a fixed seed.

Simulated time is a float in seconds.  The simulator knows nothing
about replicas or messages — the network layer and the cluster runtime
schedule closures on it.

Cancelled timers do not linger: the heap is compacted whenever
cancelled entries outnumber live ones, so pacemaker-heavy runs that
cancel a timer per round keep memory proportional to the *live* event
count, and :meth:`Simulator.pending` reports live events only.
"""

from __future__ import annotations

import heapq


class TimerHandle:
    """Cancellation token for a scheduled event."""

    __slots__ = ("cancelled", "fire_at", "_simulator", "_queued")

    def __init__(self, fire_at: float, simulator: "Simulator | None" = None) -> None:
        self.cancelled = False
        self.fire_at = fire_at
        self._simulator = simulator
        self._queued = simulator is not None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._queued and self._simulator is not None:
            self._simulator._note_cancellation()


#: Shared handle for fire-and-forget events (network deliveries).  It
#: is never cancelled and never reports back to a simulator, so one
#: immortal instance serves every :meth:`Simulator.schedule_fire` entry
#: — the per-message TimerHandle allocation disappears from the hot
#: path.  Heap entries keep the exact ``(time, seq, handle, callback,
#: args)`` tuple layout, and ``(time, seq)`` stays a unique sort key,
#: so event order is byte-identical to cancellable scheduling.
_FIRE_HANDLE = TimerHandle(0.0)


class Simulator:
    """Event loop over simulated time."""

    def __init__(self) -> None:
        self._queue: list = []
        self._seq = 0
        self._cancelled = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule_at(self, time: float, callback, *args) -> TimerHandle:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        handle = TimerHandle(time, self)
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, handle, callback, args))
        return handle

    def schedule_fire(self, time: float, callback, *args) -> None:
        """Fire-and-forget :meth:`schedule_at`: no cancellation handle.

        For events that are never cancelled (message deliveries); skips
        the per-event TimerHandle allocation while preserving the
        identical ``(time, seq)`` ordering.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, _FIRE_HANDLE, callback, args))

    def schedule_in(self, delay: float, callback, *args) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.now + delay, callback, *args)

    def pending(self) -> int:
        """Number of live (non-cancelled) queued events."""
        return len(self._queue) - self._cancelled

    def _note_cancellation(self) -> None:
        """Called by a handle on first cancel while still queued."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant."""
        live = []
        for entry in self._queue:
            handle = entry[2]
            if handle.cancelled:
                handle._queued = False
            else:
                live.append(entry)
        self._queue = live
        heapq.heapify(self._queue)
        self._cancelled = 0

    def _pop(self):
        """Pop the head entry, maintaining the cancelled count."""
        entry = heapq.heappop(self._queue)
        handle = entry[2]
        handle._queued = False
        if handle.cancelled:
            self._cancelled -= 1
        return entry

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time, _seq, handle, callback, args = pop(queue)
            handle._queued = False
            if handle.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            self.events_processed += 1
            callback(*args)
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Run events with ``time <= deadline``; leaves ``now = deadline``.

        Events scheduled exactly at the deadline do run.
        """
        while self._queue:
            time, _seq, handle, _callback, _args = self._queue[0]
            if time > deadline:
                break
            if handle.cancelled:
                self._pop()
                continue
            self.step()
        if self.now < deadline:
            self.now = deadline

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events executed.

        ``max_events`` guards against livelock in tests of misbehaving
        protocols (e.g. a pacemaker that keeps timing out forever).
        """
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed

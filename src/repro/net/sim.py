"""Simulator-tier bindings of the replica-facing Transport/Clock seam.

:class:`SimTransport` and :class:`SimClock` adapt the deterministic
in-process layer (:class:`repro.net.network.Network` and
:class:`repro.net.simulator.Simulator`) to the structural interfaces
declared in :mod:`repro.protocols.base`.  They are pure pass-throughs:
every call delegates to the exact method the old ``ReplicaContext``
called directly, so committed baselines replay byte-identically.

The wall-clock counterparts live in :mod:`repro.rt_net.transport`.
"""

from __future__ import annotations

from repro.net.network import Network
from repro.net.simulator import Simulator


class SimTransport:
    """Transport backed by the deterministic in-process :class:`Network`.

    The three interface methods are bound straight to the underlying
    :class:`Network` methods at construction time, so the adapter adds
    zero frames to the per-message hot path the perf suite gates.
    """

    __slots__ = ("network", "send", "multicast", "unregister")

    def __init__(self, network: Network) -> None:
        self.network = network
        self.send = network.send
        self.multicast = network.multicast
        self.unregister = network.unregister


class SimClock:
    """Clock backed by the deterministic event-loop :class:`Simulator`."""

    __slots__ = ("simulator", "set_timer")

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self.set_timer = simulator.schedule_in

    @property
    def now(self) -> float:
        return self.simulator.now

    def cancel_timer(self, handle) -> None:
        handle.cancel()

"""Light-client proofs of strong commits (Section 5)."""

from repro.lightclient.proofs import (
    LightClient,
    ProofError,
    StrongCommitProof,
    build_proof,
)

__all__ = ["LightClient", "StrongCommitProof", "ProofError", "build_proof"]

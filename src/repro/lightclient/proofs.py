"""Proving strong commits to light clients (Section 5).

A light client (wallet app, bridge, …) holds only the replica set's
public keys — no blockchain.  To prove that a block reached strength
``x``, the protocol includes a *commit log* in every block proposal:
the strong-commit level updates implied by the strong-QC embedded in
that proposal.  Once the proposal is certified (``2f + 1`` votes), at
least one honest replica vouches for each log entry as long as the
number of faults does not exceed ``2f`` — the maximum resilience SFT
provides — so the certified log alone convinces the client.

In this implementation the commit log lives inside
:attr:`~repro.types.block.Block.commit_log` (covered by the block
hash, hence by every vote signature), and a
:class:`StrongCommitProof` is simply that block plus its QC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.registry import KeyRegistry
from repro.types.block import Block
from repro.types.quorum_cert import QuorumCertificate


class ProofError(Exception):
    """Raised when a strong-commit proof fails verification."""


@dataclass(frozen=True, slots=True)
class StrongCommitProof:
    """A certified block whose commit log carries level updates."""

    block: Block
    qc: QuorumCertificate

    def entries(self) -> tuple:
        return tuple(self.block.commit_log)


def build_proof(store, block_id) -> StrongCommitProof | None:
    """Assemble a proof from a replica's block store, if possible."""
    block = store.maybe_get(block_id)
    if block is None or not block.commit_log:
        return None
    qc = store.qc_for(block_id)
    if qc is None:
        return None
    return StrongCommitProof(block=block, qc=qc)


class LightClient:
    """Verifies strong-commit proofs against the replica PKI.

    Keeps the highest proven strength per block so applications can ask
    "is my block at least ``x``-strong yet?" — the client-side analogue
    of Nakamoto's k-deep rule (Section 1).
    """

    def __init__(self, registry: KeyRegistry, n: int, f: int) -> None:
        self.registry = registry
        self.n = n
        self.f = f
        self.proven_levels: dict[bytes, int] = {}

    def quorum(self) -> int:
        return 2 * self.f + 1

    def verify(self, proof: StrongCommitProof) -> tuple:
        """Verify one proof; returns the accepted (block_id_bytes, level) list.

        Raises :class:`ProofError` when the certificate does not match
        the block or the quorum of signatures does not check out.
        """
        block = proof.block
        qc = proof.qc
        if qc.block_id != block.id():
            raise ProofError("certificate does not certify the log-carrying block")
        if qc.round != block.round:
            raise ProofError("certificate round mismatch")
        if not qc.validate(self.registry, self.quorum()):
            raise ProofError("quorum certificate signature validation failed")
        accepted = []
        for entry in block.commit_log:
            if not isinstance(entry, tuple) or len(entry) != 2:
                continue
            block_id_bytes, level = entry
            if not isinstance(block_id_bytes, bytes) or not isinstance(level, int):
                continue
            if not self.f <= level <= 2 * self.f:
                continue  # SFT levels live in [f, 2f]
            accepted.append((block_id_bytes, level))
            best = self.proven_levels.get(block_id_bytes, -1)
            if level > best:
                self.proven_levels[block_id_bytes] = level
        return tuple(accepted)

    def proven_strength(self, block_id_bytes: bytes) -> int:
        """Highest proven level for a block (-1 when unknown)."""
        return self.proven_levels.get(block_id_bytes, -1)

"""Real-network runtime: replicas as OS processes over asyncio TCP.

The second transport tier behind the :class:`repro.protocols.base.Transport`
/ :class:`~repro.protocols.base.Clock` seam.  The identical protocol
code that runs under the deterministic simulator runs here as
independent processes speaking length-prefixed JSON frames over TCP,
driven by wall-clock timers and a concurrent client fleet:

* :mod:`repro.rt_net.codec` — canonical wire encoding of the signed
  message types (signatures survive the round trip byte-for-byte);
* :mod:`repro.rt_net.transport` — :class:`TcpTransport` (per-replica
  asyncio server + retry-connecting per-peer senders) and
  :class:`WallClock`;
* :mod:`repro.rt_net.replica_proc` — the per-replica process entry
  point (``python -m repro.rt_net.replica_proc``);
* :mod:`repro.rt_net.manager` — :class:`RuntimeManager` spawns/kills
  replica processes and collects their result snapshots;
* :mod:`repro.rt_net.clients` — concurrent logical clients with
  f+1-matching-reply acknowledgement;
* :mod:`repro.rt_net.differential` — runs one ``ScenarioSpec`` under
  both tiers and pins that the committed chains agree (the simulator
  stays the oracle for this transport).
"""

from repro.rt_net.codec import (
    FrameDecoder,
    decode_message,
    encode_message,
    frame,
)
from repro.rt_net.transport import TcpTransport, WallClock

__all__ = [
    "FrameDecoder",
    "decode_message",
    "encode_message",
    "frame",
    "TcpTransport",
    "WallClock",
]

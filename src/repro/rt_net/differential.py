"""Differential harness: one ScenarioSpec, both transport tiers.

The deterministic simulator is the correctness oracle for the TCP
runtime.  This harness executes the same :class:`ScenarioSpec` — same
protocol class, same replica configs, same deterministic keys — under
:class:`~repro.net.sim.SimTransport` (in-process, simulated time) and
:class:`~repro.rt_net.transport.TcpTransport` (OS processes, wall
time), then compares committed chains.

Block ids are content hashes over (parent, qc, round, height, proposer,
payload digest, commit log) — *not* over creation timestamps — and the
default synthetic payload digests only ``(count, size_bytes, tag)``.
A happy-path run therefore commits literally identical block ids on
both tiers: round ``r``'s block is the same hash whether it was
proposed inside the simulator or over real sockets.  The tiers run for
different effective lengths (simulated seconds vs wall seconds), so
agreement is judged on the common prefix, which must be non-empty.
"""

from __future__ import annotations

from repro.experiments.spec import ScenarioSpec
from repro.rt_net.manager import RuntimeManager


def sim_chain(spec: ScenarioSpec, seed: int | None = None) -> list[str]:
    """Committed block-id sequence (hex) of one simulator-tier run."""
    cluster = spec.build(seed).run()
    chains = [
        [event.block_id.hex() for event in replica.commit_tracker.commit_order]
        for replica in cluster.honest_replicas()
    ]
    if not chains:
        return []
    # All honest sim replicas agree on the committed prefix (that is
    # the protocol's safety property); return the longest log so the
    # TCP side has the most prefix to match against.
    return max(chains, key=len)


def common_prefix_len(a: list[str], b: list[str]) -> int:
    length = 0
    for x, y in zip(a, b):
        if x != y:
            break
        length += 1
    return length


class DifferentialResult:
    """Verdict of one sim-vs-TCP differential run."""

    def __init__(self, spec: ScenarioSpec, seed: int, sim: list[str],
                 report) -> None:
        self.spec = spec
        self.seed = seed
        self.sim = sim
        self.report = report
        self.tcp_chains = report.chains()

    def tcp_reference(self) -> list[str]:
        chains = list(self.tcp_chains.values())
        return max(chains, key=len) if chains else []

    def ok(self) -> bool:
        return not self.problems()

    def problems(self) -> list[str]:
        problems = []
        if len(self.tcp_chains) < self.spec.n:
            missing = sorted(
                set(range(self.spec.n)) - set(self.tcp_chains)
            )
            problems.append(f"replicas {missing} reported no results")
        empty = [rid for rid, chain in self.tcp_chains.items() if not chain]
        if empty:
            problems.append(f"replicas {empty} committed nothing")
        if not self.report.chains_agree():
            problems.append("TCP replicas disagree on the committed prefix")
        if not self.sim:
            problems.append("simulator tier committed nothing")
        reference = self.tcp_reference()
        if self.sim and reference:
            agreed = common_prefix_len(self.sim, reference)
            if agreed == 0:
                problems.append(
                    "sim and TCP chains share no prefix: "
                    f"sim[0]={self.sim[0][:10]} tcp[0]={reference[0][:10]}"
                )
            elif agreed < min(len(self.sim), len(reference)):
                problems.append(
                    f"sim and TCP chains diverge at block {agreed}: "
                    f"sim={self.sim[agreed][:10]} "
                    f"tcp={reference[agreed][:10]}"
                )
        return problems

    def summary(self) -> dict:
        reference = self.tcp_reference()
        return {
            "scenario": self.spec.name,
            "protocol": self.spec.protocol,
            "seed": self.seed,
            "sim_commits": len(self.sim),
            "tcp_commits": {
                rid: len(chain)
                for rid, chain in sorted(self.tcp_chains.items())
            },
            "common_prefix": common_prefix_len(self.sim, reference),
            "ok": self.ok(),
            "problems": self.problems(),
        }


def run_differential(
    spec: ScenarioSpec,
    seed: int | None = None,
    tcp_duration: float | None = None,
    workdir=None,
) -> DifferentialResult:
    """Run ``spec`` under both tiers and compare committed chains."""
    resolved_seed = spec.seeds[0] if seed is None else seed
    sim = sim_chain(spec, resolved_seed)
    manager = RuntimeManager(spec, seed=resolved_seed, workdir=workdir)
    try:
        report = manager.run(tcp_duration)
    finally:
        manager.cleanup()
    return DifferentialResult(spec, resolved_seed, sim, report)

"""Spawn, supervise, and harvest a multi-process TCP replica cluster.

:class:`RuntimeManager` turns one :class:`~repro.experiments.spec.ScenarioSpec`
into ``n`` replica OS processes (``repro.rt_net.replica_proc``) speaking
asyncio TCP on localhost, runs them for a wall-clock duration —
optionally under client-fleet load — then stops them with SIGTERM and
collects the per-process result snapshots into a
:class:`RuntimeReport`.

Only happy-path specs run here for now: the simulated fault machinery
(Byzantine overrides, crash/recovery schedules, partitions, scripted
scenarios) stays a simulator-tier feature, and the manager refuses
specs that ask for it rather than silently dropping the faults.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.spec import ScenarioSpec, spec_to_mapping


class RuntimeLaunchError(Exception):
    pass


def unsupported_features(spec: ScenarioSpec) -> list[str]:
    """Spec features the TCP tier does not implement (empty = runnable)."""
    problems = []
    if spec.script:
        problems.append(f"scripted scenario {spec.script!r}")
    if spec.faults.total():
        problems.append("fault injection (faults.*)")
    if spec.partitions:
        problems.append("partition windows")
    if spec.topology != "uniform":
        problems.append(
            f"topology {spec.topology!r} (localhost TCP is uniform)"
        )
    if spec.bandwidth_bytes_per_sec or spec.gst or spec.duplicate_rate \
            or spec.reorder_window or spec.processing_delay:
        problems.append("simulated network shaping (bandwidth/gst/dup/reorder)")
    if spec.trace_level != "off":
        problems.append("trace_level (cluster-wide span log is in-process)")
    return problems


def _free_ports(count: int, host: str) -> list[int]:
    """Reserve ``count`` distinct ephemeral ports (best effort)."""
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


class ReplicaProcess:
    """Handle to one spawned replica process."""

    def __init__(self, replica_id: int, popen, log_path: Path,
                 result_path: Path) -> None:
        self.replica_id = replica_id
        self.popen = popen
        self.log_path = log_path
        self.result_path = result_path

    def alive(self) -> bool:
        return self.popen.poll() is None


class RuntimeReport:
    """Everything the stopped cluster left behind."""

    def __init__(self, spec: ScenarioSpec, seed: int, results: dict,
                 log_paths: dict, wall_seconds: float) -> None:
        self.spec = spec
        self.seed = seed
        #: replica id -> result-JSON dict (missing ids crashed uncleanly).
        self.results = results
        self.log_paths = log_paths
        self.wall_seconds = wall_seconds

    def chains(self) -> dict[int, list[str]]:
        """Per-replica committed block-id sequence (hex, commit order)."""
        return {
            rid: [entry[2] for entry in result.get("committed", ())]
            for rid, result in sorted(self.results.items())
        }

    def chains_agree(self) -> bool:
        """Every pair of replica chains agrees on the common prefix."""
        chains = list(self.chains().values())
        for i in range(len(chains)):
            for j in range(i + 1, len(chains)):
                a, b = chains[i], chains[j]
                if a[: len(b)] != b[: len(a)]:
                    return False
        return True

    def min_commits(self) -> int:
        chains = self.chains()
        if len(chains) < self.spec.n:
            return 0
        return min((len(chain) for chain in chains.values()), default=0)

    def total_replies(self) -> int:
        return sum(r.get("replies_sent", 0) for r in self.results.values())

    def summary(self) -> dict:
        return {
            "scenario": self.spec.name,
            "protocol": self.spec.protocol,
            "n": self.spec.n,
            "seed": self.seed,
            "wall_seconds": round(self.wall_seconds, 3),
            "replicas_reporting": len(self.results),
            "min_commits": self.min_commits(),
            "chains_agree": self.chains_agree(),
            "replies_sent": self.total_replies(),
            "commits": {
                rid: result.get("commits", 0)
                for rid, result in sorted(self.results.items())
            },
        }


class RuntimeManager:
    """Lifecycle owner of one TCP replica cluster on this machine."""

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: int | None = None,
        host: str = "127.0.0.1",
        workdir: str | Path | None = None,
    ) -> None:
        problems = unsupported_features(spec)
        if problems:
            raise ValueError(
                f"scenario {spec.name!r} is not runnable on the TCP tier: "
                + "; ".join(problems)
            )
        self.spec = spec
        self.seed = spec.seeds[0] if seed is None else seed
        self.host = host
        if workdir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-rt-")
            self.workdir = Path(self._tempdir.name)
        else:
            self._tempdir = None
            self.workdir = Path(workdir)
            self.workdir.mkdir(parents=True, exist_ok=True)
        self.ports = _free_ports(spec.n, host)
        self.processes: dict[int, ReplicaProcess] = {}
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # spawn / readiness
    # ------------------------------------------------------------------

    def _config_payload(self, replica_id: int) -> dict:
        return {
            "spec": spec_to_mapping(self.spec),
            "seed": self.seed,
            "epoch": self._epoch,
            "host": self.host,
            "ports": {rid: port for rid, port in enumerate(self.ports)},
            "duration": self.spec.duration,
            "result_path": str(self.workdir / f"result_{replica_id}.json"),
        }

    def start(self) -> None:
        """Write configs and spawn one process per replica."""
        import repro

        self._epoch = time.time()
        pythonpath = str(Path(repro.__file__).parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            pythonpath if not existing
            else pythonpath + os.pathsep + existing
        )
        for replica_id in range(self.spec.n):
            config_path = self.workdir / f"config_{replica_id}.json"
            config_path.write_text(
                json.dumps(self._config_payload(replica_id), indent=2)
            )
            log_path = self.workdir / f"replica_{replica_id}.log"
            log_file = open(log_path, "w")
            popen = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.rt_net.replica_proc",
                    str(config_path),
                    str(replica_id),
                ],
                stdout=log_file,
                stderr=subprocess.STDOUT,
                env=env,
            )
            log_file.close()  # the child holds its own descriptor
            self.processes[replica_id] = ReplicaProcess(
                replica_id,
                popen,
                log_path,
                self.workdir / f"result_{replica_id}.json",
            )
        self._started_at = time.monotonic()

    def wait_ready(self, timeout: float = 20.0) -> None:
        """Block until every replica's server port accepts connections."""
        deadline = time.monotonic() + timeout
        for replica_id, port in enumerate(self.ports):
            while True:
                process = self.processes[replica_id]
                if not process.alive():
                    raise RuntimeLaunchError(
                        f"replica {replica_id} exited during startup "
                        f"(rc={process.popen.returncode}); see "
                        f"{process.log_path}"
                    )
                try:
                    with socket.create_connection(
                        (self.host, port), timeout=0.25
                    ):
                        break
                except OSError:
                    if time.monotonic() > deadline:
                        raise RuntimeLaunchError(
                            f"replica {replica_id} never listened on "
                            f"port {port}; see {process.log_path}"
                        )
                    time.sleep(0.05)

    # ------------------------------------------------------------------
    # run / stop / harvest
    # ------------------------------------------------------------------

    def kill_replica(self, replica_id: int) -> None:
        """Hard-kill one replica (crash-fault experiments)."""
        process = self.processes[replica_id]
        if process.alive():
            process.popen.kill()
            process.popen.wait(timeout=10)

    def stop(self, grace: float = 10.0) -> RuntimeReport:
        """SIGTERM everyone, harvest results, SIGKILL stragglers."""
        for process in self.processes.values():
            if process.alive():
                process.popen.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + grace
        for process in self.processes.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.popen.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.popen.kill()
                process.popen.wait(timeout=10)
        results = {}
        for replica_id, process in self.processes.items():
            if process.result_path.exists():
                results[replica_id] = json.loads(
                    process.result_path.read_text()
                )
        wall = (
            time.monotonic() - self._started_at
            if self._started_at is not None else 0.0
        )
        return RuntimeReport(
            self.spec,
            self.seed,
            results,
            {rid: p.log_path for rid, p in self.processes.items()},
            wall,
        )

    def run(self, duration: float | None = None) -> RuntimeReport:
        """Convenience: start, wait ready, run for ``duration``, stop."""
        run_for = self.spec.duration if duration is None else duration
        self.start()
        try:
            self.wait_ready()
            time.sleep(run_for)
        finally:
            report = self.stop()
        return report

    def endpoints(self) -> dict[int, tuple[str, int]]:
        return {rid: (self.host, port) for rid, port in enumerate(self.ports)}

    def cleanup(self) -> None:
        for process in self.processes.values():
            if process.alive():
                process.popen.kill()
        if self._tempdir is not None:
            self._tempdir.cleanup()

"""Concurrent logical clients with f+1-matching-reply acknowledgement.

:class:`ClientFleet` drives sustained request traffic into a running
TCP cluster.  Each logical client opens one connection per replica,
submits deterministic KV commands (the same
:class:`~repro.app.kvstore.KVCommand` stream the simulator-tier
workload uses) to *every* replica's mempool, and accepts a transaction
as committed once ``f + 1`` distinct replicas reply with a matching
``(txid, block_id)`` — the PBFT client rule: at least one of the
reporters is honest, so the commit is final.

Clients are closed-loop with a pipeline window of 1: each client keeps
one request in flight and submits the next on acknowledgement, so fleet
size controls offered concurrency directly.
"""

from __future__ import annotations

import asyncio
import random

from repro.app.kvstore import KVCommand
from repro.rt_net.codec import CodecError, FrameDecoder, encode_frame
from repro.types.messages import ClientReplyMsg, ClientRequestMsg

_KEY_SPACE = 256


class _ClientStats:
    __slots__ = ("submitted", "acked", "latencies")

    def __init__(self) -> None:
        self.submitted = 0
        self.acked = 0
        self.latencies: list[float] = []


class ClientFleet:
    """``num_clients`` concurrent logical clients against one cluster."""

    def __init__(
        self,
        endpoints: dict[int, tuple[str, int]],
        f: int,
        num_clients: int = 8,
        payload_bytes: int = 64,
        seed: int = 0,
        request_timeout: float = 10.0,
    ) -> None:
        self.endpoints = dict(endpoints)
        self.f = f
        self.num_clients = num_clients
        self.payload_bytes = payload_bytes
        self.seed = seed
        self.request_timeout = request_timeout
        self.stats: dict[int, _ClientStats] = {}

    # ------------------------------------------------------------------
    # aggregate results
    # ------------------------------------------------------------------

    def total_submitted(self) -> int:
        return sum(s.submitted for s in self.stats.values())

    def total_acked(self) -> int:
        return sum(s.acked for s in self.stats.values())

    def latencies(self) -> list[float]:
        out: list[float] = []
        for stats in self.stats.values():
            out.extend(stats.latencies)
        return out

    def summary(self) -> dict:
        latencies = sorted(self.latencies())
        entry = {
            "clients": self.num_clients,
            "submitted": self.total_submitted(),
            "acked": self.total_acked(),
        }
        if latencies:
            entry["latency_p50_s"] = latencies[len(latencies) // 2]
            entry["latency_max_s"] = latencies[-1]
        return entry

    # ------------------------------------------------------------------
    # the fleet
    # ------------------------------------------------------------------

    async def run(self, duration: float) -> dict:
        """Drive all clients for ``duration`` seconds; returns summary."""
        loop = asyncio.get_event_loop()
        stop_at = loop.time() + duration
        tasks = [
            asyncio.create_task(self._client(client_id, stop_at))
            for client_id in range(1, self.num_clients + 1)
        ]
        await asyncio.gather(*tasks, return_exceptions=True)
        return self.summary()

    async def _client(self, client_id: int, stop_at: float) -> None:
        loop = asyncio.get_event_loop()
        stats = self.stats[client_id] = _ClientStats()
        rng = random.Random(f"rt-client:{self.seed}:{client_id}")
        replies: asyncio.Queue = asyncio.Queue()
        writers: dict[int, asyncio.StreamWriter] = {}
        readers: list[asyncio.Task] = []
        hello = encode_frame({"kind": "client", "id": client_id})
        try:
            for replica_id, (host, port) in self.endpoints.items():
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(hello)
                writers[replica_id] = writer
                readers.append(
                    asyncio.create_task(self._reader(reader, replies))
                )
            sequence = 0
            while loop.time() < stop_at:
                command = self._next_command(rng, sequence)
                transaction = command.to_transaction(
                    client_id=client_id,
                    sequence=sequence,
                    submitted_at=0.0,
                )
                sequence += 1
                txid = transaction.txid()
                request = encode_frame(
                    ClientRequestMsg(sender=client_id, transaction=transaction)
                )
                submit_time = loop.time()
                for writer in writers.values():
                    writer.write(request)
                stats.submitted += 1
                acked = await self._await_quorum(
                    replies, txid,
                    min(self.request_timeout, max(0.1, stop_at - loop.time())),
                )
                if acked:
                    stats.acked += 1
                    stats.latencies.append(loop.time() - submit_time)
        except (ConnectionError, OSError):
            pass  # cluster went away under us: report what we have
        finally:
            for task in readers:
                task.cancel()
            for writer in writers.values():
                writer.close()

    async def _await_quorum(self, replies: asyncio.Queue, txid,
                            timeout: float) -> bool:
        """Wait for f+1 matching ``(txid, block_id)`` replies."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        #: block_id hex -> set of replica ids that reported it.
        reporters: dict[str, set[int]] = {}
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            try:
                reply = await asyncio.wait_for(replies.get(), remaining)
            except asyncio.TimeoutError:
                return False
            if reply.txid != txid:
                continue  # stale reply from an earlier timed-out request
            block_hex = reply.block_id.hex()
            group = reporters.setdefault(block_hex, set())
            group.add(reply.sender)
            if len(group) >= self.f + 1:
                return True

    async def _reader(self, reader, replies: asyncio.Queue) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                try:
                    messages = decoder.feed(data)
                except CodecError:
                    return
                for message in messages:
                    if isinstance(message, ClientReplyMsg):
                        replies.put_nowait(message)
        except (ConnectionError, asyncio.CancelledError):
            pass

    def _next_command(self, rng: random.Random, sequence: int) -> KVCommand:
        roll = rng.random()
        key = f"k{rng.randrange(_KEY_SPACE)}"
        if roll < 0.85:
            pad = "x" * max(0, self.payload_bytes - len(key) - 12)
            return KVCommand(op="set", key=key, value=f"{sequence}:{pad}")
        if roll < 0.95:
            other = f"k{rng.randrange(_KEY_SPACE)}"
            return KVCommand(op="transfer", key=key, key2=other, amount=1)
        return KVCommand(op="del", key=key)


def drive_fleet(endpoints, f: int, duration: float, **kwargs) -> dict:
    """Synchronous wrapper: run a fleet on a fresh event loop."""
    fleet = ClientFleet(endpoints, f, **kwargs)
    return asyncio.run(fleet.run(duration))

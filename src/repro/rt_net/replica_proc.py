"""Per-replica OS process entry point for the real-network runtime.

``python -m repro.rt_net.replica_proc <config.json> <replica_id>``
builds exactly the replica the simulator tier would build for the same
``ScenarioSpec`` and seed — same protocol class, same
:class:`~repro.protocols.base.ReplicaConfig`, same deterministic
:class:`~repro.crypto.registry.KeyRegistry` — but binds it to
:class:`~repro.rt_net.transport.TcpTransport` and
:class:`~repro.rt_net.transport.WallClock` instead of the simulator
adapters.  The protocol code cannot tell the difference; that is the
point of the Transport/Clock seam.

The host around the replica does what the in-process harness does in
the simulator tier:

* submits client transactions (``ClientRequestMsg`` frames from the
  client fleet) into a per-replica :class:`~repro.runtime.client.Mempool`
  wired as the replica's ``payload_source``;
* polls the commit log and answers each routed transaction's client
  with a ``ClientReplyMsg`` (clients ack at f+1 matching replies);
* on SIGTERM (the manager's stop signal) snapshots the committed chain
  and metrics into a result JSON and exits cleanly.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from pathlib import Path

from repro.crypto.registry import KeyRegistry
from repro.experiments.spec import spec_from_mapping
from repro.protocols.base import ReplicaContext
from repro.runtime.client import Mempool
from repro.runtime.cluster import _PROTOCOL_CLASSES
from repro.rt_net.transport import TcpTransport, WallClock
from repro.types.messages import ClientReplyMsg, ClientRequestMsg

#: Commit-log poll cadence for client replies (wall seconds).
_FEEDBACK_INTERVAL = 0.05
#: Self-destruct margin past the configured duration, in case the
#: manager dies without sending SIGTERM.
_ORPHAN_GRACE = 60.0


class ReplicaHost:
    """One replica plus its mempool/reply plumbing inside one process."""

    def __init__(self, config: dict, replica_id: int) -> None:
        self.replica_id = replica_id
        self.spec = spec_from_mapping(config["spec"])
        self.seed = int(config.get("seed", self.spec.seeds[0]))
        self.epoch = float(config["epoch"])
        self.host = config.get("host", "127.0.0.1")
        self.ports = {int(k): int(v) for k, v in config["ports"].items()}
        self.result_path = Path(config["result_path"])
        self.duration = float(config.get("duration", self.spec.duration))
        self.experiment = self.spec.to_experiment_config(self.seed)

        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.clock = WallClock(self.loop, epoch=self.epoch)
        peers = {rid: (self.host, port) for rid, port in self.ports.items()}
        self.transport = TcpTransport(
            replica_id,
            peers,
            on_message=self._on_peer_message,
            on_client_message=self._on_client_message,
            loop=self.loop,
        )
        registry = KeyRegistry(self.experiment.n)
        context = ReplicaContext(replica_id, self.transport, self.clock, registry)
        replica_class = _PROTOCOL_CLASSES[self.experiment.protocol]
        self.replica = replica_class(
            self.experiment.replica_config(replica_id), context
        )

        replica_config = self.replica.config
        self.mempool = Mempool(
            max_block_transactions=replica_config.batch_size,
            max_block_bytes=replica_config.max_batch_bytes,
            pipelined=replica_config.pipelined_proposals,
            inflight_timeout=8.0 * replica_config.round_timeout,
        )
        #: The replica's built-in synthetic-batch source, kept as the
        #: fallback so an idle mempool proposes exactly the payloads the
        #: simulator tier proposes (same digest fields) — that is what
        #: makes the sim-vs-TCP differential compare literal block ids.
        self._default_payload = self.replica.payload_source
        self.replica.payload_source = self._payload_source
        #: txid -> client id, for routing commit acknowledgements.
        self._routes: dict = {}
        self._commit_cursor = 0
        self.committed: list = []
        self.replies_sent = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------

    def _on_peer_message(self, src: int, message) -> None:
        self.replica.deliver(src, message)

    def _on_client_message(self, client_id: int, message) -> None:
        if not isinstance(message, ClientRequestMsg):
            return
        transaction = message.transaction
        self.mempool.submit(transaction)
        self._routes[transaction.txid()] = client_id

    def _payload_source(self, now: float):
        payload = self.mempool.make_payload(now)
        if payload.transactions:
            return payload
        return self._default_payload(now)

    # ------------------------------------------------------------------
    # commit feedback
    # ------------------------------------------------------------------

    def _poll_commits(self) -> None:
        replica = self.replica
        commit_order = replica.commit_tracker.commit_order
        cursor = self._commit_cursor
        while cursor < len(commit_order):
            event = commit_order[cursor]
            cursor += 1
            self.committed.append(
                (event.height, event.round, event.block_id.hex())
            )
            block = replica.store.maybe_get(event.block_id)
            if block is None or not block.payload.transactions:
                continue
            self.mempool.remove_committed(block.payload.transactions)
            for transaction in block.payload.transactions:
                txid = transaction.txid()
                client_id = self._routes.pop(txid, None)
                if client_id is None:
                    continue
                self.transport.send_to_client(
                    client_id,
                    ClientReplyMsg(
                        sender=self.replica_id,
                        txid=txid,
                        block_id=event.block_id,
                        height=event.height,
                        round=event.round,
                    ),
                )
                self.replies_sent += 1
        self._commit_cursor = cursor
        if not self._stopping:
            self.loop.call_later(_FEEDBACK_INTERVAL, self._poll_commits)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def _wait_for_peers(self, timeout: float = 15.0) -> None:
        """Block until every peer's server accepts connections.

        Starting consensus only once the full cluster listens keeps the
        wall-clock tier from burning its first round on a timeout the
        simulator tier never sees (outbound queues would deliver the
        proposal late, but the pacemaker timer would already be ticking).
        """
        deadline = self.loop.time() + timeout
        for rid, port in self.ports.items():
            if rid == self.replica_id:
                continue
            while True:
                try:
                    _, writer = await asyncio.open_connection(self.host, port)
                    writer.close()
                    break
                except (ConnectionError, OSError):
                    if self.loop.time() > deadline:
                        raise TimeoutError(
                            f"replica {rid} not listening on port {port}"
                        )
                    await asyncio.sleep(0.05)

    def _write_result(self) -> None:
        self._poll_commits_final()
        result = {
            "replica_id": self.replica_id,
            "protocol": self.experiment.protocol,
            "seed": self.seed,
            "committed": self.committed,
            "commits": len(self.committed),
            "now": self.clock.now,
            "frames_sent": self.transport.frames_sent,
            "frames_received": self.transport.frames_received,
            "send_errors": self.transport.send_errors,
            "mempool_submitted": self.mempool.submitted,
            "mempool_pending": self.mempool.pending_count(),
            "replies_sent": self.replies_sent,
            "metrics": self.replica.metrics.snapshot(),
        }
        tmp = self.result_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(result, indent=2, sort_keys=True))
        tmp.replace(self.result_path)

    def _poll_commits_final(self) -> None:
        """Drain any commits that landed since the last poll tick."""
        self._stopping = True
        self._poll_commits()

    def _shutdown(self) -> None:
        if self._stopping:
            return
        try:
            self._write_result()
        finally:
            self.loop.stop()

    async def _main(self) -> None:
        await self.transport.start()
        print(
            f"[replica {self.replica_id}] listening on "
            f"{self.host}:{self.ports[self.replica_id]}",
            flush=True,
        )
        await self._wait_for_peers()
        print(f"[replica {self.replica_id}] cluster up, starting", flush=True)
        self.replica.start()
        self.loop.call_later(_FEEDBACK_INTERVAL, self._poll_commits)
        # Orphan backstop: if the manager never signals us, stop anyway.
        self.loop.call_later(self.duration + _ORPHAN_GRACE, self._shutdown)

    def run(self) -> None:
        self.loop.add_signal_handler(signal.SIGTERM, self._shutdown)
        self.loop.add_signal_handler(signal.SIGINT, self._shutdown)
        self.loop.create_task(self._main())
        try:
            self.loop.run_forever()
        finally:
            self.loop.close()
        print(
            f"[replica {self.replica_id}] stopped with "
            f"{len(self.committed)} commits",
            flush=True,
        )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(
            "usage: python -m repro.rt_net.replica_proc <config.json> "
            "<replica_id>",
            file=sys.stderr,
        )
        return 2
    config = json.loads(Path(argv[0]).read_text())
    host = ReplicaHost(config, int(argv[1]))
    host.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

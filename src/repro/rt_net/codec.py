"""Length-prefixed JSON wire codec for the signed message types.

Every message type in :mod:`repro.types.messages` — and every value
type reachable from one (blocks, QCs, votes, transactions, digests,
signatures) — encodes to a JSON document and decodes back to an equal
object.  Equality is structural: the dataclasses compare on their
semantic fields (the ``_cached_*`` memo fields are ``compare=False``
and recompute lazily), so signing payloads and therefore HMAC
signatures are byte-for-byte stable across the round trip.

Encoding rules:

* ``None`` / ``bool`` / ``int`` / ``float`` / ``str`` pass through as
  JSON scalars;
* ``bytes`` become ``{"!b": "<hex>"}``;
* tuples and lists become JSON arrays and decode as tuples (every
  sequence field in the wire types is a tuple);
* frozensets become ``{"!fs": [...]}`` with sorted elements;
* registered dataclasses become ``{"!t": "<TypeName>", "f": {...}}``
  over their ``init=True`` fields.

Framing is a 4-byte big-endian length prefix followed by the UTF-8
JSON body; :class:`FrameDecoder` reassembles frames from an arbitrary
byte stream (TCP gives no message boundaries).
"""

from __future__ import annotations

import json
import struct
from dataclasses import fields as dataclass_fields

from repro.crypto.hashing import HashDigest
from repro.crypto.signatures import Signature
from repro.types.block import Block
from repro.types.messages import (
    CheckpointMsg,
    ClientReplyMsg,
    ClientRequestMsg,
    EchoMsg,
    ExtraVotesMsg,
    NewRoundMsg,
    ProposalMsg,
    QCMsg,
    SnapshotRequestMsg,
    SnapshotResponseMsg,
    SyncRequestMsg,
    SyncResponseMsg,
    TimeoutMsg,
    VoteMsg,
)
from repro.types.quorum_cert import QuorumCertificate, TimeoutCertificate
from repro.types.transaction import Payload, Transaction, TxBatch
from repro.types.vote import StrongVote, Vote

#: Every type that may appear on the wire, by name.  Hellos and control
#: frames are plain dicts and bypass this registry.
WIRE_TYPES = (
    ProposalMsg,
    VoteMsg,
    TimeoutMsg,
    QCMsg,
    NewRoundMsg,
    ExtraVotesMsg,
    EchoMsg,
    ClientRequestMsg,
    ClientReplyMsg,
    SyncRequestMsg,
    SyncResponseMsg,
    CheckpointMsg,
    SnapshotRequestMsg,
    SnapshotResponseMsg,
    Block,
    QuorumCertificate,
    TimeoutCertificate,
    Vote,
    StrongVote,
    Transaction,
    TxBatch,
    Payload,
    HashDigest,
    Signature,
)

_BY_NAME = {cls.__name__: cls for cls in WIRE_TYPES}
_INIT_FIELDS = {
    cls: tuple(
        f.name for f in dataclass_fields(cls) if f.init
    )
    for cls in WIRE_TYPES
}
#: Fields that must decode as frozensets rather than tuples.
_FROZENSET_FIELDS = {(TimeoutCertificate, "timeout_voters")}

_LEN = struct.Struct(">I")

#: Upper bound on one frame; a peer announcing more is cut off before
#: it can balloon memory (64 MiB clears any realistic snapshot).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class CodecError(ValueError):
    """Raised on malformed frames or unknown wire types."""


def _encode_value(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"!b": value.hex()}
    if isinstance(value, (tuple, list)):
        return [_encode_value(item) for item in value]
    if isinstance(value, frozenset):
        return {"!fs": sorted(_encode_value(item) for item in value)}
    if isinstance(value, dict):
        # Plain mapping: hello and control frames.
        return {key: _encode_value(item) for key, item in value.items()}
    cls = type(value)
    names = _INIT_FIELDS.get(cls)
    if names is None:
        raise CodecError(f"cannot encode {cls.__name__} for the wire")
    return {
        "!t": cls.__name__,
        "f": {name: _encode_value(getattr(value, name)) for name in names},
    }


def _decode_value(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return tuple(_decode_value(item) for item in value)
    if isinstance(value, dict):
        if "!b" in value:
            return bytes.fromhex(value["!b"])
        if "!fs" in value:
            return frozenset(_decode_value(item) for item in value["!fs"])
        type_name = value.get("!t")
        if type_name is None:
            # Plain mapping: hello and control frames stay dicts.
            return {key: _decode_value(item) for key, item in value.items()}
        cls = _BY_NAME.get(type_name)
        if cls is None:
            raise CodecError(f"unknown wire type {type_name!r}")
        raw = value.get("f")
        if not isinstance(raw, dict):
            raise CodecError(f"malformed {type_name} frame: missing fields")
        names = _INIT_FIELDS[cls]
        kwargs = {}
        for name in names:
            if name not in raw:
                continue  # dataclass default fills the gap
            decoded = _decode_value(raw[name])
            if (cls, name) in _FROZENSET_FIELDS and isinstance(decoded, tuple):
                decoded = frozenset(decoded)
            kwargs[name] = decoded
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot rebuild {type_name}: {exc}") from exc
    raise CodecError(f"cannot decode wire value {value!r}")


def encode_message(message) -> bytes:
    """Serialize one wire object to canonical JSON bytes (no frame)."""
    return json.dumps(
        _encode_value(message), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def decode_message(data: bytes):
    """Inverse of :func:`encode_message`."""
    try:
        document = json.loads(data)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed frame body: {exc}") from exc
    return _decode_value(document)


def frame(body: bytes) -> bytes:
    """Prefix ``body`` with its 4-byte big-endian length."""
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(body)} bytes exceeds the cap")
    return _LEN.pack(len(body)) + body


def encode_frame(message) -> bytes:
    """One wire object as a complete length-prefixed frame."""
    return frame(encode_message(message))


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list:
        """Absorb ``data``; return every message completed by it."""
        self._buffer.extend(data)
        messages = []
        while True:
            if len(self._buffer) < _LEN.size:
                return messages
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"announced frame of {length} bytes")
            end = _LEN.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[_LEN.size:end])
            del self._buffer[:end]
            messages.append(decode_message(body))

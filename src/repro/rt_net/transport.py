"""Asyncio TCP bindings of the replica-facing Transport/Clock seam.

:class:`TcpTransport` gives one replica process a server socket for
inbound frames and a retry-connecting sender task per peer for
outbound ones.  ``send``/``multicast`` are synchronous and non-blocking
— they enqueue frames onto per-destination queues, so protocol code
stays the same single-threaded event-driven state machine it is under
the simulator; all socket work happens on the asyncio loop.

Outbound queues buffer until the peer's server is reachable (with
capped-backoff reconnects), which makes cluster startup order
irrelevant: a leader's round-1 proposal waits in the queue until every
peer listens.  Delivery is at-least-once — a frame in flight during a
connection failure is resent on the next connection — which the
protocols already tolerate (the PR-9 duplicate-delivery fault model is
exactly this regime).

Inbound connections introduce themselves with a hello frame
``{"kind": "peer"|"client", "id": <int>}``; peer traffic dispatches to
the replica's ``deliver`` path, client traffic to the process host's
client handler, which can reply down the same connection.

:class:`WallClock` implements the Clock interface over ``loop.time()``
with timers via ``loop.call_later``.  A shared ``epoch`` (one wall
timestamp distributed by the manager) aligns ``now`` across processes,
which time-driven protocols (Streamlet's round clock) need.
"""

from __future__ import annotations

import asyncio
import time

from repro.rt_net.codec import CodecError, FrameDecoder, encode_frame, frame

#: Reconnect backoff for the per-peer sender tasks.
_RECONNECT_INITIAL = 0.05
_RECONNECT_MAX = 1.0


class WallClock:
    """Clock over the asyncio loop's monotonic time.

    ``now`` is seconds since ``epoch`` (a ``time.time()`` timestamp all
    cluster processes share); with ``epoch=None`` it is seconds since
    clock construction.
    """

    def __init__(self, loop=None, epoch: float | None = None) -> None:
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        if epoch is None:
            self._offset = self.loop.time()
        else:
            # loop.time() is monotonic with an arbitrary origin; anchor
            # it to the wall clock once so `now` is epoch-relative.
            self._offset = self.loop.time() - (time.time() - epoch)

    @property
    def now(self) -> float:
        return self.loop.time() - self._offset

    def set_timer(self, delay: float, callback, *args):
        return self.loop.call_later(delay, callback, *args)

    def cancel_timer(self, handle) -> None:
        handle.cancel()


class TcpTransport:
    """The Transport interface over asyncio TCP for one replica process.

    ``peers`` maps every replica id (including our own) to its
    ``(host, port)`` endpoint.  Messages to self skip the network and
    dispatch via ``loop.call_soon`` — same-iteration re-entrancy is
    impossible either way, so protocol code sees one uniform
    "delivered later" semantics.
    """

    def __init__(
        self,
        replica_id: int,
        peers: dict[int, tuple[str, int]],
        on_message,
        on_client_message=None,
        loop=None,
    ) -> None:
        self.replica_id = replica_id
        self.peers = dict(peers)
        self.on_message = on_message
        self.on_client_message = on_client_message
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self._queues: dict[int, asyncio.Queue] = {}
        self._sender_tasks: dict[int, asyncio.Task] = {}
        self._server: asyncio.AbstractServer | None = None
        self._client_writers: dict[int, asyncio.StreamWriter] = {}
        self._detached = False
        self.frames_sent = 0
        self.frames_received = 0
        self.send_errors = 0

    # ------------------------------------------------------------------
    # Transport interface (synchronous, called from protocol code)
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, message) -> None:
        if self._detached:
            return
        if dst == self.replica_id:
            self.loop.call_soon(self._dispatch_peer, src, message)
            return
        queue = self._queues.get(dst)
        if queue is None:
            if dst not in self.peers:
                return  # unknown destination: drop, like the simulator
            queue = asyncio.Queue()
            self._queues[dst] = queue
            self._sender_tasks[dst] = self.loop.create_task(
                self._sender(dst, queue)
            )
        queue.put_nowait(encode_frame(message))

    def multicast(self, src: int, message, include_self: bool = False) -> None:
        body = None
        for dst in self.peers:
            if dst == self.replica_id:
                if include_self:
                    self.loop.call_soon(self._dispatch_peer, src, message)
                continue
            if body is None:
                body = encode_frame(message)
            queue = self._queues.get(dst)
            if queue is None:
                queue = asyncio.Queue()
                self._queues[dst] = queue
                self._sender_tasks[dst] = self.loop.create_task(
                    self._sender(dst, queue)
                )
            queue.put_nowait(body)

    def unregister(self, replica_id: int) -> None:
        """Crash fault: stop receiving (senders drain and die with us)."""
        if replica_id == self.replica_id:
            self._detached = True
            if self._server is not None:
                self._server.close()

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------

    async def start(self) -> None:
        host, port = self.peers[self.replica_id]
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )

    async def stop(self) -> None:
        for task in self._sender_tasks.values():
            task.cancel()
        for task in self._sender_tasks.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._sender_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _dispatch_peer(self, src: int, message) -> None:
        if not self._detached:
            self.on_message(src, message)

    async def _handle_connection(self, reader, writer) -> None:
        decoder = FrameDecoder()
        kind = None
        sender_id = None
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    messages = decoder.feed(data)
                except CodecError:
                    break  # malformed peer: cut the connection
                for message in messages:
                    if kind is None:
                        # First frame must be the hello.
                        if not isinstance(message, dict):
                            return
                        kind = message.get("kind")
                        sender_id = message.get("id")
                        if kind not in ("peer", "client") or not isinstance(
                            sender_id, int
                        ):
                            return
                        if kind == "client":
                            self._client_writers[sender_id] = writer
                        continue
                    self.frames_received += 1
                    if self._detached:
                        continue
                    if kind == "peer":
                        self.on_message(sender_id, message)
                    elif self.on_client_message is not None:
                        self.on_client_message(sender_id, message)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if kind == "client" and self._client_writers.get(sender_id) is writer:
                del self._client_writers[sender_id]
            writer.close()

    def send_to_client(self, client_id: int, message) -> None:
        """Reply down a connected client's stream (drop if it left)."""
        writer = self._client_writers.get(client_id)
        if writer is None or writer.is_closing():
            return
        writer.write(encode_frame(message))

    # ------------------------------------------------------------------
    # sender tasks
    # ------------------------------------------------------------------

    async def _sender(self, dst: int, queue: asyncio.Queue) -> None:
        host, port = self.peers[dst]
        hello = frame(
            b'{"kind":"peer","id":%d}' % self.replica_id
        )
        backoff = _RECONNECT_INITIAL
        pending: bytes | None = None
        writer = None
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(hello)
                backoff = _RECONNECT_INITIAL
                while True:
                    if pending is None:
                        pending = await queue.get()
                    writer.write(pending)
                    await writer.drain()
                    self.frames_sent += 1
                    pending = None
            except asyncio.CancelledError:
                if writer is not None:
                    writer.close()
                raise
            except (ConnectionError, OSError):
                # Peer unreachable (not yet listening, crashed, or
                # mid-restart): keep the in-flight frame and retry —
                # at-least-once delivery.
                self.send_errors += 1
                if writer is not None:
                    writer.close()
                    writer = None
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, _RECONNECT_MAX)

"""The Appendix C counter-example, as an executable scenario.

Appendix C shows why *naively counting every indirect vote* towards a
block's resilience is unsafe: with ``f + 1`` Byzantine replicas
``b_1..b_{f+1}`` and ``2f`` honest replicas ``h_1..h_2f``, the
adversary manufactures two conflicting 3-chains whose naive vote count
reaches ``2f + 2`` each — i.e. two conflicting ``(f+1)``-strong commits
under exactly ``f + 1`` faults, violating Definition 1.

SFT's markers repair this: honest replica ``h_{f+1}`` voted for the
fork block ``B'_{r+1}`` before voting for ``B_{r+2}``, so its
strong-vote carries ``marker = r + 1`` and does *not* endorse ``B_r``
or ``B_{r+1}``; symmetrically the honest voters ``h_1..h_f`` carry
``marker = r + 2`` on the fork and do not boost it beyond ``f``-strong.
Neither chain reaches ``(f+1)``-strong, so Definition 1 holds.

:class:`AppendixCScenario` builds the exact block/vote structure of
Figure 9 against a shared :class:`~repro.types.chain.BlockStore` and
evaluates both accounting schemes side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commit_rules import CommitTracker
from repro.core.endorsement import EndorsementTracker
from repro.types.block import Block, make_genesis
from repro.types.chain import BlockStore
from repro.types.quorum_cert import QuorumCertificate
from repro.types.transaction import Payload, TxBatch
from repro.types.vote import StrongVote


@dataclass(frozen=True, slots=True)
class ScenarioResult:
    """Outcome of the Appendix C scenario for both accounting schemes.

    With ``t = f + 1`` actual faults, Definition 1 is violated exactly
    when two *conflicting* blocks are both ``x``-strong committed for
    some ``x >= t`` — i.e. both chains reach ``(f+1)``-strong.  A lone
    ``(f+1)``-strong fork conflicting with an ``f``-strong main block
    is explicitly allowed (Section 3.1: the ``f``-strong guarantee is
    void once ``t > f``).
    """

    f: int
    naive_main_strength: int
    naive_fork_strength: int
    sft_main_strength: int
    sft_fork_strength: int
    main_block_round: int
    fork_block_round: int

    def naive_violates_definition_1(self) -> bool:
        """Two conflicting (f+1)-strong commits under t = f + 1 faults."""
        target = self.f + 1
        return (
            self.naive_main_strength >= target
            and self.naive_fork_strength >= target
        )

    def sft_is_safe(self) -> bool:
        """No conflicting pair is strong-committed at level >= f + 1."""
        target = self.f + 1
        return not (
            self.sft_main_strength >= target
            and self.sft_fork_strength >= target
        )


class AppendixCScenario:
    """Builds Figure 9 and evaluates naive vs marker-based accounting."""

    def __init__(self, f: int = 2) -> None:
        if f < 2:
            # Figure 9 uses two distinct switching replicas (h_{f+1}
            # and h_{f+2}), which requires 2f >= f + 2.
            raise ValueError("the scenario needs f >= 2")
        self.f = f
        self.n = 3 * f + 1
        # Replica naming per the paper: honest h_1..h_2f, Byzantine
        # b_1..b_{f+1}.  Ids: honest 0..2f-1, Byzantine 2f..3f.
        self.honest = list(range(2 * f))
        self.byzantine = list(range(2 * f, 3 * f + 1))
        genesis, genesis_qc = make_genesis()
        self.store = BlockStore(genesis, genesis_qc)
        self.genesis = genesis
        self.genesis_qc = genesis_qc

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _block(self, parent: Block, parent_qc, round_number: int, tag: int) -> Block:
        block = Block(
            parent_id=parent.id(),
            qc=parent_qc,
            round=round_number,
            height=parent.height + 1,
            proposer=self.byzantine[0],
            payload=Payload(batch=TxBatch(count=1, size_bytes=64, tag=tag)),
        )
        self.store.add_block(block)
        return block

    def _strong_vote(self, block: Block, voter: int, marker: int) -> StrongVote:
        return StrongVote(
            block_id=block.id(),
            block_round=block.round,
            height=block.height,
            voter=voter,
            marker=marker,
        )

    def _qc(self, block: Block, votes) -> QuorumCertificate:
        return QuorumCertificate(
            block_id=block.id(),
            round=block.round,
            height=block.height,
            votes=tuple(votes),
        )

    # ------------------------------------------------------------------
    # the scenario
    # ------------------------------------------------------------------

    def run(self) -> ScenarioResult:
        f = self.f
        h = self.honest
        b = self.byzantine
        group_a = h[:f] + b            # h_1..h_f ∪ b_1..b_{f+1}  (2f+1)
        group_b = h[f:] + b            # h_{f+1}..h_2f ∪ b_1..b_{f+1}

        # Rounds: r-1 = 1, r = 2 … matching Figure 9 with r = 2.
        r = 2
        b_rm1 = self._block(self.genesis, self.genesis_qc, r - 1, tag=0)
        qc_rm1 = self._qc(
            b_rm1, (self._strong_vote(b_rm1, v, 0) for v in group_a)
        )
        b_r = self._block(b_rm1, qc_rm1, r, tag=1)
        qc_r = self._qc(b_r, (self._strong_vote(b_r, v, 0) for v in group_a))
        b_r1 = self._block(b_r, qc_r, r + 1, tag=2)
        qc_r1 = self._qc(b_r1, (self._strong_vote(b_r1, v, 0) for v in group_a))
        b_r2 = self._block(b_r1, qc_r1, r + 2, tag=3)

        # The conflicting fork: B'_{r+1} extends B_{r-1}.
        fork_r1 = self._block(b_rm1, qc_rm1, r + 1, tag=4)
        qc_fork_r1 = self._qc(
            fork_r1, (self._strong_vote(fork_r1, v, 0) for v in group_b)
        )

        # h_{f+1} voted for B'_{r+1}, then votes for B_{r+2}: honest
        # marker = r + 1.  Byzantine voters lie with marker 0.
        votes_r2 = [self._strong_vote(b_r2, v, 0) for v in h[:f]]
        votes_r2.append(self._strong_vote(b_r2, h[f], r + 1))
        votes_r2.extend(self._strong_vote(b_r2, v, 0) for v in b[:f])
        qc_r2 = self._qc(b_r2, votes_r2)
        b_r3 = self._block(b_r2, qc_r2, r + 3, tag=5)

        # B_{r+3}'s QC brings in h_{f+2} (Figure 9's final main-chain
        # QC = {h_1..h_f, h_{f+2}} ∪ {b_1..b_{f+1}}, size 2f+2).
        # h_{f+2} voted for B'_{r+1}, so its honest marker is r + 1.
        votes_r3 = [self._strong_vote(b_r3, v, 0) for v in h[:f]]
        votes_r3.append(self._strong_vote(b_r3, h[f + 1], r + 1))
        votes_r3.extend(self._strong_vote(b_r3, v, 0) for v in b)
        qc_r3 = self._qc(b_r3, votes_r3)

        # The fork grows: B'_{r+4} extends B'_{r+1}; honest h_1..h_f
        # may vote there (their lock is at most r + 1), with honest
        # marker = r + 2 (they voted B_{r+2} on the main chain).
        fork_r4 = self._block(fork_r1, qc_fork_r1, r + 4, tag=6)
        qc_fork_r4 = self._qc(
            fork_r4,
            [self._strong_vote(fork_r4, v, r + 2) for v in h[:f]]
            + [self._strong_vote(fork_r4, v, 0) for v in b],
        )
        fork_r5 = self._block(fork_r4, qc_fork_r4, r + 5, tag=7)
        qc_fork_r5 = self._qc(
            fork_r5,
            [self._strong_vote(fork_r5, v, r + 2) for v in h[:f]]
            + [self._strong_vote(fork_r5, v, 0) for v in b],
        )
        fork_r6 = self._block(fork_r5, qc_fork_r5, r + 6, tag=8)
        qc_fork_r6 = self._qc(
            fork_r6,
            [self._strong_vote(fork_r6, v, r + 2) for v in h[:f]]
            + [self._strong_vote(fork_r6, v, 0) for v in b],
        )

        # B'_{r+7} adds h_{f+1}'s fork vote (marker r + 2: it voted
        # B_{r+2} on the main chain), lifting the fork's naive count to
        # 2f + 2 distinct voters.
        fork_r7 = self._block(fork_r6, qc_fork_r6, r + 7, tag=9)
        qc_fork_r7 = self._qc(
            fork_r7,
            [self._strong_vote(fork_r7, v, r + 2) for v in h[: f + 1]]
            + [self._strong_vote(fork_r7, v, 0) for v in b[:f]],
        )

        qcs = [
            qc_rm1,
            qc_r,
            qc_r1,
            qc_r2,
            qc_r3,
            qc_fork_r1,
            qc_fork_r4,
            qc_fork_r5,
            qc_fork_r6,
            qc_fork_r7,
        ]

        naive = self._evaluate(qcs, naive=True)
        sft = self._evaluate(qcs, naive=False)
        return ScenarioResult(
            f=f,
            naive_main_strength=naive[b_r.id()],
            naive_fork_strength=naive[fork_r4.id()],
            sft_main_strength=sft[b_r.id()],
            sft_fork_strength=sft[fork_r4.id()],
            main_block_round=b_r.round,
            fork_block_round=fork_r4.round,
        )

    def _evaluate(self, qcs, naive: bool) -> dict:
        """Strength of every block under one accounting scheme.

        ``naive=True`` strips markers (counting all indirect votes),
        reproducing the flawed scheme Appendix C refutes.
        """
        tracker = EndorsementTracker(self.store, mode="round")
        commits = CommitTracker(
            self.store, self.f, rule="diembft", endorsement=tracker
        )
        for qc in qcs:
            self.store.record_qc(qc)
        for qc in qcs:
            if naive:
                qc = QuorumCertificate(
                    block_id=qc.block_id,
                    round=qc.round,
                    height=qc.height,
                    votes=tuple(
                        StrongVote(
                            block_id=vote.block_id,
                            block_round=vote.block_round,
                            height=vote.height,
                            voter=vote.voter,
                            marker=0,
                        )
                        for vote in qc.votes
                    ),
                )
            tracker.add_strong_qc(qc, now=0.0)
            commits.on_new_qc(qc, now=0.0)
        return {
            block.id(): commits.strength_of(block.id())
            for block in self.store.all_blocks()
        }

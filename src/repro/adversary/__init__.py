"""Fault injection: crash, silent, equivocating, and withholding replicas.

Behaviours are class factories over the honest replica classes, so a
Byzantine SFT-DiemBFT replica reuses all of the honest plumbing and
only overrides the rule it violates.  Adversarial code only ever signs
with its own key (the :class:`~repro.protocols.base.ReplicaContext`
hands it nothing else), matching the simulation's unforgeability
assumption.

Crash faults are built into the runtime (``ExperimentConfig.crash_schedule``).
"""

from repro.adversary.behaviors import (
    BEHAVIOR_FACTORIES,
    make_equivocating_leader,
    make_lazy_voter,
    make_silent,
    make_withholding_leader,
)
from repro.adversary.scripted import AppendixCScenario

__all__ = [
    "BEHAVIOR_FACTORIES",
    "make_silent",
    "make_equivocating_leader",
    "make_withholding_leader",
    "make_lazy_voter",
    "AppendixCScenario",
]

"""Byzantine behaviour mixins as class factories.

Each factory takes an honest replica class (DiemBFT-family) and
returns a subclass with one specific deviation:

* :func:`make_silent` — never votes (Byzantine fault that attacks
  liveness of strong commits; Theorem 3's ``t``);
* :func:`make_equivocating_leader` — proposes two conflicting blocks
  per led round, sending each to half of the network (creates the
  forks that raise honest markers);
* :func:`make_withholding_leader` — proposes only to a subset,
  forcing the rest to time out;
* :func:`make_lazy_voter` — delays every vote by a fixed amount
  (models the paper's "stragglers ... out-of-sync due to slow
  network/computation", Section 4.1).
"""

from __future__ import annotations

from repro.types.block import Block
from repro.types.messages import ProposalMsg, VoteMsg


def make_silent(replica_class):
    """A replica that participates in everything except voting."""

    class SilentReplica(replica_class):
        def _maybe_vote(self, msg):
            del msg

    SilentReplica.__name__ = f"Silent{replica_class.__name__}"
    return SilentReplica


def make_equivocating_leader(replica_class):
    """A leader that proposes two conflicting blocks per led round.

    The first block goes to replicas with ids below ``n/2``, the second
    to the rest; the leader also processes its first proposal itself.
    Both blocks extend ``qc_high``, differing in payload tag, so they
    conflict at the same round — the raw material of Appendix C.
    """

    class EquivocatingLeader(replica_class):
        def _propose(self, round_number, reason):
            del reason
            parent_qc = self.qc_high
            now = self.context.now
            proposals = []
            for variant in (0, 1):
                payload = self.payload_source(now)
                block = Block(
                    parent_id=parent_qc.block_id,
                    qc=parent_qc,
                    round=round_number,
                    height=parent_qc.height + 1,
                    proposer=self.replica_id,
                    payload=payload,
                    created_at=now,
                    commit_log=(("equivocation", variant),),
                )
                tc = None
                if parent_qc.round != round_number - 1:
                    tc = self.pacemaker.known_tc(round_number - 1)
                proposal = ProposalMsg(
                    sender=self.replica_id, round=round_number, block=block, tc=tc
                )
                signature = self.context.signing_key.sign(
                    proposal.signing_payload()
                )
                proposals.append(
                    ProposalMsg(
                        sender=proposal.sender,
                        round=proposal.round,
                        block=proposal.block,
                        tc=proposal.tc,
                        signature=signature,
                    )
                )
            self.blocks_proposed += 1
            half = self.config.n // 2
            for dst in range(self.config.n):
                variant = 0 if dst < half else 1
                self.context.send(dst, proposals[variant])

    EquivocatingLeader.__name__ = f"Equivocating{replica_class.__name__}"
    return EquivocatingLeader


def make_withholding_leader(replica_class, reach: float = 0.5):
    """A leader that sends its proposal only to the first ``reach`` share."""

    class WithholdingLeader(replica_class):
        def _propose(self, round_number, reason):
            del reason
            parent_qc = self.qc_high
            block = Block(
                parent_id=parent_qc.block_id,
                qc=parent_qc,
                round=round_number,
                height=parent_qc.height + 1,
                proposer=self.replica_id,
                payload=self.payload_source(self.context.now),
                created_at=self.context.now,
            )
            tc = None
            if parent_qc.round != round_number - 1:
                tc = self.pacemaker.known_tc(round_number - 1)
            proposal = ProposalMsg(
                sender=self.replica_id, round=round_number, block=block, tc=tc
            )
            signature = self.context.signing_key.sign(proposal.signing_payload())
            proposal = ProposalMsg(
                sender=proposal.sender,
                round=proposal.round,
                block=proposal.block,
                tc=proposal.tc,
                signature=signature,
            )
            self.blocks_proposed += 1
            cutoff = int(self.config.n * reach)
            for dst in range(cutoff):
                self.context.send(dst, proposal)
            if self.replica_id >= cutoff:
                self.context.send(self.replica_id, proposal)

    WithholdingLeader.__name__ = f"Withholding{replica_class.__name__}"
    return WithholdingLeader


def make_lazy_voter(replica_class, delay: float = 0.5):
    """A correct replica whose votes leave ``delay`` seconds late."""

    class LazyVoter(replica_class):
        def _maybe_vote(self, msg):
            original_send = self.context.send
            deferred = []

            def capture(dst, message):
                if isinstance(message, VoteMsg):
                    deferred.append((dst, message))
                else:
                    original_send(dst, message)

            self.context.send = capture
            try:
                super()._maybe_vote(msg)
            finally:
                self.context.send = original_send
            for dst, message in deferred:
                self.context.set_timer(delay, original_send, dst, message)

    LazyVoter.__name__ = f"Lazy{replica_class.__name__}"
    return LazyVoter


#: Behaviour name → class factory, for declarative fault mixes
#: (:mod:`repro.experiments`).  Factories taking extra knobs (reach,
#: delay) are called with those knobs by the spec layer.
BEHAVIOR_FACTORIES = {
    "silent": make_silent,
    "equivocate": make_equivocating_leader,
    "withhold": make_withholding_leader,
    "lazy": make_lazy_voter,
}

"""Byzantine behaviour mixins as class factories.

Each factory takes an honest replica class (DiemBFT-family) and
returns a subclass with one specific deviation:

* :func:`make_silent` — never votes (Byzantine fault that attacks
  liveness of strong commits; Theorem 3's ``t``);
* :func:`make_equivocating_leader` — proposes two conflicting blocks
  per led round, sending each to half of the network (creates the
  forks that raise honest markers);
* :func:`make_withholding_leader` — proposes only to a subset,
  forcing the rest to time out;
* :func:`make_lazy_voter` — delays every vote by a fixed amount
  (models the paper's "stragglers ... out-of-sync due to slow
  network/computation", Section 4.1);
* :func:`make_marker_liar` — votes like an honest replica but always
  reports ``marker = 0``, hiding its fork history (the Byzantine lie
  SFT's analysis budgets for: up to ``f`` liars inside any endorser
  set, Theorem 2);
* :func:`make_sync_withholder` — proposes and votes honestly but
  never answers block-sync requests, starving catch-up through that
  peer (exercises the :class:`~repro.sync.manager.SyncManager` retry
  and peer-rotation path).
"""

from __future__ import annotations

from repro.types.block import Block
from repro.types.messages import ProposalMsg, VoteMsg


def make_silent(replica_class):
    """A replica that participates in everything except voting."""

    class SilentReplica(replica_class):
        def _maybe_vote(self, msg):
            del msg

    SilentReplica.__name__ = f"Silent{replica_class.__name__}"
    return SilentReplica


def _is_streamlet_family(replica_class) -> bool:
    from repro.protocols.streamlet.replica import StreamletReplica

    return issubclass(replica_class, StreamletReplica)


def make_equivocating_leader(replica_class):
    """A leader that proposes two conflicting blocks per led round.

    The first block goes to replicas with ids below ``n/2``, the second
    to the rest; the leader also processes its first proposal itself.
    Both blocks extend the leader's best parent, differing in payload
    tag, so they conflict at the same round — the raw material of
    Appendix C.  Works on both protocol families (DiemBFT leaders
    extend ``qc_high``; Streamlet leaders their longest certified tip).
    """
    if _is_streamlet_family(replica_class):
        return _make_streamlet_equivocator(replica_class)

    class EquivocatingLeader(replica_class):
        def _propose(self, round_number, reason):
            del reason
            parent_qc = self.qc_high
            now = self.context.now
            proposals = []
            for variant in (0, 1):
                payload = self.payload_source(now)
                block = Block(
                    parent_id=parent_qc.block_id,
                    qc=parent_qc,
                    round=round_number,
                    height=parent_qc.height + 1,
                    proposer=self.replica_id,
                    payload=payload,
                    created_at=now,
                    commit_log=(("equivocation", variant),),
                )
                tc = None
                if parent_qc.round != round_number - 1:
                    tc = self.pacemaker.known_tc(round_number - 1)
                proposal = ProposalMsg(
                    sender=self.replica_id, round=round_number, block=block, tc=tc
                )
                signature = self.context.signing_key.sign(
                    proposal.signing_payload()
                )
                proposals.append(
                    ProposalMsg(
                        sender=proposal.sender,
                        round=proposal.round,
                        block=proposal.block,
                        tc=proposal.tc,
                        signature=signature,
                    )
                )
            self.blocks_proposed += 1
            half = self.config.n // 2
            for dst in range(self.config.n):
                variant = 0 if dst < half else 1
                self.context.send(dst, proposals[variant])

    EquivocatingLeader.__name__ = f"Equivocating{replica_class.__name__}"
    return EquivocatingLeader


def _make_streamlet_equivocator(replica_class):
    class EquivocatingLeader(replica_class):
        def _propose(self, round_number):
            parent = self._choose_parent()
            parent_qc = self.store.qc_for(parent.id())
            if parent_qc is None:
                return
            proposals = [
                self._signed_proposal(
                    parent,
                    parent_qc,
                    round_number,
                    commit_log=(("equivocation", variant),),
                )
                for variant in (0, 1)
            ]
            self.blocks_proposed += 1
            half = self.config.n // 2
            for dst in range(self.config.n):
                variant = 0 if dst < half else 1
                self.context.send(dst, proposals[variant])

    EquivocatingLeader.__name__ = f"Equivocating{replica_class.__name__}"
    return EquivocatingLeader


def make_withholding_leader(replica_class, reach: float = 0.5):
    """A leader that sends its proposal only to the first ``reach`` share."""
    if _is_streamlet_family(replica_class):
        return _make_streamlet_withholder(replica_class, reach)

    class WithholdingLeader(replica_class):
        def _propose(self, round_number, reason):
            del reason
            parent_qc = self.qc_high
            block = Block(
                parent_id=parent_qc.block_id,
                qc=parent_qc,
                round=round_number,
                height=parent_qc.height + 1,
                proposer=self.replica_id,
                payload=self.payload_source(self.context.now),
                created_at=self.context.now,
            )
            tc = None
            if parent_qc.round != round_number - 1:
                tc = self.pacemaker.known_tc(round_number - 1)
            proposal = ProposalMsg(
                sender=self.replica_id, round=round_number, block=block, tc=tc
            )
            signature = self.context.signing_key.sign(proposal.signing_payload())
            proposal = ProposalMsg(
                sender=proposal.sender,
                round=proposal.round,
                block=proposal.block,
                tc=proposal.tc,
                signature=signature,
            )
            self.blocks_proposed += 1
            cutoff = int(self.config.n * reach)
            for dst in range(cutoff):
                self.context.send(dst, proposal)
            if self.replica_id >= cutoff:
                self.context.send(self.replica_id, proposal)

    WithholdingLeader.__name__ = f"Withholding{replica_class.__name__}"
    return WithholdingLeader


def _make_streamlet_withholder(replica_class, reach: float):
    class WithholdingLeader(replica_class):
        def _propose(self, round_number):
            parent = self._choose_parent()
            parent_qc = self.store.qc_for(parent.id())
            if parent_qc is None:
                return
            proposal = self._signed_proposal(parent, parent_qc, round_number)
            self.blocks_proposed += 1
            cutoff = int(self.config.n * reach)
            for dst in range(cutoff):
                self.context.send(dst, proposal)
            if self.replica_id >= cutoff:
                self.context.send(self.replica_id, proposal)

    WithholdingLeader.__name__ = f"Withholding{replica_class.__name__}"
    return WithholdingLeader


def make_lazy_voter(replica_class, delay: float = 0.5):
    """A correct replica whose votes leave ``delay`` seconds late.

    DiemBFT-family replicas send votes point-to-point to the next
    leader; Streamlet-family replicas multicast them — both exits are
    intercepted so the behaviour is honest-but-late on either family.
    """

    class LazyVoter(replica_class):
        def _maybe_vote(self, msg):
            original_send = self.context.send
            original_multicast = self.context.multicast
            deferred = []

            def capture_send(dst, message):
                if isinstance(message, VoteMsg):
                    deferred.append((original_send, (dst, message)))
                else:
                    original_send(dst, message)

            def capture_multicast(message, include_self=True):
                if isinstance(message, VoteMsg):
                    deferred.append((original_multicast, (message, include_self)))
                else:
                    original_multicast(message, include_self=include_self)

            self.context.send = capture_send
            self.context.multicast = capture_multicast
            try:
                super()._maybe_vote(msg)
            finally:
                self.context.send = original_send
                self.context.multicast = original_multicast
            for dispatch, args in deferred:
                self.context.set_timer(delay, dispatch, *args)

    LazyVoter.__name__ = f"Lazy{replica_class.__name__}"
    return LazyVoter


def make_marker_liar(replica_class):
    """A replica whose strong-votes always carry ``marker = 0``.

    On SFT protocols the lie makes every one of its votes endorse the
    whole ancestor path regardless of its actual fork history; the
    strong-vote is re-signed so signature verification still passes
    (a Byzantine replica signs its own lie).  On plain protocols the
    vote has no marker and the behaviour degenerates to honest.
    """

    class MarkerLiar(replica_class):
        def _make_vote(self, block):
            vote = super()._make_vote(block)
            if not hasattr(vote, "marker"):
                return vote
            if vote.marker == 0 and not vote.intervals:
                return vote
            lied = type(vote)(
                block_id=vote.block_id,
                block_round=vote.block_round,
                height=vote.height,
                voter=vote.voter,
                marker=0,
                intervals=(),
            )
            return self._sign_vote(lied)

    MarkerLiar.__name__ = f"MarkerLiar{replica_class.__name__}"
    return MarkerLiar


def make_sync_withholder(replica_class):
    """A replica that silently drops every block-sync request.

    Everything else — proposing, voting, serving its own fetches — is
    honest, so the deviation is observable only as peers' catch-up
    requests timing out and rotating away.  With sync disabled the
    behaviour degenerates to honest.
    """

    class SyncWithholder(replica_class):
        def _on_sync_request(self, src, msg):
            del src, msg  # never serve

    SyncWithholder.__name__ = f"SyncWithholding{replica_class.__name__}"
    return SyncWithholder


def make_amnesia(replica_class):
    """A replica that restarts *without* its durable voting record.

    The behaviour itself is perfectly honest — it follows the protocol
    before the crash and after the restart.  The fault is purely one of
    durability: ``wal_restore = False`` makes the cluster rebuild it
    with no WAL, so the reborn instance has forgotten every round it
    voted in and will happily vote again — the double-vote the
    invariant oracle must catch.  This is the differential proving the
    WAL is load-bearing: the identical crash/restart schedule with
    ``recover`` (WAL reload) in place of ``amnesia`` commits safely.
    """

    class Amnesiac(replica_class):
        wal_restore = False

    Amnesiac.__name__ = f"Amnesiac{replica_class.__name__}"
    return Amnesiac


#: Behaviour name → class factory, for declarative fault mixes
#: (:mod:`repro.experiments`) and the schedule fuzzer
#: (:mod:`repro.fuzz`).  Factories taking extra knobs (reach, delay)
#: are called with those knobs by the spec layer.
BEHAVIOR_FACTORIES = {
    "silent": make_silent,
    "equivocate": make_equivocating_leader,
    "withhold": make_withholding_leader,
    "lazy": make_lazy_voter,
    "marker_lie": make_marker_liar,
    "sync_withhold": make_sync_withholder,
    "amnesia": make_amnesia,
}

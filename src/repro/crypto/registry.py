"""Public-key infrastructure for a fixed permissioned replica set.

Section 2 assumes "a public-key infrastructure exists to certify each
party's public key".  :class:`KeyRegistry` plays that role: it mints
one deterministic key pair per replica and serves verification keys to
everyone.  It also provides the quorum-level checks used when
validating quorum certificates.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable

from repro.crypto.signatures import Signature, SigningKey, VerifyingKey


class KeyRegistry:
    """Key directory for ``n`` replicas, ids ``0 .. n-1``.

    Secrets are derived from a registry seed so that two registries
    built with the same ``(n, seed)`` are interchangeable — handy for
    reconstructing verification state in tests and light clients.

    Verification results are memoized per registry, keyed by
    ``(signer, payload, mac)``: HMAC verification is pure, so a vote
    whose signature one replica checked is never re-HMAC'd when the
    other ``n - 1`` replicas of the same simulated cluster see it in a
    QC.  ``memoize`` is a class-level switch the differential
    determinism tests flip off to prove caching never changes results.
    """

    #: Process-wide toggle; tests disable it to cross-check results.
    memoize = True

    #: Memo-size bound; reaching it clears the memo (cheap, rare — a
    #: long run re-warms within one round).
    _MEMO_LIMIT = 1 << 20

    def __init__(self, n: int, seed: bytes = b"repro-sft") -> None:
        if n <= 0:
            raise ValueError("registry needs at least one replica")
        self.n = n
        self._signing_keys = []
        self._verifying_keys = []
        self._verify_memo: dict = {}
        for replica_id in range(n):
            secret = hashlib.sha256(seed + b"|" + str(replica_id).encode()).digest()
            key = SigningKey(replica_id, secret)
            self._signing_keys.append(key)
            self._verifying_keys.append(key.verifying_key())

    def signing_key(self, replica_id: int) -> SigningKey:
        """Return the private key of ``replica_id`` (simulation only)."""
        return self._signing_keys[replica_id]

    def verifying_key(self, replica_id: int) -> VerifyingKey:
        """Return the public key of ``replica_id``."""
        return self._verifying_keys[replica_id]

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Verify one signature against the registered key of its signer."""
        signer = signature.signer
        if not 0 <= signer < self.n:
            return False
        if not KeyRegistry.memoize:
            return self._verifying_keys[signer].verify(message, signature)
        key = (signer, message, signature.value)
        result = self._verify_memo.get(key)
        if result is None:
            result = self._verifying_keys[signer].verify(message, signature)
            if len(self._verify_memo) >= self._MEMO_LIMIT:
                self._verify_memo.clear()
            self._verify_memo[key] = result
        return result

    def verify_qc_votes(self, votes, quorum: int) -> bool:
        """Fused one-pass verification of a certificate's votes.

        Semantically identical to checking each vote through
        :meth:`verify` the way
        :meth:`~repro.types.quorum_cert.QuorumCertificate.validate`
        used to — duplicate voters are skipped, a missing or invalid
        signature fails the whole certificate, and at least ``quorum``
        distinct voters must remain — but run as a single loop with the
        memo table, key directory, and HMAC comparison hoisted out of
        the per-vote path.  Respects the class-level :attr:`memoize`
        switch (off ⇒ every MAC is recomputed) and shares the same memo
        entries as :meth:`verify`, so interleaving the two paths never
        changes a verdict.
        """
        n = self.n
        keys = self._verifying_keys
        memoize = KeyRegistry.memoize
        memo = self._verify_memo
        limit = self._MEMO_LIMIT
        compare = hmac.compare_digest
        seen = set()
        for vote in votes:
            voter = vote.voter
            if voter in seen:
                continue
            signature = vote.signature
            if signature is None:
                return False
            signer = signature.signer
            if not 0 <= signer < n:
                return False
            payload = vote.signing_payload()
            if memoize:
                key = (signer, payload, signature.value)
                valid = memo.get(key)
                if valid is None:
                    valid = compare(
                        keys[signer].expected_mac(payload), signature.value
                    )
                    if len(memo) >= limit:
                        memo.clear()
                    memo[key] = valid
            else:
                valid = compare(
                    keys[signer].expected_mac(payload), signature.value
                )
            if not valid:
                return False
            seen.add(voter)
        return len(seen) >= quorum

    def verify_quorum(
        self, message: bytes, signatures: Iterable[Signature], quorum: int
    ) -> bool:
        """Check that ``signatures`` contains a valid quorum over ``message``.

        Requires at least ``quorum`` *distinct* valid signers.  Invalid
        or duplicate signatures are ignored rather than rejected
        outright, matching how a QC aggregator behaves.
        """
        valid_signers = set()
        for signature in signatures:
            if signature.signer in valid_signers:
                continue
            if self.verify(message, signature):
                valid_signers.add(signature.signer)
        return len(valid_signers) >= quorum

"""Public-key infrastructure for a fixed permissioned replica set.

Section 2 assumes "a public-key infrastructure exists to certify each
party's public key".  :class:`KeyRegistry` plays that role: it mints
one deterministic key pair per replica and serves verification keys to
everyone.  It also provides the quorum-level checks used when
validating quorum certificates.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.crypto.signatures import Signature, SigningKey, VerifyingKey


class KeyRegistry:
    """Key directory for ``n`` replicas, ids ``0 .. n-1``.

    Secrets are derived from a registry seed so that two registries
    built with the same ``(n, seed)`` are interchangeable — handy for
    reconstructing verification state in tests and light clients.

    Verification results are memoized per registry, keyed by
    ``(signer, payload, mac)``: HMAC verification is pure, so a vote
    whose signature one replica checked is never re-HMAC'd when the
    other ``n - 1`` replicas of the same simulated cluster see it in a
    QC.  ``memoize`` is a class-level switch the differential
    determinism tests flip off to prove caching never changes results.
    """

    #: Process-wide toggle; tests disable it to cross-check results.
    memoize = True

    #: Memo-size bound; reaching it clears the memo (cheap, rare — a
    #: long run re-warms within one round).
    _MEMO_LIMIT = 1 << 20

    def __init__(self, n: int, seed: bytes = b"repro-sft") -> None:
        if n <= 0:
            raise ValueError("registry needs at least one replica")
        self.n = n
        self._signing_keys = []
        self._verifying_keys = []
        self._verify_memo: dict = {}
        for replica_id in range(n):
            secret = hashlib.sha256(seed + b"|" + str(replica_id).encode()).digest()
            key = SigningKey(replica_id, secret)
            self._signing_keys.append(key)
            self._verifying_keys.append(key.verifying_key())

    def signing_key(self, replica_id: int) -> SigningKey:
        """Return the private key of ``replica_id`` (simulation only)."""
        return self._signing_keys[replica_id]

    def verifying_key(self, replica_id: int) -> VerifyingKey:
        """Return the public key of ``replica_id``."""
        return self._verifying_keys[replica_id]

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Verify one signature against the registered key of its signer."""
        signer = signature.signer
        if not 0 <= signer < self.n:
            return False
        if not KeyRegistry.memoize:
            return self._verifying_keys[signer].verify(message, signature)
        key = (signer, message, signature.value)
        result = self._verify_memo.get(key)
        if result is None:
            result = self._verifying_keys[signer].verify(message, signature)
            if len(self._verify_memo) >= self._MEMO_LIMIT:
                self._verify_memo.clear()
            self._verify_memo[key] = result
        return result

    def verify_quorum(
        self, message: bytes, signatures: Iterable[Signature], quorum: int
    ) -> bool:
        """Check that ``signatures`` contains a valid quorum over ``message``.

        Requires at least ``quorum`` *distinct* valid signers.  Invalid
        or duplicate signatures are ignored rather than rejected
        outright, matching how a QC aggregator behaves.
        """
        valid_signers = set()
        for signature in signatures:
            if signature.signer in valid_signers:
                continue
            if self.verify(message, signature):
                valid_signers.add(signature.signer)
        return len(valid_signers) >= quorum

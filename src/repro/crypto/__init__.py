"""Simulated cryptographic primitives for the SFT replication library.

The paper assumes standard digital signatures, a PKI, and a
collision-resistant hash function (Section 2).  This package provides
in-process equivalents that preserve the *structure* of the real
primitives — every vote, proposal and timeout is signed and verified,
hashes chain blocks together — while staying deterministic and fast
enough for simulations with hundreds of replicas.

The signature scheme is HMAC-SHA256 keyed by a per-replica secret held
in a :class:`~repro.crypto.registry.KeyRegistry`.  Within the simulation
model this is unforgeable because adversarial replica code only ever
signs through its own :class:`~repro.crypto.signatures.SigningKey`
(enforced by construction: behaviours receive only their own key).
"""

from repro.crypto.hashing import HashDigest, hash_bytes, hash_fields
from repro.crypto.registry import KeyRegistry
from repro.crypto.serialization import canonical_bytes
from repro.crypto.signatures import Signature, SigningKey, VerifyingKey

__all__ = [
    "HashDigest",
    "hash_bytes",
    "hash_fields",
    "canonical_bytes",
    "Signature",
    "SigningKey",
    "VerifyingKey",
    "KeyRegistry",
]

"""Canonical byte serialization for hashing and signing.

Protocol messages must map to a unique byte string so that hashes and
signatures are well defined.  We use a small self-describing, canonical
encoding (a deterministic subset of what a production system would do
with protobuf or BCS — Diem's Binary Canonical Serialization).

Supported value types: ``None``, ``bool``, ``int``, ``str``, ``bytes``,
``float`` (fixed 8-byte big-endian IEEE 754), and (nested) tuples/lists
of those.  Dictionaries are intentionally unsupported: ordering
ambiguity is exactly what canonical encodings must avoid, so callers
serialize explicit field tuples instead.
"""

from __future__ import annotations

import struct

_TAG_NONE = b"N"
_TAG_FALSE = b"F"
_TAG_TRUE = b"T"
_TAG_INT = b"I"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_FLOAT = b"D"
_TAG_SEQ = b"L"


class SerializationError(TypeError):
    """Raised when a value cannot be canonically serialized."""


def _encode_length(n: int) -> bytes:
    return struct.pack(">I", n)


def _encode_into(value, out: list) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        # Variable-length two's-complement big-endian integer.
        width = max(1, (value.bit_length() + 8) // 8)
        body = value.to_bytes(width, "big", signed=True)
        out.append(_TAG_INT)
        out.append(_encode_length(len(body)))
        out.append(body)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(_encode_length(len(body)))
        out.append(body)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        body = bytes(value)
        out.append(_TAG_BYTES)
        out.append(_encode_length(len(body)))
        out.append(body)
    elif isinstance(value, (tuple, list)):
        out.append(_TAG_SEQ)
        out.append(_encode_length(len(value)))
        for item in value:
            _encode_into(item, out)
    else:
        raise SerializationError(
            "cannot canonically serialize value of type %r" % type(value).__name__
        )


def canonical_bytes(*fields) -> bytes:
    """Return the canonical byte encoding of ``fields``.

    The encoding is injective over the supported types: distinct field
    tuples always map to distinct byte strings, so it is safe to hash or
    sign the result.

    >>> canonical_bytes(1, "a") != canonical_bytes((1, "a"))
    True
    """
    out: list = []
    _encode_into(tuple(fields), out)
    return b"".join(out)

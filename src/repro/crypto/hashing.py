"""Collision-resistant hashing over canonical serializations.

Blocks are chained by hash digests (Section 2.1: ``B_k`` contains
``H(B_{k-1})``), so digests must be stable, comparable, and cheap to
use as dictionary keys.  :class:`HashDigest` wraps the raw SHA-256
output with a readable hex form used throughout logs and tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.serialization import canonical_bytes


@dataclass(frozen=True, slots=True)
class HashDigest:
    """An immutable 32-byte SHA-256 digest usable as a dict key."""

    value: bytes
    _hash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != 32:
            raise ValueError("HashDigest requires exactly 32 bytes")

    def __hash__(self) -> int:
        """Dataclass hash, cached — digests key every hot dict/set.

        The value matches the generated ``hash((self.value,))`` so set
        iteration orders (and hence seeded-run determinism) are
        byte-for-byte identical to the uncached implementation.
        """
        cached = self._hash
        if cached is None:
            cached = hash((self.value,))
            object.__setattr__(self, "_hash", cached)
        return cached

    def hex(self) -> str:
        """Return the full hexadecimal form of the digest."""
        return self.value.hex()

    def short(self) -> str:
        """Return an abbreviated hex prefix for human-readable output."""
        return self.value.hex()[:10]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.short()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashDigest({self.short()}…)"


def hash_bytes(data: bytes) -> HashDigest:
    """Hash raw bytes with SHA-256."""
    return HashDigest(hashlib.sha256(data).digest())


def hash_fields(*fields) -> HashDigest:
    """Hash a tuple of fields via the canonical serialization.

    This is the hash function applied to blocks and messages; the
    canonical encoding guarantees that structurally different inputs
    cannot collide at the serialization layer.
    """
    return hash_bytes(canonical_bytes(*fields))

"""Simulated digital signatures (HMAC-SHA256 under per-replica secrets).

The protocol layer treats these exactly like real signatures: a replica
signs message bytes with its :class:`SigningKey`; anyone holding the
matching :class:`VerifyingKey` checks the signature.  Unforgeability
holds *within the simulation model* because adversary behaviours are
only ever handed their own signing keys (see ``repro.adversary``).

A production deployment would swap this module for Ed25519 with no
change to the protocol code — the interface (sign/verify over canonical
bytes) is the same.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature over some message bytes by one replica."""

    signer: int
    value: bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Signature(signer={self.signer}, {self.value.hex()[:8]}…)"


class SigningKey:
    """Private signing key of a single replica.

    The secret is derived deterministically from a seed and the replica
    id so that simulations are reproducible.
    """

    __slots__ = ("replica_id", "_secret")

    def __init__(self, replica_id: int, secret: bytes) -> None:
        self.replica_id = replica_id
        self._secret = secret

    def sign(self, message: bytes) -> Signature:
        """Sign ``message`` and return a :class:`Signature`."""
        mac = hmac.new(self._secret, message, hashlib.sha256).digest()
        return Signature(signer=self.replica_id, value=mac)

    def verifying_key(self) -> "VerifyingKey":
        """Return the matching public verification key."""
        return VerifyingKey(self.replica_id, self._secret)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SigningKey(replica={self.replica_id})"


class VerifyingKey:
    """Public verification key of a single replica.

    With HMAC the "public" key necessarily embeds the secret; the class
    split still mirrors a real PKI so the protocol code never signs with
    a verifying key.
    """

    __slots__ = ("replica_id", "_secret")

    def __init__(self, replica_id: int, secret: bytes) -> None:
        self.replica_id = replica_id
        self._secret = secret

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Return ``True`` iff ``signature`` is valid for ``message``."""
        if signature.signer != self.replica_id:
            return False
        expected = hmac.new(self._secret, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.value)

    def expected_mac(self, message: bytes) -> bytes:
        """The MAC a valid signature over ``message`` must carry.

        The fused QC verification path
        (:meth:`~repro.crypto.registry.KeyRegistry.verify_qc_votes`)
        computes these directly so one loop can compare all of a
        certificate's votes without per-vote :meth:`verify` dispatch.
        """
        return hmac.new(self._secret, message, hashlib.sha256).digest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VerifyingKey(replica={self.replica_id})"

"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the portable description of one experiment:
protocol, cluster size, fault mix, topology preset, latency model, and
seed list.  Specs are plain data — loadable from TOML or JSON, hashable
into job ids, and picklable across process boundaries — and they
resolve into runnable clusters through the single
:func:`~repro.runtime.config.build_cluster` factory path.

The fault mix assigns behaviours to concrete replica ids
deterministically (from the highest id downwards, Byzantine behaviours
first, then crashes), so the same spec always produces the same
cluster.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from pathlib import Path

from repro.adversary.behaviors import BEHAVIOR_FACTORIES
from repro.runtime.config import PROTOCOLS, ExperimentConfig, build_cluster

#: Scripted (non-cluster) scenario kinds the fuzz engine knows how to
#: run.  ``"appendix_c"`` replays the paper's Appendix C construction
#: (:class:`~repro.adversary.scripted.AppendixCScenario`) at ``f``
#: taken from the spec.
SCRIPTS = ("", "appendix_c")


def _require_count(name: str, value) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")


def _require_finite(name: str, value, minimum: float = 0.0) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum:g}, got {value!r}")


@dataclass(slots=True)
class FaultMix:
    """How many replicas misbehave, and how.

    ``crash`` replicas halt at ``crash_at``; ``silent`` replicas never
    vote; ``equivocate`` leaders propose conflicting blocks;
    ``withhold`` leaders propose to only a ``withhold_reach`` share of
    the network; ``lazy`` voters delay votes by ``lazy_delay`` seconds;
    ``marker_lie`` replicas vote honestly but always report marker 0;
    ``sync_withhold`` replicas participate honestly but never answer
    block-sync requests (exercises the catch-up retry/peer-rotation
    path; a no-op when ``sync_enabled`` is off).

    Crash-*recovery* faults (all default off): ``recover`` replicas
    crash at ``recover_at``, lose every piece of volatile state, and
    restart ``downtime`` seconds later from their durable WAL record,
    rejoining via block-sync / snapshot transfer.  ``amnesia`` replicas
    follow the same schedule but restart *without* the WAL — the
    scripted differential that demonstrably double-votes, which the
    invariant oracle must catch.
    """

    crash: int = 0
    crash_at: float = 0.0
    silent: int = 0
    equivocate: int = 0
    withhold: int = 0
    withhold_reach: float = 0.5
    lazy: int = 0
    lazy_delay: float = 0.5
    marker_lie: int = 0
    sync_withhold: int = 0
    recover: int = 0
    recover_at: float = 0.0
    downtime: float = 1.0
    amnesia: int = 0

    def __post_init__(self):
        for name in ("crash", "silent", "equivocate", "withhold", "lazy",
                     "marker_lie", "sync_withhold", "recover", "amnesia"):
            _require_count(f"faults.{name}", getattr(self, name))
        _require_finite("faults.crash_at", self.crash_at)
        _require_finite("faults.lazy_delay", self.lazy_delay)
        _require_finite("faults.withhold_reach", self.withhold_reach)
        _require_finite("faults.recover_at", self.recover_at)
        _require_finite("faults.downtime", self.downtime)
        if self.withhold_reach > 1.0:
            raise ValueError(
                f"faults.withhold_reach must be <= 1, got {self.withhold_reach!r}"
            )
        if (self.recover or self.amnesia) and self.downtime <= 0:
            raise ValueError(
                f"faults.downtime must be positive, got {self.downtime!r}"
            )

    def total(self) -> int:
        return (
            self.crash + self.silent + self.equivocate + self.withhold
            + self.lazy + self.marker_lie + self.sync_withhold
            + self.recover + self.amnesia
        )

    def non_voting(self) -> int:
        """Faults that permanently remove voters (liveness accounting)."""
        return self.crash + self.silent

    def byzantine_total(self) -> int:
        """Actual faults ``t`` for Definition 1 (everything but lazy).

        Lazy voters are the paper's honest-but-slow stragglers
        (Section 4.1); every other behaviour — including a crash, which
        Byzantine behaviour subsumes — counts against ``t``.
        """
        return self.total() - self.lazy

    def assignments(self, n: int) -> dict[str, tuple[int, ...]]:
        """Deterministic behaviour → replica-id mapping (top ids first)."""
        if self.total() > n:
            raise ValueError(
                f"fault mix assigns {self.total()} replicas but n={n}"
            )
        next_id = n - 1
        assigned: dict[str, tuple[int, ...]] = {}
        for name, count in (
            ("silent", self.silent),
            ("equivocate", self.equivocate),
            ("withhold", self.withhold),
            ("lazy", self.lazy),
            ("marker_lie", self.marker_lie),
            ("sync_withhold", self.sync_withhold),
            ("crash", self.crash),
            # Recovery faults come last so pre-existing specs keep the
            # exact id assignments they always had.
            ("recover", self.recover),
            ("amnesia", self.amnesia),
        ):
            ids = tuple(range(next_id, next_id - count, -1))
            next_id -= count
            assigned[name] = ids
        return assigned

    def byzantine_ids(self, n: int) -> tuple[int, ...]:
        """Ids with a behaviour override (everything except crashes)."""
        assigned = self.assignments(n)
        return tuple(
            replica_id
            for name in ("silent", "equivocate", "withhold", "lazy",
                         "marker_lie", "sync_withhold", "amnesia")
            for replica_id in assigned[name]
        )

    def behavior_kwargs(self, behavior: str) -> dict:
        """Extra knobs each behaviour factory takes, from this mix."""
        if behavior == "withhold":
            return {"reach": self.withhold_reach}
        if behavior == "lazy":
            return {"delay": self.lazy_delay}
        return {}

    def replica_overrides(self, n: int, base_class) -> dict[int, type]:
        assigned = self.assignments(n)
        overrides: dict[int, type] = {}
        for behavior, factory in BEHAVIOR_FACTORIES.items():
            kwargs = self.behavior_kwargs(behavior)
            for replica_id in assigned[behavior]:
                overrides[replica_id] = factory(base_class, **kwargs)
        return overrides

    def crash_schedule(self, n: int) -> tuple:
        return tuple(
            (replica_id, self.crash_at)
            for replica_id in self.assignments(n)["crash"]
        )

    def recovery_schedule(self, n: int) -> tuple:
        """``(replica_id, crash_time, restart_time)`` triples for every
        crash-recovery fault (``recover`` and ``amnesia`` alike — the
        amnesia differential runs the identical schedule, it just skips
        the WAL reload on restart)."""
        assigned = self.assignments(n)
        return tuple(
            (replica_id, self.recover_at, self.recover_at + self.downtime)
            for name in ("recover", "amnesia")
            for replica_id in assigned[name]
        )


@dataclass(slots=True)
class PartitionWindow:
    """One temporary partition: ``[start, end)``, healed afterwards.

    Either ``groups`` gives explicit replica-id groups, or ``split``
    divides ids into the first ``split`` fraction versus the rest.
    """

    start: float
    end: float
    groups: tuple = ()
    split: float = 0.5

    def __post_init__(self):
        _require_finite("partition start", self.start)
        _require_finite("partition end", self.end)
        if self.end <= self.start:
            raise ValueError(
                f"partition window ends at {self.end!r} before it starts "
                f"at {self.start!r}"
            )
        if not self.groups:
            _require_finite("partition split", self.split)
            if not 0.0 < self.split < 1.0:
                raise ValueError(
                    f"partition split must be in (0, 1), got {self.split!r}"
                )

    def resolve(self, n: int) -> tuple:
        if self.groups:
            return tuple(tuple(group) for group in self.groups)
        cut = max(1, min(n - 1, int(n * self.split)))
        return (tuple(range(cut)), tuple(range(cut, n)))


@dataclass(slots=True)
class ScenarioSpec:
    """One named, declarative experiment scenario."""

    name: str = "scenario"
    protocol: str = "sft-diembft"
    n: int = 7
    f: int | None = None
    # Topology preset + latency model.
    topology: str = "uniform"
    delta: float = 0.100
    region_sizes: tuple = ()
    intra_delay: float = 0.001
    ab_delay: float = 0.020
    uniform_delay: float = 0.010
    jitter: float = 0.002
    bandwidth_bytes_per_sec: float = 0.0
    processing_delay: float = 0.0
    gst: float = 0.0
    pre_gst_delay: float = 0.0
    # At-least-once delivery faults (both default off ⇒ byte-identical
    # replay): each unicast is duplicated with probability
    # ``duplicate_rate``, and ``reorder_window`` seconds of extra
    # per-message delay jitter lets later sends overtake earlier ones.
    duplicate_rate: float = 0.0
    reorder_window: float = 0.0
    # Protocol knobs.
    round_timeout: float = 0.5
    timeout_multiplier: float = 1.5
    max_timeout: float = 8.0
    qc_extra_wait: float = 0.0
    generalized_intervals: bool = False
    interval_window: int | None = None
    naive_accounting: bool = False
    verify_signatures: bool = True
    drop_stale_messages: bool = True
    block_batch_count: int = 10
    block_batch_bytes: int = 1_000
    streamlet_round_duration: float | None = None
    # Block-sync / catch-up subprotocol; off replays the pre-sync
    # behaviour byte-for-byte (determinism differentials, corpus
    # starvation stories).
    sync_enabled: bool = True
    # Throughput program (all default-off, same byte-identical-replay
    # discipline): a real-transaction KV workload at ``workload_rate``
    # txs/sec feeding per-replica mempools, leaders batching up to
    # ``batch_size`` transactions / ``max_batch_bytes`` bytes per
    # block, optional pipelined drains, and linear vote collection.
    workload_rate: float = 0.0
    workload_payload_bytes: int = 64
    batch_size: int = 256
    max_batch_bytes: int = 0
    pipelined_proposals: bool = False
    linear_votes: bool = False
    # Checkpoint subprotocol: sign state digests every this-many
    # commits; 2f+1 matching digests truncate history below the stable
    # checkpoint and let far-behind replicas join via snapshot
    # transfer.  0 (default) replays pre-checkpoint runs byte-for-byte.
    checkpoint_interval: int = 0
    # Observability (repro.obs): ``trace_level`` turns the structured
    # lifecycle span log on ("spans" adds the block span chain, "full"
    # also records every message delivery); off replays pre-tracing
    # runs byte-for-byte.  ``flight_recorder`` keeps the cheap per-
    # replica crash ring (memory only, never in metrics) that invariant
    # violations dump as JSON artifacts.
    trace_level: str = "off"
    flight_recorder: bool = True
    # Run control.
    duration: float = 10.0
    seeds: tuple = (1,)
    # Which replicas track endorsements (Section 5): "all", an int
    # stride, or an explicit id list — ``[]`` disables the observer
    # role everywhere.  Observer leaders embed strong-commit events
    # into block.commit_log, which is hashed into the block id and
    # depends on *when* strong QCs accrued; scenarios meant to commit
    # identical chains across transport tiers (``repro rt diff``) must
    # therefore set ``observers = []``.
    observers: object = "all"
    # Fault injection.
    faults: FaultMix = field(default_factory=FaultMix)
    partitions: tuple = ()
    # Scripted (non-cluster) scenario kind; see SCRIPTS.
    script: str = ""
    # Analysis knobs.
    ratios: tuple = (1.0, 1.5, 2.0)
    cutoff_fraction: float = 0.66
    series_observers: tuple | None = None

    def __post_init__(self):
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; expected one of {PROTOCOLS}"
            )
        if self.script not in SCRIPTS:
            raise ValueError(
                f"unknown script {self.script!r}; expected one of {SCRIPTS}"
            )
        if not isinstance(self.n, int) or isinstance(self.n, bool) or self.n < 1:
            raise ValueError(f"n must be a positive integer, got {self.n!r}")
        if self.f is not None:
            _require_count("f", self.f)
        for name in (
            "delta", "intra_delay", "ab_delay", "uniform_delay", "jitter",
            "bandwidth_bytes_per_sec", "processing_delay", "gst",
            "pre_gst_delay", "qc_extra_wait", "workload_rate",
            "duplicate_rate", "reorder_window",
        ):
            _require_finite(name, getattr(self, name))
        if self.duplicate_rate > 1.0:
            raise ValueError(
                f"duplicate_rate must be <= 1, got {self.duplicate_rate!r}"
            )
        _require_count("workload_payload_bytes", self.workload_payload_bytes)
        _require_count("max_batch_bytes", self.max_batch_bytes)
        _require_count("checkpoint_interval", self.checkpoint_interval)
        if (
            not isinstance(self.batch_size, int)
            or isinstance(self.batch_size, bool)
            or self.batch_size < 1
        ):
            raise ValueError(
                f"batch_size must be a positive integer, got {self.batch_size!r}"
            )
        for name in ("duration", "round_timeout", "timeout_multiplier",
                     "max_timeout"):
            _require_finite(name, getattr(self, name))
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)!r}"
                )
        from repro.obs.trace import TRACE_LEVELS

        if self.trace_level not in TRACE_LEVELS:
            raise ValueError(
                f"unknown trace_level {self.trace_level!r}; "
                f"expected one of {TRACE_LEVELS}"
            )
        self.seeds = tuple(self.seeds)
        if not self.seeds:
            raise ValueError("seeds must not be empty")
        self.ratios = tuple(self.ratios)
        self.region_sizes = tuple(self.region_sizes)
        self.partitions = tuple(self.partitions)
        self.faults.assignments(self.n)  # validate counts against n
        for window in self.partitions:
            if window.end > self.duration and window.start >= self.duration:
                raise ValueError(
                    f"partition window [{window.start:g}, {window.end:g}) "
                    f"lies entirely past duration={self.duration:g}"
                )
        if self.script == "appendix_c" and self.resolved_f() < 2:
            raise ValueError(
                "the appendix_c script needs f >= 2 "
                f"(n={self.n}, f={self.resolved_f()})"
            )

    def resolved_f(self) -> int:
        return self.f if self.f is not None else (self.n - 1) // 3

    def with_overrides(self, **kwargs) -> "ScenarioSpec":
        """A copy with the given fields replaced (matrix helper).

        Dotted ``faults.*`` keys override fields of the fault mix.
        """
        fault_overrides = {}
        for key in list(kwargs):
            if key.startswith("faults."):
                fault_overrides[key.split(".", 1)[1]] = kwargs.pop(key)
        if fault_overrides:
            kwargs["faults"] = replace(self.faults, **fault_overrides)
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # resolution into runnable pieces
    # ------------------------------------------------------------------

    def to_experiment_config(self, seed: int | None = None) -> ExperimentConfig:
        return ExperimentConfig(
            protocol=self.protocol,
            n=self.n,
            f=self.f,
            topology=self.topology,
            delta=self.delta,
            region_sizes=self.region_sizes,
            intra_delay=self.intra_delay,
            ab_delay=self.ab_delay,
            uniform_delay=self.uniform_delay,
            jitter=self.jitter,
            bandwidth_bytes_per_sec=self.bandwidth_bytes_per_sec,
            processing_delay=self.processing_delay,
            gst=self.gst,
            pre_gst_delay=self.pre_gst_delay,
            duplicate_rate=self.duplicate_rate,
            reorder_window=self.reorder_window,
            round_timeout=self.round_timeout,
            timeout_multiplier=self.timeout_multiplier,
            max_timeout=self.max_timeout,
            qc_extra_wait=self.qc_extra_wait,
            generalized_intervals=self.generalized_intervals,
            interval_window=self.interval_window,
            naive_accounting=self.naive_accounting,
            verify_signatures=self.verify_signatures,
            drop_stale_messages=self.drop_stale_messages,
            block_batch_count=self.block_batch_count,
            block_batch_bytes=self.block_batch_bytes,
            streamlet_round_duration=self.streamlet_round_duration,
            sync_enabled=self.sync_enabled,
            workload_rate=self.workload_rate,
            workload_payload_bytes=self.workload_payload_bytes,
            batch_size=self.batch_size,
            max_batch_bytes=self.max_batch_bytes,
            pipelined_proposals=self.pipelined_proposals,
            linear_votes=self.linear_votes,
            checkpoint_interval=self.checkpoint_interval,
            trace_level=self.trace_level,
            flight_recorder=self.flight_recorder,
            duration=self.duration,
            seed=self.seeds[0] if seed is None else seed,
            observers=self.observers,
            crash_schedule=self.faults.crash_schedule(self.n),
            recovery_schedule=self.faults.recovery_schedule(self.n),
            partition_schedule=tuple(
                (window.resolve(self.n), window.start, window.end)
                for window in self.partitions
            ),
        )

    def replica_overrides(self) -> dict[int, type]:
        from repro.runtime.cluster import _PROTOCOL_CLASSES

        base_class = _PROTOCOL_CLASSES[self.protocol]
        return self.faults.replica_overrides(self.n, base_class)

    def build(self, seed: int | None = None):
        """A ready-to-run cluster for one seed (the factory path)."""
        if self.script:
            raise ValueError(
                f"scenario {self.name!r} is scripted ({self.script!r}); "
                "it has no cluster — run it through the fuzz engine "
                "(repro.experiments.runner handles it transparently)"
            )
        return build_cluster(
            self.to_experiment_config(seed), self.replica_overrides()
        )


# ----------------------------------------------------------------------
# loading from TOML / JSON
# ----------------------------------------------------------------------

_SPEC_FIELDS = {spec_field.name for spec_field in dataclass_fields(ScenarioSpec)}
_FAULT_FIELDS = {fault_field.name for fault_field in dataclass_fields(FaultMix)}
_PARTITION_FIELDS = {
    partition_field.name for partition_field in dataclass_fields(PartitionWindow)
}


def spec_from_mapping(data: dict, name: str | None = None) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from a parsed TOML/JSON mapping.

    Unknown keys raise — typos in scenario files should fail loudly,
    not silently run the default. The ``matrix`` key is reserved for
    :class:`~repro.experiments.campaign.Campaign` and ignored here.
    """
    payload = dict(data)
    payload.pop("matrix", None)
    unknown = set(payload) - _SPEC_FIELDS
    if unknown:
        raise ValueError(f"unknown scenario keys: {sorted(unknown)}")

    if "faults" in payload:
        fault_data = dict(payload["faults"])
        bad = set(fault_data) - _FAULT_FIELDS
        if bad:
            raise ValueError(f"unknown fault keys: {sorted(bad)}")
        payload["faults"] = FaultMix(**fault_data)
    if "partitions" in payload:
        windows = []
        for window_data in payload["partitions"]:
            window_data = dict(window_data)
            bad = set(window_data) - _PARTITION_FIELDS
            if bad:
                raise ValueError(f"unknown partition keys: {sorted(bad)}")
            if "groups" in window_data:
                window_data["groups"] = tuple(
                    tuple(group) for group in window_data["groups"]
                )
            windows.append(PartitionWindow(**window_data))
        payload["partitions"] = tuple(windows)
    for tuple_key in ("seeds", "ratios", "region_sizes", "series_observers"):
        if tuple_key in payload and payload[tuple_key] is not None:
            payload[tuple_key] = tuple(payload[tuple_key])
    if name is not None and "name" not in payload:
        payload["name"] = name
    return ScenarioSpec(**payload)


def load_scenario_mapping(path) -> dict:
    """Parse a ``.toml`` or ``.json`` scenario file into a mapping."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".toml":
        import tomllib

        return tomllib.loads(text)
    if path.suffix == ".json":
        return json.loads(text)
    raise ValueError(f"unsupported scenario format: {path.suffix!r} ({path})")


def load_scenario(path) -> ScenarioSpec:
    """Load a single :class:`ScenarioSpec` from a TOML or JSON file."""
    path = Path(path)
    return spec_from_mapping(load_scenario_mapping(path), name=path.stem)


# ----------------------------------------------------------------------
# saving back to a mapping / JSON (fuzz replay + shrinker output)
# ----------------------------------------------------------------------


def spec_to_mapping(spec: ScenarioSpec) -> dict:
    """The inverse of :func:`spec_from_mapping`, defaults omitted.

    The mapping is JSON-serializable and loads back into an equivalent
    spec — the contract behind replayable fuzz cases and minimized
    counterexamples.
    """
    defaults = ScenarioSpec()
    fault_defaults = FaultMix()
    data: dict = {"name": spec.name}
    for spec_field in dataclass_fields(ScenarioSpec):
        key = spec_field.name
        value = getattr(spec, key)
        if key == "name":
            continue
        if key == "faults":
            fault_data = {
                fault_field.name: getattr(value, fault_field.name)
                for fault_field in dataclass_fields(FaultMix)
                if getattr(value, fault_field.name)
                != getattr(fault_defaults, fault_field.name)
            }
            if fault_data:
                data[key] = fault_data
            continue
        if key == "partitions":
            if value:
                data[key] = [_window_to_mapping(window) for window in value]
            continue
        if value == getattr(defaults, key):
            continue
        data[key] = list(value) if isinstance(value, tuple) else value
    return data


def _window_to_mapping(window: PartitionWindow) -> dict:
    entry: dict = {"start": window.start, "end": window.end}
    if window.groups:
        entry["groups"] = [list(group) for group in window.groups]
    elif window.split != 0.5:
        entry["split"] = window.split
    return entry


def save_scenario(spec: ScenarioSpec, path) -> None:
    """Write ``spec`` as a replayable JSON scenario file."""
    path = Path(path)
    path.write_text(
        json.dumps(spec_to_mapping(spec), indent=2, sort_keys=True) + "\n"
    )

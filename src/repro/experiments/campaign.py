"""Campaign expansion: a scenario matrix → concrete runnable jobs.

A campaign is a base :class:`~repro.experiments.spec.ScenarioSpec`
plus a ``matrix`` of axis → value-list entries.  :meth:`Campaign.expand`
materializes the full cross-product (axes × seeds) into
:class:`Job` objects, each naming one deterministic simulation.

Matrix axes address any scalar spec field (``n``, ``protocol``,
``delta``, ``qc_extra_wait``, …) or a fault-mix field via a dotted
``faults.*`` key (``faults.crash``, ``faults.equivocate``, …).  Seeds
are not a matrix axis — use the spec's ``seeds`` list, which is always
expanded last.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.experiments.spec import (
    ScenarioSpec,
    load_scenario_mapping,
    spec_from_mapping,
)


@dataclass(slots=True)
class Job:
    """One fully-resolved simulation: a spec with scalar values + a seed."""

    job_id: str
    spec: ScenarioSpec
    seed: int
    params: dict = field(default_factory=dict)


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


class Campaign:
    """A named experiment matrix over one base scenario."""

    def __init__(
        self,
        base: ScenarioSpec,
        matrix: dict | None = None,
        name: str | None = None,
    ) -> None:
        self.base = base
        self.matrix = dict(matrix or {})
        self.name = name or base.name
        for axis, values in self.matrix.items():
            if axis in ("seeds", "seed"):
                raise ValueError("seeds are expanded implicitly; not a matrix axis")
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"matrix axis {axis!r} needs a non-empty list")
            # Fail at load time, not mid-campaign, on a bad axis name or
            # a value invalid against the base spec.
            for value in values:
                try:
                    base.with_overrides(**{axis: value})
                except TypeError as error:
                    raise ValueError(f"unknown matrix axis {axis!r}") from error
                except ValueError as error:
                    raise ValueError(
                        f"matrix axis {axis!r} value {value!r}: {error}"
                    ) from error

    @classmethod
    def from_file(cls, path) -> "Campaign":
        """Load a campaign (or single scenario) from TOML/JSON.

        A file without a ``[matrix]`` table is a one-scenario campaign
        whose only expansion axis is the seed list.
        """
        from pathlib import Path

        path = Path(path)
        data = load_scenario_mapping(path)
        matrix = data.get("matrix", {})
        base = spec_from_mapping(data, name=path.stem)
        return cls(base, matrix=matrix, name=base.name)

    def job_count(self) -> int:
        count = len(self.base.seeds)
        for values in self.matrix.values():
            count *= len(values)
        return count

    def expand(self) -> list:
        """The cross-product of matrix axes × seeds, in stable order."""
        axes = list(self.matrix)
        value_lists = [self.matrix[axis] for axis in axes]
        jobs = []
        for combo in itertools.product(*value_lists):
            params = dict(zip(axes, combo))
            spec = self.base.with_overrides(**params) if params else self.base
            for seed in spec.seeds:
                parts = [
                    f"{axis}={_format_value(value)}"
                    for axis, value in params.items()
                ]
                parts.append(f"seed={seed}")
                job_id = f"{self.name}/" + ",".join(parts)
                jobs.append(
                    Job(job_id=job_id, spec=spec, seed=seed, params=params)
                )
        return jobs

"""Parallel campaign execution and metric aggregation.

Each :class:`~repro.experiments.campaign.Job` is an independent,
fully-deterministic simulation, so a campaign is embarrassingly
parallel: :class:`CampaignRunner` fans jobs out over a
``multiprocessing`` pool and reassembles the results in job order,
making the report independent of worker count and completion order.

Per-job metrics are split into a ``metrics`` section — deterministic
for a fixed spec + seed, byte-identical across runs and worker counts —
and a ``wall_clock_s`` timing that naturally varies.  Regression
baselines (:mod:`repro.experiments.baseline`) compare only the
deterministic section.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.analysis.chain_stats import collect_chain_stats
from repro.analysis.health import QCDiversityMonitor
from repro.analysis.invariants import (
    check_appendix_c,
    check_cluster_invariants,
    invariant_report,
)
from repro.experiments.campaign import Campaign
from repro.obs import breakdown_from_cluster, collect_flight_recording
from repro.runtime.metrics import (
    LatencyReport,
    check_commit_safety,
    commit_latency_percentiles,
    messages_per_committed_block,
    percentile,
    regular_commit_latency,
    strong_latency_series,
    throughput_txps,
)


def _workload_metrics(cluster, reference) -> dict:
    """Real-transaction accounting (zeros when no workload is attached).

    ``committed_unique`` follows the executor's exactly-once rule
    (distinct txids in the reference observer's committed chain);
    ``duplicates`` counts re-proposed occurrences that wasted block
    space — the overhead pipelining suppresses.
    """
    workload = getattr(cluster, "workload", None)
    if workload is None:
        return {
            "submitted": 0,
            "committed_unique": 0,
            "duplicates": 0,
            "per_sec": 0.0,
            "e2e_p50_s": None,
            "e2e_p99_s": None,
        }
    unique, duplicates = workload.committed_tx_stats(reference)
    horizon = cluster.simulator.now
    latencies = workload.end_to_end_latencies()
    return {
        "submitted": workload.submitted,
        "committed_unique": unique,
        "duplicates": duplicates,
        "per_sec": _round(unique / horizon if horizon > 0 else 0.0, 3),
        "e2e_p50_s": _round(percentile(latencies, 0.5)),
        "e2e_p99_s": _round(percentile(latencies, 0.99)),
    }


def _round(value, digits: int = 6):
    return None if value is None else round(value, digits)


def _series_metrics(cluster, spec) -> list:
    """Figure-7-style series as plain dicts (JSON- and diff-friendly)."""
    cutoff = spec.duration * spec.cutoff_fraction
    if spec.series_observers is not None:
        saved = cluster.config.observers
        cluster.config.observers = tuple(spec.series_observers)
        try:
            series = strong_latency_series(
                cluster, spec.ratios, created_before=cutoff
            )
        finally:
            cluster.config.observers = saved
    else:
        series = strong_latency_series(cluster, spec.ratios, created_before=cutoff)
    return [
        {
            "ratio": point.ratio,
            "level": point.level,
            "mean_latency_s": _round(point.mean_latency),
            "samples": point.samples,
            "eligible": point.eligible,
        }
        for point in series
    ]


def reports_from_series(series: list) -> list:
    """Rebuild LatencyReport points from ``strong_latency_series`` metrics.

    The inverse of :func:`_series_metrics`, for feeding campaign job
    results back into the Figure-7-style table/chart formatters.
    """
    return [
        LatencyReport(
            ratio=point["ratio"],
            level=point["level"],
            mean_latency=point["mean_latency_s"],
            samples=point["samples"],
            eligible=point["eligible"],
        )
        for point in series
    ]


def collect_job_metrics(cluster, spec) -> dict:
    """Aggregate chain/health/message statistics from a finished run."""
    cutoff = spec.duration * spec.cutoff_fraction
    correct = cluster.correct_replicas()
    observers = [
        replica for replica in cluster.observer_replicas()
        if not replica.crashed and replica.replica_id not in cluster.byzantine_ids
    ]
    safety_ok = True
    safety_error = None
    try:
        check_commit_safety(observers)
    except AssertionError as error:
        safety_ok = False
        safety_error = str(error)

    # One oracle pass covers Definition 1 (with t from the spec's fault
    # mix) plus the structural and liveness invariants.
    invariant_violations = check_cluster_invariants(cluster, spec)
    strong_violations = sum(
        1
        for violation in invariant_violations
        if violation.invariant == "definition-1"
    )

    reference = observers[0] if observers else correct[0]
    regular_mean, regular_count = regular_commit_latency(
        cluster, created_before=cutoff
    )
    latency_percentiles = commit_latency_percentiles(
        cluster, (0.5, 0.99), created_before=cutoff
    )
    stats = collect_chain_stats(reference)

    monitor = QCDiversityMonitor(cluster.config.n)
    monitor.observe_chain(
        reference.store, reference.commit_tracker.commit_order
    )
    outcasts = [
        health.replica_id for health in monitor.report() if health.is_outcast()
    ]
    appearance_rates = [
        _round(rate, 4) for rate in monitor.appearance_vector()
    ]

    message_stats = cluster.message_stats()
    per_commit = messages_per_committed_block(cluster)

    # Block-sync subprotocol totals (zeros when sync is disabled).
    sync_totals = {
        "requests": 0,
        "responses_served": 0,
        "responses_applied": 0,
        "invalid_responses": 0,
        "blocks_synced": 0,
        "peer_rotations": 0,
    }
    sync_enabled = False
    for replica in cluster.replicas:
        manager = getattr(replica, "sync", None)
        if manager is None:
            continue
        sync_enabled = True
        for key, value in manager.stats().items():
            sync_totals[key] += value

    # Checkpoint subprotocol totals (zeros when checkpointing is off).
    checkpoint_totals = {
        "checkpoints_signed": 0,
        "certificates_formed": 0,
        "blocks_truncated": 0,
        "snapshots_served": 0,
        "snapshots_installed": 0,
        "invalid_snapshots": 0,
        "peer_rotations": 0,
    }
    checkpoint_enabled = False
    stable_height = 0
    for replica in cluster.replicas:
        manager = getattr(replica, "checkpoint", None)
        if manager is None:
            continue
        checkpoint_enabled = True
        for key, value in manager.stats().items():
            checkpoint_totals[key] += value
        stable_height = max(stable_height, manager.stable_height())
    peak_live_blocks = max(
        (
            replica.store.peak_live_blocks
            for replica in cluster.replicas
            if getattr(replica, "store", None) is not None
        ),
        default=0,
    )

    metrics = {
        "commits": len(reference.commit_tracker.commit_order),
        "rounds": reference.current_round,
        "events": cluster.simulator.events_processed,
        "throughput_txps": _round(throughput_txps(cluster), 3),
        "regular_latency_s": _round(regular_mean),
        "regular_latency_samples": regular_count,
        "regular_latency_p50_s": _round(latency_percentiles[0.5]),
        "regular_latency_p99_s": _round(latency_percentiles[0.99]),
        "strong_latency_series": _series_metrics(cluster, spec),
        "chain": {
            "blocks_total": stats.blocks_total,
            "blocks_committed": stats.blocks_committed,
            "max_round": stats.max_round,
            "skipped_rounds": stats.skipped_rounds,
            "fork_blocks": stats.fork_blocks,
            "max_fork_depth": stats.max_fork_depth,
            "mean_qc_size": _round(stats.mean_qc_size, 3),
            "qc_diversity": _round(stats.qc_diversity, 4),
        },
        "health": {
            "chain_qcs": monitor.qc_count(),
            "max_achievable_strength": monitor.max_achievable_strength(
                cluster.config.resolved_f()
            ),
            "outcasts": outcasts,
            "appearance_rates": appearance_rates,
        },
        "latency_breakdown": breakdown_from_cluster(reference),
        "messages": {
            "sent": message_stats["sent"],
            "delivered": message_stats["delivered"],
            "bytes": message_stats["bytes"],
            "per_commit": (
                None if per_commit == float("inf") else _round(per_commit, 3)
            ),
            "by_type": dict(sorted(message_stats["by_type"].items())),
        },
        "txs": _workload_metrics(cluster, reference),
        "sync": {"enabled": sync_enabled, **sync_totals},
        "checkpoint": {
            "enabled": checkpoint_enabled,
            "stable_height": stable_height,
            "peak_live_blocks": peak_live_blocks,
            **checkpoint_totals,
        },
        "safety_ok": safety_ok,
        "strong_safety_violations": strong_violations,
        "invariants": invariant_report(invariant_violations),
    }
    # Crash-recovery totals only when the schedule is active: the key
    # is absent on default-off runs so committed baselines keep their
    # exact metric shape.
    if getattr(cluster, "durable", None) is not None:
        metrics["recoveries"] = {
            "restarts": cluster.restarts,
            "amnesia_restarts": cluster.amnesia_restarts,
            **cluster.durable.stats(),
        }
    # Likewise the at-least-once delivery counter: present only when
    # the network actually sampled the fault.
    if "duplicated" in message_stats:
        metrics["messages"]["duplicated"] = message_stats["duplicated"]
    if safety_error is not None:
        metrics["safety_error"] = safety_error
    return metrics


def collect_scripted_metrics(spec) -> dict:
    """Run a scripted (non-cluster) scenario and judge it.

    Scripted specs replay hand-built adversarial constructions —
    currently only ``"appendix_c"`` (Figure 9) — under the spec's
    accounting mode, and report through the same metrics shape as
    cluster jobs so campaign/fuzz plumbing handles both uniformly.
    """
    from repro.adversary.scripted import AppendixCScenario

    result = AppendixCScenario(f=spec.resolved_f()).run()
    violations = check_appendix_c(result, naive=spec.naive_accounting)
    # An *unexpected* Definition-1 violation (SFT accounting unsafe on
    # its own construction) is a safety failure; the deliberate naive
    # counterexample is not.
    safety_ok = all(violation.expected for violation in violations)
    return {
        "script": spec.script,
        "commits": 0,
        "regular_latency_s": None,
        "safety_ok": safety_ok,
        "health": {"outcasts": []},
        "messages": {"sent": 0, "delivered": 0, "bytes": 0, "per_commit": None},
        "appendix_c": {
            "f": result.f,
            "naive_main_strength": result.naive_main_strength,
            "naive_fork_strength": result.naive_fork_strength,
            "sft_main_strength": result.sft_main_strength,
            "sft_fork_strength": result.sft_fork_strength,
        },
        "invariants": invariant_report(violations),
    }


def run_job(job) -> dict:
    """Execute one job and return its report entry (picklable dict).

    ``wall_clock_s`` covers the whole job (build + run + analysis);
    ``run_wall_clock_s`` is the simulation loop alone — the number the
    benchmark subsystem (:mod:`repro.perf`) tracks, so the invariant
    oracle's cost never pollutes engine throughput measurements.
    """
    start = time.perf_counter()
    spec = job.spec
    flight_recording = None
    if spec.script:
        metrics = collect_scripted_metrics(spec)
        run_wall_clock = time.perf_counter() - start
    else:
        cluster = spec.build(job.seed)
        run_start = time.perf_counter()
        cluster.run()
        run_wall_clock = time.perf_counter() - run_start
        metrics = collect_job_metrics(cluster, spec)
        violations = metrics.get("invariants", {}).get("violations", [])
        if violations:
            # Outside ``metrics`` on purpose: baselines and fuzz digests
            # compare/hash only the deterministic metrics section.
            flight_recording = collect_flight_recording(cluster, violations)
    wall_clock = time.perf_counter() - start
    entry = {
        "job_id": job.job_id,
        "scenario": spec.name,
        "params": dict(job.params),
        "seed": job.seed,
        "metrics": metrics,
        "wall_clock_s": round(wall_clock, 3),
        "run_wall_clock_s": round(run_wall_clock, 6),
    }
    if flight_recording is not None:
        entry["flight_recording"] = flight_recording
    return entry


def _summarize(results: list) -> dict:
    latencies = [
        entry["metrics"]["regular_latency_s"]
        for entry in results
        if entry["metrics"]["regular_latency_s"] is not None
    ]
    return {
        "total_commits": sum(entry["metrics"]["commits"] for entry in results),
        "mean_regular_latency_s": (
            round(sum(latencies) / len(latencies), 6) if latencies else None
        ),
        "all_safe": all(entry["metrics"]["safety_ok"] for entry in results),
        "all_invariants_ok": all(
            entry["metrics"].get("invariants", {}).get("ok", True)
            for entry in results
        ),
        "jobs_with_outcasts": sum(
            1 for entry in results if entry["metrics"]["health"]["outcasts"]
        ),
    }


class CampaignRunner:
    """Executes a job list, serially or over a process pool."""

    def __init__(self, jobs: list, workers: int = 1, name: str = "campaign"):
        self.jobs = list(jobs)
        self.workers = max(1, workers)
        self.name = name

    def run(self, progress=None) -> dict:
        """Run every job; returns the aggregate campaign report.

        ``progress`` is an optional callable invoked with each finished
        job entry (serial mode reports as it goes; parallel mode as
        ordered results arrive).
        """
        start = time.perf_counter()
        if self.workers == 1 or len(self.jobs) <= 1:
            results = []
            for job in self.jobs:
                entry = run_job(job)
                if progress is not None:
                    progress(entry)
                results.append(entry)
        else:
            with multiprocessing.Pool(processes=self.workers) as pool:
                results = []
                for entry in pool.imap(run_job, self.jobs, chunksize=1):
                    if progress is not None:
                        progress(entry)
                    results.append(entry)
        wall_clock = time.perf_counter() - start
        return {
            "campaign": self.name,
            "workers": self.workers,
            "job_count": len(results),
            "wall_clock_s": round(wall_clock, 3),
            "jobs": results,
            "summary": _summarize(results),
        }


def run_campaign(campaign: Campaign, workers: int = 1, progress=None) -> dict:
    """Expand and execute a :class:`Campaign` in one call."""
    runner = CampaignRunner(
        campaign.expand(), workers=workers, name=campaign.name
    )
    return runner.run(progress=progress)

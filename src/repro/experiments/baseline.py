"""Regression baselines for campaign reports.

A baseline is simply a previously-saved campaign report.  Comparing a
fresh report against it flags jobs whose commit latency or message
complexity regressed beyond a tolerance, or whose committed-block
count collapsed — the guardrail CI runs on every push.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path


@dataclass(slots=True)
class Regression:
    """One tolerance violation between a report and its baseline."""

    job_id: str
    metric: str
    current: float | None
    baseline: float | None
    limit: float | None

    def describe(self) -> str:
        def show(value):
            return "—" if value is None else f"{value:g}"

        return (
            f"{self.job_id}: {self.metric} {show(self.current)} "
            f"vs baseline {show(self.baseline)} (limit {show(self.limit)})"
        )


def save_report(report: dict, path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path) -> dict:
    return json.loads(Path(path).read_text())


def _jobs_by_id(report: dict) -> dict:
    return {entry["job_id"]: entry for entry in report.get("jobs", ())}


def diff_reports(
    current: dict,
    baseline: dict,
    latency_tolerance: float = 0.25,
    message_tolerance: float = 0.25,
    commit_tolerance: float = 0.25,
) -> list:
    """Regressions of ``current`` against ``baseline``.

    Higher-is-worse metrics (regular commit latency, messages per
    committed block) regress when they exceed baseline × (1 + tol);
    commits regress when they fall below baseline × (1 - tol).  Jobs
    present in the baseline but missing from the current report are
    regressions too — a shrunk matrix must be deliberate.
    """
    regressions = []
    current_jobs = _jobs_by_id(current)
    for job_id, base_entry in _jobs_by_id(baseline).items():
        entry = current_jobs.get(job_id)
        if entry is None:
            regressions.append(
                Regression(job_id, "missing-job", None, None, None)
            )
            continue
        metrics = entry["metrics"]
        base_metrics = base_entry["metrics"]

        if not metrics.get("safety_ok", False):
            regressions.append(
                Regression(job_id, "safety_ok", 0.0, 1.0, 1.0)
            )

        for metric, value, base_value, tolerance in (
            (
                "regular_latency_s",
                metrics.get("regular_latency_s"),
                base_metrics.get("regular_latency_s"),
                latency_tolerance,
            ),
            (
                "messages.per_commit",
                metrics.get("messages", {}).get("per_commit"),
                base_metrics.get("messages", {}).get("per_commit"),
                message_tolerance,
            ),
        ):
            if value is None or base_value is None:
                continue
            limit = base_value * (1.0 + tolerance)
            if value > limit:
                regressions.append(
                    Regression(job_id, metric, value, base_value, limit)
                )

        commits = metrics.get("commits")
        base_commits = base_metrics.get("commits")
        if commits is not None and base_commits:
            floor = base_commits * (1.0 - commit_tolerance)
            if commits < floor:
                regressions.append(
                    Regression(job_id, "commits", commits, base_commits, floor)
                )
    return regressions

"""Declarative experiment campaigns: specs, matrices, parallel runs.

The sweep entry point for the whole repo: describe a scenario (or a
matrix of them) in TOML/JSON, expand it into jobs, run the jobs in
parallel, and diff the aggregate report against a regression baseline.

    from repro.experiments import Campaign, run_campaign

    campaign = Campaign.from_file("scenarios/smoke.toml")
    report = run_campaign(campaign, workers=4)
"""

from repro.experiments.baseline import (
    Regression,
    diff_reports,
    load_report,
    save_report,
)
from repro.experiments.campaign import Campaign, Job
from repro.experiments.runner import (
    CampaignRunner,
    collect_job_metrics,
    reports_from_series,
    run_campaign,
    run_job,
)
from repro.experiments.spec import (
    FaultMix,
    PartitionWindow,
    ScenarioSpec,
    load_scenario,
    save_scenario,
    spec_from_mapping,
    spec_to_mapping,
)

__all__ = [
    "ScenarioSpec",
    "FaultMix",
    "PartitionWindow",
    "load_scenario",
    "save_scenario",
    "spec_from_mapping",
    "spec_to_mapping",
    "Campaign",
    "Job",
    "CampaignRunner",
    "run_campaign",
    "run_job",
    "collect_job_metrics",
    "reports_from_series",
    "Regression",
    "diff_reports",
    "save_report",
    "load_report",
]

"""Replica health monitoring through strong-QC diversity (Section 5).

The paper observes that "the QC diversity requirement implied by strong
commit is closely aligned with the task of monitoring the health
conditions of the replicas in the system, which can be done via
observing the QCs in the chain and detecting slow replicas."

:class:`QCDiversityMonitor` implements exactly that: it watches the
QCs embedded in committed chain blocks and scores each replica by how
recently and how often its strong-votes make it into certificates.
Replicas that never appear ("outcast replicas", Section 4.1) are the
ones that block high strong-commit levels and should be reconfigured
or replaced.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ReplicaHealth:
    """Participation summary for one replica."""

    replica_id: int
    qc_appearances: int
    appearance_rate: float
    last_seen_round: int | None

    def is_outcast(self) -> bool:
        """Never contributed a vote to any observed QC."""
        return self.qc_appearances == 0


class QCDiversityMonitor:
    """Scores replica participation from observed chain QCs.

    Feed it every QC that lands on the chain (e.g. from one replica's
    committed blocks); query :meth:`report` for per-replica health,
    :meth:`stragglers` for the slowest participants, and
    :meth:`outcasts` for replicas whose votes never appear — the ones
    the paper says should be "reconfigured or replaced".
    """

    def __init__(self, n: int, window: int | None = None) -> None:
        if n <= 0:
            raise ValueError("monitor needs at least one replica")
        self.n = n
        self.window = window
        self._appearances = [0] * n
        self._last_seen: list[int | None] = [None] * n
        self._qc_rounds: list[int] = []
        self._recent: list[frozenset] = []

    def observe_qc(self, qc) -> None:
        """Record one chain QC's voter set."""
        voters = qc.voters()
        self._qc_rounds.append(qc.round)
        self._recent.append(frozenset(voters))
        if self.window is not None and len(self._recent) > self.window:
            dropped = self._recent.pop(0)
            self._qc_rounds.pop(0)
            for voter in dropped:
                if 0 <= voter < self.n:
                    self._appearances[voter] -= 1
        for voter in voters:
            if 0 <= voter < self.n:
                self._appearances[voter] += 1
                last = self._last_seen[voter]
                if last is None or qc.round > last:
                    self._last_seen[voter] = qc.round

    def observe_chain(self, store, commit_events) -> int:
        """Convenience: observe the QC of every committed block.

        Returns the number of QCs observed.
        """
        observed = 0
        for event in commit_events:
            qc = store.qc_for(event.block_id)
            if qc is not None and qc.votes:
                self.observe_qc(qc)
                observed += 1
        return observed

    def qc_count(self) -> int:
        return len(self._recent)

    def report(self) -> list:
        """Per-replica :class:`ReplicaHealth`, sorted worst-first."""
        total = max(1, len(self._recent))
        entries = [
            ReplicaHealth(
                replica_id=replica_id,
                qc_appearances=self._appearances[replica_id],
                appearance_rate=self._appearances[replica_id] / total,
                last_seen_round=self._last_seen[replica_id],
            )
            for replica_id in range(self.n)
        ]
        entries.sort(key=lambda health: (health.qc_appearances,
                                         health.replica_id))
        return entries

    def appearance_vector(self) -> list:
        """Dense per-replica appearance rates, indexed by replica id.

        The campaign ``health`` metrics section publishes this vector
        (rounded) so reports expose every replica's QC participation,
        not just the worst offenders of :meth:`report`.
        """
        total = max(1, len(self._recent))
        return [count / total for count in self._appearances]

    def stragglers(self, rate_threshold: float = 0.5) -> list:
        """Replicas appearing in fewer than ``rate_threshold`` of QCs."""
        return [
            health
            for health in self.report()
            if health.appearance_rate < rate_threshold
        ]

    def outcasts(self) -> list:
        """Replicas that never appeared in any observed QC."""
        return [health for health in self.report() if health.is_outcast()]

    def max_achievable_strength(self, f: int) -> int:
        """Upper bound on strong-commit strength given current diversity.

        Only replicas that appear in chain QCs can endorse, so the
        strongest reachable commit is ``participants - f - 1`` (capped
        at ``2f``) — e.g. the paper's 1.7f ceiling when region C's 10
        replicas are outcast.
        """
        participants = sum(
            1 for count in self._appearances if count > 0
        )
        return max(-1, min(participants - f - 1, 2 * f))

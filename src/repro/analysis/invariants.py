"""Global safety/liveness invariant oracle over finished runs.

The fuzzer (:mod:`repro.fuzz`) throws randomized adversarial schedules
at the protocols; this module is the judge.  Given a finished cluster
it checks the full trace against the paper's guarantees:

* **Definition 1** — under ``t`` actual Byzantine faults, no two
  conflicting blocks are both ``x``-strong committed for any
  ``x >= t`` (Appendix C is exactly a violation of this under naive
  vote counting);
* **prefix consistency** — every honest replica's committed sequence
  is a single chain, and any two honest replicas agree on the block at
  every height they have both committed (BFT SMR safety, Section 2);
* **strength monotonicity** — per :class:`~repro.core.resilience.StrengthTimeline`,
  strength levels are dense, first-reach times never decrease with
  level, and no block exceeds the ``2f`` cap;
* **post-GST liveness** — once the network stabilizes (after GST and
  after every partition heals), commits resume within a bounded number
  of rounds, provided the fault mix leaves liveness intact.

Violations found under deliberately *naive* endorsement accounting
(``naive_accounting = True`` — the flawed scheme Appendix C refutes)
are marked ``expected``: the fuzzer reporting them is the machine
working, not the protocol failing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.resilience import max_strength
from repro.runtime.metrics import strong_commit_safety_violations

#: Names of every invariant this oracle knows how to check.
INVARIANTS = (
    "definition-1",
    "prefix-consistency",
    "strength-monotonicity",
    "double-vote",
    "post-gst-liveness",
)


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One broken invariant, with a human-readable diagnostic.

    ``expected`` marks counterexamples the run was *designed* to
    produce (naive accounting); they do not count as failures.
    """

    invariant: str
    detail: str
    expected: bool = False

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "expected": self.expected,
        }


def invariant_report(violations) -> dict:
    """A picklable, JSON-friendly summary of an oracle pass.

    ``ok`` means no *unexpected* violations; deliberate naive-accounting
    counterexamples are listed but do not clear the flag.
    """
    violations = list(violations)
    return {
        "ok": not any(not violation.expected for violation in violations),
        "violations": [violation.to_dict() for violation in violations],
    }


def honest_observers(cluster) -> list:
    """Observer replicas that are neither crashed nor behaviour-overridden."""
    return [
        replica
        for replica in cluster.observer_replicas()
        if not replica.crashed
        and replica.replica_id not in cluster.byzantine_ids
    ]


# ----------------------------------------------------------------------
# Definition 1
# ----------------------------------------------------------------------


def check_definition_1(replicas, actual_faults: int, expected: bool = False):
    """No conflicting ``x``-strong commits for ``x >= t`` (Definition 1)."""
    violations = []
    for level, block_a, block_b in strong_commit_safety_violations(
        replicas, actual_faults
    ):
        violations.append(
            InvariantViolation(
                invariant="definition-1",
                detail=(
                    f"conflicting blocks {block_a.short()} and "
                    f"{block_b.short()} are both >= {level}-strong committed "
                    f"under t = {actual_faults} actual faults"
                ),
                expected=expected,
            )
        )
    return violations


# ----------------------------------------------------------------------
# prefix consistency
# ----------------------------------------------------------------------


def check_prefix_consistency(replicas):
    """Committed chains are per-replica chains and cross-replica consistent.

    A replica that joined through a checkpoint snapshot legitimately
    jumps from its pre-partition history straight to the checkpoint
    height (the skipped prefix is certified by the 2f+1 checkpoint
    digest, not by local commit events); those recorded join heights
    are excused from the per-replica gap and parent-linkage checks.
    Cross-replica agreement at every height is still enforced in full.
    """
    violations = []
    by_height: dict[int, tuple] = {}
    for replica in replicas:
        events = sorted(
            replica.commit_tracker.commit_order, key=lambda event: event.height
        )
        snapshot_heights = getattr(
            replica.commit_tracker, "snapshot_heights", frozenset()
        )
        previous = None
        for event in events:
            if previous is not None and event.height not in snapshot_heights:
                if event.height != previous.height + 1:
                    violations.append(
                        InvariantViolation(
                            invariant="prefix-consistency",
                            detail=(
                                f"replica {replica.replica_id} committed "
                                f"height {event.height} after height "
                                f"{previous.height} (gap in the chain)"
                            ),
                        )
                    )
                block = replica.store.maybe_get(event.block_id)
                if block is not None and block.parent_id != previous.block_id:
                    violations.append(
                        InvariantViolation(
                            invariant="prefix-consistency",
                            detail=(
                                f"replica {replica.replica_id}: committed "
                                f"block {event.block_id.short()} at height "
                                f"{event.height} does not extend the "
                                f"committed block at height {previous.height}"
                            ),
                        )
                    )
            existing = by_height.get(event.height)
            if existing is None:
                by_height[event.height] = (event.block_id, replica.replica_id)
            elif existing[0] != event.block_id:
                violations.append(
                    InvariantViolation(
                        invariant="prefix-consistency",
                        detail=(
                            f"height {event.height}: replica "
                            f"{replica.replica_id} committed "
                            f"{event.block_id.short()} but replica "
                            f"{existing[1]} committed {existing[0].short()}"
                        ),
                    )
                )
            previous = event
    return violations


# ----------------------------------------------------------------------
# strength monotonicity
# ----------------------------------------------------------------------


def check_strength_monotonicity(replicas):
    """Per-timeline sanity: dense levels, monotone times, ``2f`` cap."""
    violations = []
    for replica in replicas:
        tracker = replica.commit_tracker
        cap = max_strength(tracker.f)
        for block_id, timeline in tracker.timelines():
            current = timeline.current
            if current > cap:
                violations.append(
                    InvariantViolation(
                        invariant="strength-monotonicity",
                        detail=(
                            f"replica {replica.replica_id}: block "
                            f"{block_id.short()} reports strength {current} "
                            f"beyond the 2f = {cap} cap"
                        ),
                    )
                )
            levels = sorted(timeline.first_reach)
            if current >= 0 and levels != list(range(0, current + 1)):
                violations.append(
                    InvariantViolation(
                        invariant="strength-monotonicity",
                        detail=(
                            f"replica {replica.replica_id}: block "
                            f"{block_id.short()} timeline levels {levels} "
                            f"are not dense up to current={current}"
                        ),
                    )
                )
            previous_time = None
            for level in levels:
                reached = timeline.first_reach[level]
                if previous_time is not None and reached < previous_time:
                    violations.append(
                        InvariantViolation(
                            invariant="strength-monotonicity",
                            detail=(
                                f"replica {replica.replica_id}: block "
                                f"{block_id.short()} reached level {level} "
                                f"at {reached:g}, earlier than level "
                                f"{level - 1} at {previous_time:g}"
                            ),
                        )
                    )
                previous_time = reached
    return violations


# ----------------------------------------------------------------------
# double votes
# ----------------------------------------------------------------------


def check_double_votes(cluster) -> list:
    """No replica's vote certifies two different blocks in one round.

    The oracle scans every certificate any honest observer recorded and
    builds a ``(round, voter) -> block`` map; a voter appearing in two
    same-round QCs for different blocks equivocated its vote.  Declared
    Byzantine replicas are excused — a Byzantine voter may sign
    anything, and the adversarial leaders deliberately manufacture the
    forks these QCs certify.  *Not* excused: crash-recovery replicas
    and the scripted amnesiacs (``wal_restore = False``).  A recovered
    replica re-voting a pre-crash round is exactly the durability bug
    the WAL exists to prevent, and the amnesia differential relies on
    this check firing when the WAL is taken away.
    """
    excused = {
        replica.replica_id
        for replica in cluster.replicas
        if replica.replica_id in cluster.byzantine_ids
        and getattr(replica, "wal_restore", True)
    }
    first_seen: dict[tuple, object] = {}
    reported: set = set()
    violations = []
    for replica in honest_observers(cluster):
        for qc in replica.store.all_qcs():
            for vote in qc.votes:
                if vote.voter in excused:
                    continue
                key = (qc.round, vote.voter)
                existing = first_seen.get(key)
                if existing is None:
                    first_seen[key] = qc.block_id
                elif existing != qc.block_id and key not in reported:
                    reported.add(key)
                    violations.append(
                        InvariantViolation(
                            invariant="double-vote",
                            detail=(
                                f"replica {vote.voter} voted for both "
                                f"{existing.short()} and "
                                f"{qc.block_id.short()} in round "
                                f"{qc.round} (durable voting record "
                                f"violated)"
                            ),
                        )
                    )
    return violations


# ----------------------------------------------------------------------
# post-GST liveness
# ----------------------------------------------------------------------


def recovery_time(spec) -> float:
    """When the run reaches its final stable configuration: after GST,
    after every partition heals, after the last scheduled crash, and
    after every crash-recovery replica has restarted."""
    recovery = max(spec.gst, 0.0)
    for window in spec.partitions:
        recovery = max(recovery, window.end)
    if spec.faults.crash:
        recovery = max(recovery, spec.faults.crash_at)
    if spec.faults.recover or spec.faults.amnesia:
        recovery = max(recovery, spec.faults.recover_at + spec.faults.downtime)
    return recovery


def _max_delay_s(spec) -> float:
    """The worst one-hop network delay the *resolved* topology can
    produce, mirroring ``ExperimentConfig._max_delay`` exactly.
    (Taking the max over every topology's knobs — the pre-fix
    behaviour — inflated uniform-topology pacing by delta/ab_delay,
    which made ``liveness_applicable`` count lazy voters as fast
    enough and misjudge genuinely-stalled schedules as violations.)"""
    candidates = [spec.intra_delay]
    if spec.topology == "uniform":
        candidates.append(spec.uniform_delay)
    else:
        candidates.extend([spec.delta, spec.ab_delay])
    return max(candidates)


def _per_round_s(spec) -> float:
    """A round's nominal pacing: Streamlet's fixed slot, or the
    DiemBFT-family base timeout."""
    if spec.protocol in ("streamlet", "sft-streamlet"):
        per_round = spec.streamlet_round_duration
        if per_round is None:
            per_round = 2.0 * (_max_delay_s(spec) + spec.jitter) + 0.005
        return per_round
    return spec.round_timeout


def liveness_bound_s(spec) -> float:
    """How long after recovery commits must resume (seconds).

    A generous budget: ~12 fault-free rounds plus twice the longest
    no-progress window (pacemaker timeouts back off during a stall, so
    the first post-recovery round can take that long to time out).
    """
    stall = max(spec.gst, 0.0)
    for window in spec.partitions:
        stall = max(stall, window.end - window.start)
    return 12.0 * _per_round_s(spec) + 2.0 * stall


def liveness_applicable(spec) -> bool:
    """Whether the fault mix leaves the liveness guarantee intact.

    Two preconditions:

    * a reachable quorum — at most ``f`` replicas permanently
      non-voting (crashed or silent; lazy voters whose delay rivals
      the round timeout count too);
    * a *committing leader window* in the round-robin rotation.  A
      DiemBFT-family commit needs three consecutive rounds with
      correct proposers **plus** a correct next leader to aggregate the
      final QC (votes go to the leader of ``r + 1``; a crashed
      aggregator silently loses them) — four consecutive correct slots.
      Streamlet certifies by broadcast, so three suffice.  The fuzzer
      found the degenerate case: ``n = 4`` with one crash has no such
      window, and the chain grows forever without a single commit.

    With the block-sync / catch-up subprotocol enabled
    (``spec.sync_enabled``) both preconditions relax, and the two
    fuzzer finds above become *live* schedules the oracle judges:

    * timeout-attached votes let every replica aggregate a QC whose
      collector crashed, so the DiemBFT window shrinks to three slots
      (closes rotation starvation);
    * a withholding leader whose reach still covers a quorum no longer
      poisons its slot — the round certifies, and the skipped replicas
      fetch the block through sync (closes withhold outcast).
    """
    f = spec.resolved_f()
    non_voting = spec.faults.non_voting()
    if not spec.sync_enabled:
        # Without block-sync a reborn replica can never rebuild its
        # volatile block store, and the WAL's certified floor keeps it
        # safe but mute — it is a permanent non-voter, exactly like a
        # crash that never came back.
        non_voting += spec.faults.recover + spec.faults.amnesia
    if spec.faults.lazy and spec.faults.lazy_delay >= _per_round_s(spec) / 2:
        non_voting += spec.faults.lazy
    if non_voting > f:
        return False
    streamlet = spec.protocol in ("streamlet", "sft-streamlet")
    if streamlet and spec.reorder_window:
        # Streamlet's lock-step slot budgets exactly one proposal hop
        # plus one vote hop at worst-case delay; a replica refuses any
        # proposal arriving outside its slot.  At-least-once reordering
        # adds up to ``reorder_window`` per hop on top of that, so a
        # slot too short for the inflated round trip breaks the
        # synchrony assumption liveness is conditioned on — the fuzzer
        # found schedules with no Byzantine faults at all that stall at
        # zero commits this way.  (DiemBFT-family timeouts back off and
        # retry, so bounded reordering only slows them down.)
        needed = 2.0 * (_max_delay_s(spec) + spec.jitter
                        + spec.reorder_window) + 0.005
        if _per_round_s(spec) < needed:
            return False
    if streamlet:
        # Linear vote collection routes Streamlet votes to the leader
        # of ``r + 1`` instead of broadcasting, so certifying the three
        # commit rounds additionally needs their three collectors
        # correct — four consecutive correct slots, like pre-sync
        # DiemBFT.  (Streamlet has no timeout-vote recovery, so
        # ``sync_enabled`` does not win the window back.)
        window = 4 if getattr(spec, "linear_votes", False) else 3
    else:
        # DiemBFT-family votes already go point-to-point to the next
        # leader, so ``linear_votes`` does not change its window.
        window = 3 if spec.sync_enabled else 4
    return _longest_correct_leader_run(spec) >= window


def _withhold_reaches_quorum(spec, leader_id: int) -> bool:
    """Whether a withholding leader's proposals can still certify.

    Mirrors the behaviour's reach arithmetic: replicas
    ``0 .. cutoff-1`` receive the proposal, plus the leader itself.
    """
    cutoff = int(spec.n * spec.faults.withhold_reach)
    voters = cutoff + (1 if leader_id >= cutoff else 0)
    return voters >= 2 * spec.resolved_f() + 1


def _longest_correct_leader_run(spec) -> int:
    """Longest cyclic run of replica ids whose led rounds still commit.

    Lazy, silent, marker-lying, and sync-withholding replicas propose
    and aggregate honestly (a silent leader's block is certified by the
    other ``2f + 1`` voters), so their slots stay usable.  Crashed
    leaders lose the votes they should aggregate, equivocators split
    their round's votes, and withholders may starve part of the
    network — those slots cannot anchor a committing 3-chain, except
    that with sync enabled a quorum-reaching withholder's slot still
    certifies (the skipped replicas catch up out of band).
    """
    assigned = spec.faults.assignments(spec.n)
    faulty = set()
    for name, ids in assigned.items():
        if name in ("crash", "equivocate", "recover", "amnesia"):
            # Crash-recovery replicas do come back, but their slots are
            # dead during the downtime and only trustworthy again after
            # catch-up — conservatively keep them out of the window.
            faulty.update(ids)
        elif name == "withhold":
            for replica_id in ids:
                if not (
                    spec.sync_enabled
                    and _withhold_reaches_quorum(spec, replica_id)
                ):
                    faulty.add(replica_id)
    if not faulty:
        return spec.n
    alive = [replica_id not in faulty for replica_id in range(spec.n)]
    best = run = 0
    for flag in alive + alive:  # doubled to account for cyclic wrap
        run = run + 1 if flag else 0
        best = max(best, run)
    return min(best, spec.n)


def check_post_gst_liveness(cluster, spec):
    """Commits resume within :func:`liveness_bound_s` of stabilization.

    This is a *system*-progress check: up to ``f`` honest replicas may
    individually stay starved (e.g. a withholding leader whose reach
    covers a quorum permanently outcasts the replicas it skips — a real
    schedule the fuzzer found; without a block-sync path they can never
    certify the withheld rounds).  Individual starvation is the health
    monitor's domain (Section 5 outcast detection); the liveness
    invariant fires when the cluster as a whole stalls.  Skipped (empty
    result) when the run is too short to judge or the fault mix breaks
    liveness outright.
    """
    if spec is None or not liveness_applicable(spec):
        return []
    recovery = recovery_time(spec)
    bound = liveness_bound_s(spec)
    if spec.duration - recovery < bound:
        return []  # not enough post-recovery budget to judge
    observers = honest_observers(cluster)
    if not observers:
        return []
    stalled = []
    for replica in observers:
        if not any(
            recovery < event.committed_at <= recovery + bound
            for event in replica.commit_tracker.commit_order
        ):
            stalled.append(replica.replica_id)
    required = max(1, len(observers) - spec.resolved_f())
    if len(observers) - len(stalled) >= required:
        return []
    return [
        InvariantViolation(
            invariant="post-gst-liveness",
            detail=(
                f"only {len(observers) - len(stalled)} of {len(observers)} "
                f"honest replicas committed within {bound:g}s of "
                f"stabilization at t={recovery:g}s (stalled: {stalled}; "
                f"need {required})"
            ),
        )
    ]


# ----------------------------------------------------------------------
# the full oracle
# ----------------------------------------------------------------------


def check_cluster_invariants(cluster, spec=None) -> list:
    """Run every invariant over a finished cluster.

    ``spec`` (a :class:`~repro.experiments.spec.ScenarioSpec`) supplies
    the fault/schedule context: the actual fault count ``t`` for
    Definition 1, the naive-accounting flag, and the liveness window.
    Without it, ``t`` falls back to the cluster's override/crash count
    and the liveness check is skipped.
    """
    replicas = honest_observers(cluster)
    if spec is not None:
        actual_faults = spec.faults.byzantine_total()
        naive = bool(spec.naive_accounting)
    else:
        crashed = sum(1 for replica in cluster.replicas if replica.crashed)
        actual_faults = len(
            cluster.byzantine_ids
            | {r.replica_id for r in cluster.replicas if r.crashed}
        ) if crashed else len(cluster.byzantine_ids)
        naive = bool(getattr(cluster.config, "naive_accounting", False))
    violations = []
    violations.extend(check_definition_1(replicas, actual_faults, expected=naive))
    violations.extend(check_prefix_consistency(replicas))
    violations.extend(check_strength_monotonicity(replicas))
    violations.extend(check_double_votes(cluster))
    violations.extend(check_post_gst_liveness(cluster, spec))
    return violations


# ----------------------------------------------------------------------
# scripted (Appendix C) runs
# ----------------------------------------------------------------------


def check_appendix_c(result, naive: bool) -> list:
    """Definition 1 over an Appendix C construction (Figure 9).

    ``result`` is a :class:`~repro.adversary.scripted.ScenarioResult`.
    With ``t = f + 1`` actual faults, the naive scheme double-counts
    chain-switching honest voters and certifies two conflicting
    ``(f+1)``-strong commits — flagged here as an *expected*
    Definition-1 violation.  SFT's markers must keep the same
    construction safe.
    """
    t = result.f + 1
    if naive:
        if not result.naive_violates_definition_1():
            return []
        return [
            InvariantViolation(
                invariant="definition-1",
                detail=(
                    f"naive accounting: conflicting blocks at rounds "
                    f"{result.main_block_round} and {result.fork_block_round} "
                    f"reach strengths {result.naive_main_strength} and "
                    f"{result.naive_fork_strength}, both >= t = {t} "
                    f"(Appendix C counterexample)"
                ),
                expected=True,
            )
        ]
    if result.sft_is_safe():
        return []
    return [
        InvariantViolation(
            invariant="definition-1",
            detail=(
                f"SFT accounting: conflicting blocks at rounds "
                f"{result.main_block_round} and {result.fork_block_round} "
                f"reach strengths {result.sft_main_strength} and "
                f"{result.sft_fork_strength}, both >= t = {t}"
            ),
        )
    ]

"""Chain-level statistics: forks, round utilization, QC diversity.

These are the quantities the paper's Section 4 narrative reasons
about — how often rounds are wasted, how diverse consecutive
strong-QCs are, and how deep forks get under Byzantine leaders.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class ChainStats:
    """Summary of one replica's view of the chain."""

    blocks_total: int
    blocks_committed: int
    max_round: int
    committed_rounds: int
    skipped_rounds: int
    fork_blocks: int
    max_fork_depth: int
    mean_qc_size: float
    qc_diversity: float

    def round_utilization(self) -> float:
        """Fraction of rounds that produced a committed block."""
        if self.max_round <= 0:
            return 0.0
        return self.committed_rounds / self.max_round


def collect_chain_stats(replica) -> ChainStats:
    """Compute :class:`ChainStats` from a replica's store and commits."""
    store = replica.store
    tracker = replica.commit_tracker

    committed_ids = set(tracker.committed)
    committed_rounds = {
        event.round for event in tracker.commit_order if event.round > 0
    }
    max_round = max(committed_rounds, default=0)

    # Fork accounting: blocks that are not ancestors of the latest
    # committed block.
    fork_blocks = 0
    max_fork_depth = 0
    if tracker.commit_order:
        tip_id = tracker.commit_order[-1].block_id
        for block in store.all_blocks():
            block_id = block.id()
            if block_id in committed_ids:
                continue
            if store.is_ancestor(block_id, tip_id) or store.is_ancestor(
                tip_id, block_id
            ):
                continue  # main branch: committed prefix or fresh tip
            fork_blocks += 1
            # Depth of this fork branch above the common ancestor.
            ancestor = store.common_ancestor(block_id, tip_id)
            max_fork_depth = max(max_fork_depth, block.height - ancestor.height)

    # QC sizes and diversity over the committed chain.
    sizes = []
    voter_sets = []
    for event in tracker.commit_order:
        qc = store.qc_for(event.block_id)
        if qc is not None and qc.votes:
            sizes.append(len(qc.voters()))
            voter_sets.append(qc.voters())
    mean_qc_size = sum(sizes) / len(sizes) if sizes else 0.0
    diversity = _mean_pairwise_difference(voter_sets)

    return ChainStats(
        blocks_total=len(store) - 1,  # exclude genesis
        blocks_committed=len(
            [event for event in tracker.commit_order if event.round > 0]
        ),
        max_round=max_round,
        committed_rounds=len(committed_rounds),
        skipped_rounds=max_round - len(committed_rounds),
        fork_blocks=fork_blocks,
        max_fork_depth=max_fork_depth,
        mean_qc_size=mean_qc_size,
        qc_diversity=diversity,
    )


def _mean_pairwise_difference(voter_sets) -> float:
    """Mean symmetric-difference fraction between consecutive QCs.

    0 means every QC has identical membership (no diversity — strong
    commits crawl); 1 means consecutive QCs are disjoint.
    """
    if len(voter_sets) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for current, following in zip(voter_sets, voter_sets[1:]):
        union = len(current | following)
        if union == 0:
            continue
        total += len(current ^ following) / union
        pairs += 1
    return total / pairs if pairs else 0.0

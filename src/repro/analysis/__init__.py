"""Result analysis and paper-style reporting."""

from repro.analysis.ascii_chart import line_chart
from repro.analysis.chain_stats import ChainStats, collect_chain_stats
from repro.analysis.health import QCDiversityMonitor, ReplicaHealth
from repro.analysis.invariants import (
    InvariantViolation,
    check_appendix_c,
    check_cluster_invariants,
    invariant_report,
)
from repro.analysis.report import (
    format_campaign_table,
    format_fig7_table,
    format_fig8_table,
    format_series_csv,
    format_simple_table,
)

__all__ = [
    "line_chart",
    "format_campaign_table",
    "format_fig7_table",
    "format_fig8_table",
    "format_series_csv",
    "format_simple_table",
    "ChainStats",
    "collect_chain_stats",
    "QCDiversityMonitor",
    "ReplicaHealth",
    "InvariantViolation",
    "check_appendix_c",
    "check_cluster_invariants",
    "invariant_report",
]

"""Minimal ASCII line charts for terminal-friendly benchmark output.

The benchmarks print the same series the paper plots; a rough chart
makes the *shape* (linear growth, jumps at 1.1f and 2f, curve merges)
visible directly in CI logs without matplotlib.
"""

from __future__ import annotations


def line_chart(
    series: dict,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a multi-series ASCII chart.

    Points with ``None`` y-values are skipped.  Each series gets a
    distinct glyph; overlapping points show the later series' glyph.
    """
    glyphs = "*o+x#@%&"
    cleaned = {}
    for name, points in series.items():
        cleaned[name] = [(x, y) for x, y in points if y is not None]
    all_points = [point for points in cleaned.values() for point in points]
    if not all_points:
        return "(no data)"

    xs = [x for x, _y in all_points]
    ys = [y for _x, y in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(cleaned.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in points:
            col = int((x - x_min) / x_span * (width - 1))
            row = int((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    lines.append(f"{y_label} [{y_min:.3g} .. {y_max:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_min:.3g} .. {x_max:.3g}]")
    legend = "   ".join(
        f"{glyphs[index % len(glyphs)]} {name}"
        for index, name in enumerate(cleaned)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)

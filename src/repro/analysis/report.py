"""Paper-style tables for benchmark output.

Each formatter returns a string the benchmarks print verbatim; the
rows/series mirror what the paper's figures report so EXPERIMENTS.md
can place paper and measured values side by side.
"""

from __future__ import annotations


def format_simple_table(headers, rows, title: str | None = None) -> str:
    """Fixed-width table: ``headers`` strings, ``rows`` of cells."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_fig7_table(series_by_delta: dict, title: str) -> str:
    """Figure 7 format: rows = x/f ratios, one latency column per δ.

    ``series_by_delta`` maps a label (e.g. ``"δ=100ms"``) to a list of
    :class:`~repro.runtime.metrics.LatencyReport`.
    """
    labels = list(series_by_delta)
    ratios = [report.ratio for report in series_by_delta[labels[0]]]
    headers = ["x-strong (f)"] + [f"latency(s) {label}" for label in labels]
    rows = []
    for index, ratio in enumerate(ratios):
        row = [f"{ratio:.1f}"]
        for label in labels:
            report = series_by_delta[label][index]
            row.append(report.mean_latency)
        rows.append(row)
    return format_simple_table(headers, rows, title=title)


def format_fig8_table(points_by_level: dict, title: str) -> str:
    """Figure 8 format: per strong level, (regular, strong) latency pairs.

    ``points_by_level`` maps a series label (e.g. ``"2.0f-strong"``) to
    a list of ``(regular_latency, strong_latency)`` pairs, one per
    extra-wait setting.
    """
    headers = ["series"] + [
        f"point{i}(reg→strong)" for i in range(
            max(len(points) for points in points_by_level.values())
        )
    ]
    rows = []
    for label, points in points_by_level.items():
        row = [label]
        for regular, strong in points:
            reg = f"{regular:.2f}" if regular is not None else "—"
            stg = f"{strong:.2f}" if strong is not None else "—"
            row.append(f"{reg}→{stg}")
        rows.append(row)
    return format_simple_table(headers, rows, title=title)


def format_campaign_table(report: dict, title: str | None = None) -> str:
    """One row per campaign job: commits, latency, messages, wall time.

    ``report`` is the JSON-shaped dict produced by
    :class:`~repro.experiments.runner.CampaignRunner`.
    """
    headers = [
        "job", "commits", "reg.lat(s)", "msgs/commit", "safe", "wall(s)",
    ]
    rows = []
    for entry in report.get("jobs", ()):
        metrics = entry["metrics"]
        rows.append([
            entry["job_id"],
            metrics["commits"],
            metrics["regular_latency_s"],
            metrics["messages"]["per_commit"],
            "yes" if metrics["safety_ok"] else "NO",
            entry["wall_clock_s"],
        ])
    if title is None:
        title = (
            f"campaign {report.get('campaign', '?')} — "
            f"{report.get('job_count', len(rows))} jobs, "
            f"workers={report.get('workers', 1)}, "
            f"wall {report.get('wall_clock_s', 0.0):.1f}s"
        )
    return format_simple_table(headers, rows, title=title)


def format_series_csv(series, label: str = "series") -> str:
    """CSV dump of a LatencyReport list for offline plotting."""
    lines = [f"# {label}", "ratio,level,mean_latency_s,samples,eligible"]
    for report in series:
        latency = "" if report.mean_latency is None else f"{report.mean_latency:.6f}"
        lines.append(
            f"{report.ratio:.1f},{report.level},{latency},"
            f"{report.samples},{report.eligible}"
        )
    return "\n".join(lines)

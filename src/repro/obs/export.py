"""Trace exporters: Chrome trace-event JSON (Perfetto) and summaries.

:func:`chrome_trace` converts a :class:`~repro.obs.trace.TraceLog`
into the Chrome trace-event JSON object format — load the file at
https://ui.perfetto.dev (or chrome://tracing) to get one named track
per replica with every lifecycle span as an instant event, plus
complete ("X") events for the per-block proposal→QC and QC→commit
phases on the reference replica's track.  Timestamps are microseconds
of simulated time.

:func:`validate_chrome_trace` checks the structural schema (used by
tests and the CI trace-smoke step), and :func:`summarize_trace`
renders the human-readable ``repro trace summarize`` report.
"""

from __future__ import annotations

from repro.obs.phases import breakdown_from_trace
from repro.obs.trace import TraceLog

_PID = 1  # one process: the simulated cluster


def _metadata_events(replica_ids) -> list:
    events = []
    for replica_id in replica_ids:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": replica_id,
            "args": {"name": f"replica {replica_id}"},
        })
        events.append({
            "name": "thread_sort_index",
            "ph": "M",
            "pid": _PID,
            "tid": replica_id,
            "args": {"sort_index": replica_id},
        })
    return events


def _instant_event(event) -> dict:
    name = event.kind if event.round < 0 else f"{event.kind} r{event.round}"
    args: dict = {}
    if event.round >= 0:
        args["round"] = event.round
    if event.height >= 0:
        args["height"] = event.height
    if event.block:
        args["block"] = event.block
    if event.detail:
        args["detail"] = event.detail
    if event.value:
        args["value"] = round(event.value, 9)
    if event.count:
        args["count"] = event.count
    return {
        "name": name,
        "cat": event.kind,
        "ph": "i",
        "s": "t",
        "ts": round(event.time * 1e6, 3),
        "pid": _PID,
        "tid": event.replica_id,
        "args": args,
    }


def _lifecycle_spans(log: TraceLog, replica_id: int) -> list:
    """Per-block phase spans ("X" events) on one replica's track."""
    propose_times: dict = {}
    for event in log.events(kind="propose"):
        propose_times.setdefault(event.block, event.time)
    qc_times: dict = {}
    for event in log.events(kind="qc", replica_id=replica_id):
        qc_times.setdefault(event.block, event.time)
    spans = []
    seen: set = set()
    for event in log.events(kind="commit", replica_id=replica_id):
        if event.block in seen or event.height == 0:
            continue
        seen.add(event.block)
        qc_time = qc_times.get(event.block)
        proposed = propose_times.get(event.block)
        if proposed is not None and qc_time is not None and qc_time > proposed:
            spans.append({
                "name": f"propose→qc {event.block}",
                "cat": "lifecycle",
                "ph": "X",
                "ts": round(proposed * 1e6, 3),
                "dur": round((qc_time - proposed) * 1e6, 3),
                "pid": _PID,
                "tid": replica_id,
                "args": {"block": event.block, "round": event.round},
            })
        if qc_time is not None and event.time > qc_time:
            spans.append({
                "name": f"qc→commit {event.block}",
                "cat": "lifecycle",
                "ph": "X",
                "ts": round(qc_time * 1e6, 3),
                "dur": round((event.time - qc_time) * 1e6, 3),
                "pid": _PID,
                "tid": replica_id,
                "args": {"block": event.block, "round": event.round},
            })
    return spans


def chrome_trace(log: TraceLog, reference_replica: int = 0) -> dict:
    """Render the span log as a Chrome trace-event JSON object."""
    replica_ids = sorted({event.replica_id for event in log.events()})
    events = _metadata_events(replica_ids)
    for event in log.events():
        events.append(_instant_event(event))
    events.extend(_lifecycle_spans(log, reference_replica))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "reference_replica": reference_replica,
            "replicas": len(replica_ids),
            "recorded_events": len(log),
            "dropped_events": log.dropped,
            "latency_breakdown": breakdown_from_trace(log, reference_replica),
        },
    }


def validate_chrome_trace(data) -> list:
    """Structural schema check; returns a list of problems (empty = ok)."""
    problems = []
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("M", "i", "X"):
            problems.append(f"{where}: unexpected ph {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant scope {event.get('s')!r}")
    return problems


def summarize_trace(log: TraceLog, reference_replica: int = 0) -> str:
    """Human-readable per-kind/per-replica summary with the breakdown."""
    lines = [
        f"events recorded: {len(log)} (dropped: {log.dropped}, "
        f"capacity: {log.capacity})"
    ]
    kinds = log.kinds()
    if kinds:
        lines.append("by kind:")
        for kind, count in kinds.items():
            lines.append(f"  {kind:<18} {count}")
    replica_ids = sorted({event.replica_id for event in log.events()})
    if replica_ids:
        lines.append(f"replicas traced: {len(replica_ids)} "
                     f"({replica_ids[0]}..{replica_ids[-1]})")
    timeline = log.round_timeline(reference_replica)
    if timeline:
        lines.append(
            f"replica {reference_replica} rounds: {timeline[0][1]} → "
            f"{timeline[-1][1]} over t=[{timeline[0][0]:.3f}, "
            f"{timeline[-1][0]:.3f}]"
        )
    breakdown = breakdown_from_trace(log, reference_replica)
    lines.append(f"latency breakdown (replica {reference_replica}):")
    for key in ("mempool_wait_s", "proposal_to_qc_s", "qc_to_endorse_s",
                "endorse_to_commit_s", "qc_to_commit_s"):
        value = breakdown[key]
        rendered = "n/a" if value is None else f"{value:.6f}s"
        lines.append(f"  {key:<22} {rendered}")
    return "\n".join(lines)

"""Per-phase commit-latency decomposition.

A committed block's end-to-end latency splits into causally ordered
phases:

* **mempool wait** — transaction submission → inclusion in a proposal
  (only measurable with a real-transaction workload attached);
* **proposal → QC** — block creation → this replica learning its QC;
* **QC → endorse** — QC → the block's first strong-commit level
  (SFT observers only);
* **endorse → commit** — first strength level → regular commit;
* **QC → commit** — the regular 3-chain detection delay (always
  defined, endorsements or not).

Two independent computations produce the same numbers: from cluster
state (:func:`breakdown_from_cluster` — cheap, runs in every campaign
job and bench case, tracing on or off) and from the recorded span
chain (:func:`breakdown_from_trace` — what ``repro trace`` reports).
Their agreement on honest runs is pinned by tests; disagreement means
an instrumentation seam drifted from the protocol.
"""

from __future__ import annotations


def _phase_entry(total: float, samples: int):
    if samples == 0:
        return None
    return round(total / samples, 6)


def _breakdown(mempool_sum, mempool_count, phase_sums, phase_counts) -> dict:
    out = {
        "mempool_wait_s": _phase_entry(mempool_sum, mempool_count),
        "mempool_wait_txs": mempool_count,
    }
    for phase in ("proposal_to_qc", "qc_to_endorse", "endorse_to_commit",
                  "qc_to_commit"):
        out[f"{phase}_s"] = _phase_entry(phase_sums[phase], phase_counts[phase])
        out[f"{phase}_samples"] = phase_counts[phase]
    return out


def _accumulate(phase_sums, phase_counts, phase, delta) -> None:
    phase_sums[phase] += delta
    phase_counts[phase] += 1


def _empty_sums():
    phases = ("proposal_to_qc", "qc_to_endorse", "endorse_to_commit",
              "qc_to_commit")
    return {p: 0.0 for p in phases}, {p: 0 for p in phases}


def breakdown_from_cluster(reference) -> dict:
    """Latency decomposition from one reference replica's final state.

    Snapshot-installed commits are skipped: they jumped straight to a
    checkpoint without a local QC-formation history, so no phase is
    defined for them (and the trace-side computation sees no events).
    """
    tracker = reference.commit_tracker
    store = reference.store
    phase_sums, phase_counts = _empty_sums()
    mempool_sum = 0.0
    mempool_count = 0
    for event in tracker.commit_order:
        if event.height == 0:
            continue  # genesis: committed but never proposed
        if event.height in tracker.snapshot_heights:
            continue
        qc_time = tracker.qc_times.get(event.block_id)
        timeline = tracker.timeline_of(event.block_id)
        endorse_time = (
            min(timeline.first_reach.values())
            if timeline is not None and timeline.first_reach
            else None
        )
        if qc_time is not None:
            _accumulate(phase_sums, phase_counts, "proposal_to_qc",
                        qc_time - event.created_at)
            _accumulate(phase_sums, phase_counts, "qc_to_commit",
                        event.committed_at - qc_time)
            if endorse_time is not None:
                _accumulate(phase_sums, phase_counts, "qc_to_endorse",
                            endorse_time - qc_time)
        if endorse_time is not None:
            _accumulate(phase_sums, phase_counts, "endorse_to_commit",
                        event.committed_at - endorse_time)
        block = store.maybe_get(event.block_id)
        if block is not None:
            for transaction in block.payload.transactions:
                mempool_sum += event.created_at - transaction.submitted_at
                mempool_count += 1
    return _breakdown(mempool_sum, mempool_count, phase_sums, phase_counts)


def breakdown_from_trace(log, replica_id: int) -> dict:
    """The same decomposition recovered from the recorded span chain.

    Uses the span events of one replica (``qc``/``endorse``/``commit``)
    plus the global ``propose`` events (creation time and mempool-wait
    payload live at the proposer).  Matches
    :func:`breakdown_from_cluster` for the same replica on runs where
    the span log did not wrap — except the ``mempool_wait_*`` keys
    under checkpoint log truncation, where the cluster-side computation
    loses the payloads of truncated blocks while the recorded
    ``propose`` spans keep them (the trace numbers are the complete
    ones).
    """
    propose_info: dict = {}
    for event in log.events(kind="propose"):
        propose_info.setdefault(event.block, event)
    qc_times: dict = {}
    for event in log.events(kind="qc", replica_id=replica_id):
        qc_times.setdefault(event.block, event.time)
    endorse_times: dict = {}
    for event in log.events(kind="endorse", replica_id=replica_id):
        endorse_times.setdefault(event.block, event.time)

    phase_sums, phase_counts = _empty_sums()
    mempool_sum = 0.0
    mempool_count = 0
    seen: set = set()
    for event in log.events(kind="commit", replica_id=replica_id):
        if event.height == 0:
            continue  # genesis: committed but never proposed
        if event.block in seen:
            continue
        seen.add(event.block)
        proposed = propose_info.get(event.block)
        qc_time = qc_times.get(event.block)
        endorse_time = endorse_times.get(event.block)
        if qc_time is not None and proposed is not None:
            _accumulate(phase_sums, phase_counts, "proposal_to_qc",
                        qc_time - proposed.time)
        if qc_time is not None:
            _accumulate(phase_sums, phase_counts, "qc_to_commit",
                        event.time - qc_time)
            if endorse_time is not None:
                _accumulate(phase_sums, phase_counts, "qc_to_endorse",
                            endorse_time - qc_time)
        if endorse_time is not None:
            _accumulate(phase_sums, phase_counts, "endorse_to_commit",
                        event.time - endorse_time)
        if proposed is not None:
            mempool_sum += proposed.value
            mempool_count += proposed.count
    return _breakdown(mempool_sum, mempool_count, phase_sums, phase_counts)

"""Flight recorder: always-on per-replica event rings, dumped on failure.

Every replica keeps the last ``capacity`` trace events in a cheap ring
buffer regardless of ``trace_level`` (disable with the
``flight_recorder`` knob).  The ring never influences behaviour or
metrics, so the default-on recorder preserves byte-identical campaign
and bench baselines.  When the invariant oracle reports a violation —
in a campaign job, a fuzz case, or a CLI replay — the rings of every
replica are serialized into a JSON artifact, so a shrunk corpus entry
ships with an execution explanation: the final actions of each replica
leading into the violation.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.obs.trace import TraceEvent, event_to_dict


class FlightRecorder:
    """A bounded ring of the most recent trace events at one replica.

    Entries are either :class:`TraceEvent` instances (when the span log
    shares the constructed event) or raw field tuples (the flight-only
    fast path in :meth:`Tracer.emit <repro.obs.trace.Tracer.emit>`);
    :meth:`events` materializes the tuples on the way out.
    """

    __slots__ = ("capacity", "dropped", "_ring")

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self.dropped = 0
        self._ring: deque = deque(maxlen=capacity)

    def append(self, entry) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(entry)

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> list:
        return [
            entry if isinstance(entry, TraceEvent) else TraceEvent(*entry)
            for entry in self._ring
        ]


def collect_flight_recording(cluster, violations=()) -> dict | None:
    """Serialize every replica's flight ring into one JSON-able dict.

    Returns None when no replica carries a recorder (``flight_recorder``
    off everywhere), so callers can skip attaching an empty artifact.
    """
    replicas = {}
    for replica in cluster.replicas:
        tracer = getattr(replica, "tracer", None)
        flight = getattr(tracer, "flight", None)
        if flight is None:
            continue
        replicas[str(replica.replica_id)] = {
            "crashed": replica.crashed,
            "current_round": getattr(replica, "current_round", -1),
            "commits": len(replica.commit_tracker.commit_order),
            "dropped": flight.dropped,
            "events": [event_to_dict(event) for event in flight.events()],
        }
    if not replicas:
        return None
    return {
        "sim_time": round(cluster.simulator.now, 9),
        "violations": [
            violation.to_dict() if hasattr(violation, "to_dict") else violation
            for violation in violations
        ],
        "replicas": replicas,
    }


def write_flight_dump(recording: dict, path) -> Path:
    """Write one flight recording as a deterministic JSON artifact."""
    path = Path(path)
    path.write_text(
        json.dumps(recording, indent=2, sort_keys=True) + "\n"
    )
    return path

"""Structured causal lifecycle tracing.

Debugging a BFT protocol means asking "what did replica 7 see at
t = 3.2, and why did this commit take four rounds?".  This module
answers it with structured events instead of free-form strings: every
block moves through the span chain ``proposed → votes_collected →
qc_formed → endorsed(level) → committed`` and each step lands in the
shared :class:`TraceLog` as a :class:`TraceEvent` carrying the round,
height, block id, replica id, and simulated time.

Two sinks consume events:

* the cluster-wide span log (``trace_level`` = ``"spans"`` or
  ``"full"``) — bounded, queryable, exportable to Chrome trace-event
  JSON (:mod:`repro.obs.export`);
* the per-replica flight-recorder ring (:mod:`repro.obs.flight`) —
  always on unless ``flight_recorder`` is disabled, dumped when the
  invariant oracle reports a violation.

The per-replica :class:`Tracer` fans each event out to whichever sinks
exist; replicas guard every emit site with ``if self.tracer is not
None`` so fully-disabled runs pay a single attribute load.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

#: Valid values of the ``trace_level`` knob.  ``"off"`` keeps runs
#: byte-identical to pre-observability builds; ``"spans"`` records the
#: lifecycle span chain; ``"full"`` adds a per-message deliver event.
TRACE_LEVELS = ("off", "spans", "full")


@dataclass(slots=True)
class TraceEvent:
    """One structured observation at one replica.

    ``round``/``height`` are -1 and ``block`` empty when the event has
    no block context (e.g. a round entry or a sync request).  ``value``
    and ``count`` carry kind-specific payloads: endorse level for
    ``endorse`` events, summed mempool wait + transaction count for
    ``propose`` events, vote/block counts elsewhere.
    """

    time: float
    replica_id: int
    kind: str
    round: int = -1
    height: int = -1
    block: str = ""
    detail: str = ""
    value: float = 0.0
    count: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"r{self.round}" if self.round >= 0 else ""
        block = f" {self.block}" if self.block else ""
        return (
            f"[{self.time:9.4f}] replica {self.replica_id:<3} "
            f"{self.kind:<16} {where}{block} {self.detail}"
        )


def event_to_dict(event: TraceEvent) -> dict:
    """A compact JSON-friendly rendering (defaults omitted)."""
    out: dict = {
        "t": round(event.time, 9),
        "replica": event.replica_id,
        "kind": event.kind,
    }
    if event.round >= 0:
        out["round"] = event.round
    if event.height >= 0:
        out["height"] = event.height
    if event.block:
        out["block"] = event.block
    if event.detail:
        out["detail"] = event.detail
    if event.value:
        out["value"] = round(event.value, 9)
    if event.count:
        out["count"] = event.count
    return out


class TraceLog:
    """Bounded in-memory event log shared by all replicas of a cluster.

    Memory stays O(capacity): once full, every append evicts the oldest
    event and increments ``dropped`` — the count is exact across any
    number of wraps.  A per-kind index makes ``events(kind=...)``
    queries O(matching events) instead of a full scan.
    """

    __slots__ = ("capacity", "dropped", "_events", "_by_kind")

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.dropped = 0
        self._events: deque = deque()
        self._by_kind: dict[str, deque] = {}

    def append(self, event: TraceEvent) -> None:
        events = self._events
        events.append(event)
        by_kind = self._by_kind
        index = by_kind.get(event.kind)
        if index is None:
            index = by_kind[event.kind] = deque()
        index.append(event)
        if len(events) > self.capacity:
            evicted = events.popleft()
            self._by_kind[evicted.kind].popleft()
            self.dropped += 1

    def record(self, time: float, replica_id: int, kind: str, **fields) -> None:
        self.append(TraceEvent(time=time, replica_id=replica_id, kind=kind,
                               **fields))

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: str | None = None, replica_id: int | None = None,
               since: float = 0.0) -> list:
        """Filtered events in chronological order.

        A ``kind`` filter walks only that kind's index; events of one
        kind are appended in time order, so chronology is preserved.
        """
        source = self._events if kind is None else self._by_kind.get(kind, ())
        return [
            event
            for event in source
            if (replica_id is None or event.replica_id == replica_id)
            and event.time >= since
        ]

    def kinds(self) -> dict:
        """Histogram of (retained) event kinds."""
        return {
            kind: len(index)
            for kind, index in sorted(self._by_kind.items())
            if index
        }

    def round_timeline(self, replica_id: int) -> list:
        """(time, round) entries reconstructed from round-entry events."""
        return [
            (event.time, event.round)
            for event in self.events(kind="round", replica_id=replica_id)
        ]


class Tracer:
    """Per-replica emit facade fanning out to the active sinks.

    ``span_log`` is the cluster-wide :class:`TraceLog` (None when
    ``trace_level`` is off); ``flight`` is the replica's flight
    recorder ring (None when disabled).  A replica's ``tracer``
    attribute is None iff both sinks are absent — that one check is
    the entire disabled-path cost.
    """

    __slots__ = ("replica_id", "span_log", "flight", "level", "full")

    def __init__(self, replica_id: int, span_log: TraceLog | None = None,
                 flight=None, level: str = "off") -> None:
        self.replica_id = replica_id
        self.span_log = span_log
        self.flight = flight
        self.level = level
        self.full = level == "full"

    def emit(self, time: float, kind: str, *, round: int = -1,
             height: int = -1, block: str = "", detail: str = "",
             value: float = 0.0, count: int = 0) -> None:
        span_log = self.span_log
        if span_log is None:
            # Flight-only (the default configuration): the ring stores
            # the raw field tuple and materializes TraceEvents lazily
            # at dump time, keeping the always-on path cheap.
            self.flight.append(
                (time, self.replica_id, kind, round, height, block,
                 detail, value, count)
            )
            return
        event = TraceEvent(
            time=time, replica_id=self.replica_id, kind=kind, round=round,
            height=height, block=block, detail=detail, value=value,
            count=count,
        )
        span_log.append(event)
        if self.flight is not None:
            self.flight.append(event)

"""Unified observability layer: metrics, lifecycle tracing, flight
recorder, and exporters.

See :mod:`repro.obs.metrics` (per-replica instrument registry),
:mod:`repro.obs.trace` (structured span chain + bounded TraceLog),
:mod:`repro.obs.flight` (always-on crash rings dumped on invariant
violations), :mod:`repro.obs.phases` (per-phase latency decomposition),
and :mod:`repro.obs.export` (Perfetto / Chrome trace-event JSON).
"""

from repro.obs.export import chrome_trace, summarize_trace, validate_chrome_trace
from repro.obs.flight import (
    FlightRecorder,
    collect_flight_recording,
    write_flight_dump,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.phases import breakdown_from_cluster, breakdown_from_trace
from repro.obs.trace import TRACE_LEVELS, TraceEvent, TraceLog, Tracer

__all__ = [
    "TRACE_LEVELS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "TraceLog",
    "Tracer",
    "breakdown_from_cluster",
    "breakdown_from_trace",
    "chrome_trace",
    "collect_flight_recording",
    "summarize_trace",
    "validate_chrome_trace",
    "write_flight_dump",
]

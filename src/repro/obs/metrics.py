"""Lightweight per-replica metrics registry.

Every replica owns a :class:`MetricsRegistry`; protocol code,
:class:`~repro.sync.manager.SyncManager`, and
:class:`~repro.sync.checkpoint.CheckpointManager` register named
instruments into it instead of keeping ad-hoc integer attributes.
Three instrument kinds cover the repo's needs:

* :class:`Counter` — monotonically increasing event count (``inc``);
* :class:`Gauge` — a point-in-time level (``set``);
* :class:`Histogram` — fixed logarithmic buckets plus count/sum/min/max
  (``observe``), cheap enough for hot paths.

Snapshots are deterministic: instruments are emitted sorted by name
with plain-float values, so two runs of the same seed produce
byte-identical snapshot JSON.
"""

from __future__ import annotations

import math


class Counter:
    """A monotonically increasing count.

    ``value`` is a plain attribute so legacy ``+=`` call sites (via the
    owning object's property shim) stay a single integer add.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (e.g. live blocks, mempool depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed logarithmic buckets with count/sum/min/max.

    Bucket ``i`` counts observations in ``(base**(i-1) * scale,
    base**i * scale]``; observations at or below ``scale`` land in
    bucket 0.  The defaults (scale 1 ms, base 2, 24 buckets) span
    1 ms .. ~2.3 hours of simulated latency.
    """

    __slots__ = ("name", "scale", "base", "buckets", "count", "sum",
                 "min", "max", "_log_base")

    def __init__(
        self,
        name: str,
        scale: float = 0.001,
        base: float = 2.0,
        bucket_count: int = 24,
    ) -> None:
        self.name = name
        self.scale = scale
        self.base = base
        self.buckets = [0] * bucket_count
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._log_base = math.log(base)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= self.scale:
            index = 0
        else:
            index = min(
                len(self.buckets) - 1,
                1 + int(math.log(value / self.scale) / self._log_base),
            )
        self.buckets[index] += 1

    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Re-requesting a name returns the existing instrument (so, e.g., a
    replica and its sync manager can share one counter); requesting a
    name registered as a different kind raises.
    """

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get_or_create(self, name: str, kind, *args, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args, **kwargs)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._get_or_create(name, Histogram, **kwargs)

    def get(self, name: str):
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """Deterministic ``{name: value-or-summary}``, sorted by name."""
        out: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name] = instrument.value
            else:
                out[name] = {
                    "count": instrument.count,
                    "sum": round(instrument.sum, 9),
                    "min": instrument.min,
                    "max": instrument.max,
                    "buckets": list(instrument.buckets),
                }
        return out

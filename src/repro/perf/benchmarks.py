"""Macro-benchmark suite for the simulation core.

Each :class:`BenchmarkCase` wraps one deterministic
:class:`~repro.experiments.spec.ScenarioSpec` (or fuzz-generated
schedule) and runs through the ordinary
:class:`~repro.experiments.runner.CampaignRunner` — same factory path,
same metrics pipeline — so a benchmark is just a campaign job whose
*wall-clock* we care about.  The deterministic event count divided by
the simulation-only wall clock gives events/second, the engine's
throughput number tracked across PRs in ``BENCH_<label>.json``.

The cases mirror the hot paths the paper's evaluation leans on:

* ``happy_n{4,16,32,64}`` — fault-free throughput as the replica count
  scales (signature verification off: these measure the event loop,
  endorsement accounting, and commit rules);
* ``verify_heavy_n32`` — the signature-verification-heavy
  configuration (``n = 32``, ``verify_signatures = on``): every
  replica checks every proposal signature and every QC's vote
  signatures, the cost the crypto memo caches exist to kill;
* ``fault_mix_n16`` — crash + equivocation + lazy voters + a healing
  partition, the fuzzer's bread and butter;
* ``bandwidth_450kb_n16`` — the paper's ~450 KB blocks over a modelled
  uplink, exercising serialization delays and staggered arrival;
* ``throughput_*`` — the real-transaction pipeline: a deterministic KV
  workload feeding mempools, leaders batching pending transactions
  into payloads (``throughput_batched_n16``), the pipelined drain
  discipline (``throughput_pipelined_n16``), and linear vote
  collection at n=32 (``throughput_linear_n32``).  These report
  txs/sec and commit-latency percentiles alongside events/sec;
* ``fuzz_smoke_seed{N}`` — fuzz-generator schedules replayed end to
  end, tracking the schedule-discovery loop's events/second.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.campaign import Job
from repro.experiments.runner import CampaignRunner
from repro.experiments.spec import FaultMix, PartitionWindow, ScenarioSpec


@dataclass(frozen=True)
class BenchmarkCase:
    """One named, deterministic benchmark scenario."""

    name: str
    category: str
    description: str
    spec: ScenarioSpec
    seed: int = 1


def _spec(name: str, **overrides) -> ScenarioSpec:
    """Benchmark scenario defaults: small payloads, one observer.

    ``sync_enabled`` is pinned off: the committed ``BENCH_*.json``
    baselines predate the block-sync subprotocol and these cases track
    the engine hot path, so they must keep replaying byte-identically.
    The sync workload itself is measured by the dedicated
    ``sync_catchup_n16`` case (not gated against pre-sync baselines).
    """
    params = dict(
        name=name,
        protocol="sft-diembft",
        topology="uniform",
        uniform_delay=0.01,
        jitter=0.002,
        round_timeout=0.25,
        verify_signatures=False,
        block_batch_count=10,
        block_batch_bytes=1_000,
        observers=1,
        seeds=(1,),
        sync_enabled=False,
    )
    params.update(overrides)
    return ScenarioSpec(**params)


def _happy_case(n: int, duration: float) -> BenchmarkCase:
    return BenchmarkCase(
        name=f"happy_n{n}",
        category="happy",
        description=f"fault-free sft-diembft throughput at n={n}",
        spec=_spec(f"happy_n{n}", n=n, duration=duration),
    )


def _verify_case(duration: float) -> BenchmarkCase:
    return BenchmarkCase(
        name="verify_heavy_n32",
        category="verify",
        description=(
            "signature-verification-heavy: n=32, verify_signatures=on, "
            "every replica validates every proposal and QC"
        ),
        spec=_spec(
            "verify_heavy_n32", n=32, duration=duration, verify_signatures=True
        ),
    )


def _fault_case(duration: float) -> BenchmarkCase:
    return BenchmarkCase(
        name="fault_mix_n16",
        category="faults",
        description=(
            "crash + equivocating leader + lazy voters + healing partition"
        ),
        spec=_spec(
            "fault_mix_n16",
            n=16,
            duration=duration,
            verify_signatures=True,
            faults=FaultMix(crash=1, crash_at=1.0, equivocate=1, lazy=2,
                            lazy_delay=0.1),
            partitions=(PartitionWindow(start=2.0, end=4.0, split=0.5),),
        ),
    )


def _bandwidth_case(duration: float) -> BenchmarkCase:
    return BenchmarkCase(
        name="bandwidth_450kb_n16",
        category="bandwidth",
        description="paper-scale 450 KB blocks over a 100 MB/s modelled uplink",
        spec=_spec(
            "bandwidth_450kb_n16",
            n=16,
            duration=duration,
            verify_signatures=True,
            round_timeout=0.5,
            bandwidth_bytes_per_sec=100e6,
            block_batch_count=1000,
            block_batch_bytes=450_000,
        ),
    )


def _sync_case(duration: float) -> BenchmarkCase:
    """The block-sync workload: a quorum-reach withholding leader
    keeps starving replicas that continuously catch up through the
    sync subprotocol.  Tracked for trend only — it has no pre-sync
    baseline entry, and ``repro bench compare`` ignores cases absent
    from the baseline."""
    return BenchmarkCase(
        name="sync_catchup_n16",
        category="sync",
        description=(
            "withholding leader at quorum reach + block-sync catch-up "
            "(SyncRequest/SyncResponse round trips on the hot path)"
        ),
        spec=_spec(
            "sync_catchup_n16",
            n=16,
            duration=duration,
            sync_enabled=True,
            faults=FaultMix(withhold=1, withhold_reach=0.75),
        ),
    )


def _checkpoint_join_case(duration: float) -> BenchmarkCase:
    """The checkpoint/snapshot-join workload: one replica isolated long
    enough that rejoining needs a state snapshot, not block-by-block
    replay.  Tracked for trend (plus ``peak_live_blocks``, the memory
    bound truncation exists to enforce) — like ``sync_catchup_n16`` it
    has no pre-checkpoint baseline entry."""
    return BenchmarkCase(
        name="checkpoint_join_n64",
        category="checkpoint",
        description=(
            "n=64 with checkpointing every 8 commits and one replica "
            "partitioned away: log truncation bounds live blocks while "
            "the laggard rejoins via snapshot transfer instead of full "
            "replay"
        ),
        spec=_spec(
            "checkpoint_join_n64",
            n=64,
            duration=duration,
            sync_enabled=True,
            checkpoint_interval=8,
            workload_rate=200.0,
            partitions=(
                PartitionWindow(
                    start=1.0,
                    end=round(duration * 0.6, 3),
                    groups=(tuple(range(63)), (63,)),
                ),
            ),
        ),
    )


def _throughput_cases(duration: float, linear_duration: float) -> list:
    """The real-transaction pipeline: mempool → batch → commit."""
    workload = dict(workload_rate=2000.0, workload_payload_bytes=64,
                    batch_size=256)
    return [
        BenchmarkCase(
            name="throughput_batched_n16",
            category="throughput",
            description=(
                "KV workload at 2000 tx/s, leaders batching up to 256 "
                "txs per block (stop-and-wait re-proposal)"
            ),
            spec=_spec(
                "throughput_batched_n16", n=16, duration=duration, **workload
            ),
        ),
        BenchmarkCase(
            name="throughput_pipelined_n16",
            category="throughput",
            description=(
                "same workload with pipelined proposals: in-flight "
                "batches excluded from later drains, fresh txs per round"
            ),
            spec=_spec(
                "throughput_pipelined_n16",
                n=16,
                duration=duration,
                pipelined_proposals=True,
                **workload,
            ),
        ),
        BenchmarkCase(
            name="throughput_linear_n32",
            category="throughput",
            description=(
                "sft-streamlet n=32 with linear vote collection: votes "
                "fan in to the next leader, QCMsg fans back out (O(n) "
                "vote traffic instead of O(n^2))"
            ),
            spec=_spec(
                "throughput_linear_n32",
                protocol="sft-streamlet",
                n=32,
                duration=linear_duration,
                linear_votes=True,
                **workload,
            ),
        ),
    ]


def _fuzz_cases(seeds: tuple) -> list:
    from repro.fuzz.generator import SMOKE_PROFILE, generate_spec

    # Zero the throughput- and checkpoint-axis rates so these cases
    # reproduce the schedules the committed baselines were recorded
    # against (the axes draw from separate RNG streams, so zeroed
    # rates leave the base schedule byte-identical — including
    # collector-aimed crash_at retargeting, which with_overrides could
    # not undo).
    profile = replace(
        SMOKE_PROFILE,
        linear_votes_rate=0.0,
        batching_rate=0.0,
        checkpoint_rate=0.0,
        recovery_rate=0.0,
        delivery_rate=0.0,
    )
    cases = []
    for seed in seeds:
        # Pin sync off so the case replays against pre-sync baselines
        # (the generator itself now samples sync on/off).
        spec = generate_spec(seed, profile)
        if spec.script:  # scripted constructions have no event loop to time
            continue
        spec = spec.with_overrides(sync_enabled=False)
        cases.append(
            BenchmarkCase(
                name=f"fuzz_smoke_seed{seed}",
                category="fuzz",
                description=(
                    f"fuzz-generated schedule (smoke profile, seed {seed}): "
                    f"{spec.protocol} n={spec.n}"
                ),
                spec=spec,
                seed=seed,
            )
        )
    return cases


def full_suite() -> tuple:
    """The standing benchmark matrix tracked across PRs."""
    return tuple(
        [
            _happy_case(4, duration=20.0),
            _happy_case(16, duration=15.0),
            _happy_case(32, duration=8.0),
            _happy_case(64, duration=4.0),
            _verify_case(duration=6.0),
            _fault_case(duration=15.0),
            _bandwidth_case(duration=15.0),
            _sync_case(duration=15.0),
            _checkpoint_join_case(duration=6.0),
        ]
        + _throughput_cases(duration=15.0, linear_duration=4.0)
        + _fuzz_cases((1, 3, 6, 10))
    )


def smoke_suite() -> tuple:
    """A reduced matrix for CI: same hot paths, shorter horizons."""
    return tuple(
        [
            _happy_case(4, duration=8.0),
            _happy_case(16, duration=5.0),
            _verify_case(duration=2.0),
            _fault_case(duration=6.0),
            _bandwidth_case(duration=6.0),
            _sync_case(duration=6.0),
            _checkpoint_join_case(duration=4.0),
        ]
        + _throughput_cases(duration=5.0, linear_duration=1.5)
        + _fuzz_cases((3, 7))
    )


SUITES = {"full": full_suite, "smoke": smoke_suite}


def suite_jobs(cases) -> list:
    """One campaign job per benchmark case."""
    return [
        Job(
            job_id=f"bench/{case.name}",
            spec=case.spec,
            seed=case.seed,
            params={"benchmark": case.name},
        )
        for case in cases
    ]


def run_suite(cases, repeats: int = 3, workers: int = 1, progress=None) -> list:
    """Run every case ``repeats`` times; per-case best-of wall clocks.

    Timing uses the simulation-only ``run_wall_clock_s`` (cluster
    construction and the metrics/invariant pass are excluded) and takes
    the *minimum* over repeats — the standard noise-reduction for
    wall-clock micro/macro benchmarking.  Deterministic metrics
    (events, commits, messages) are asserted stable across repeats.
    """
    cases = list(cases)
    jobs = suite_jobs(cases)
    best: list[dict | None] = [None] * len(jobs)
    samples: list[list[float]] = [[] for _ in jobs]
    for _ in range(max(1, repeats)):
        runner = CampaignRunner(jobs, workers=workers, name="bench")
        report = runner.run(progress=progress)
        for index, entry in enumerate(report["jobs"]):
            wall = entry.get("run_wall_clock_s", entry["wall_clock_s"])
            samples[index].append(wall)
            previous = best[index]
            if previous is None:
                best[index] = entry
            else:
                stable = ("events", "commits", "messages", "txs")
                for key in stable:
                    if entry["metrics"].get(key) != previous["metrics"].get(key):
                        raise AssertionError(
                            f"benchmark {jobs[index].job_id} is not "
                            f"deterministic: {key} changed across repeats"
                        )
    results = []
    for case, entry, walls in zip(cases, best, samples):
        metrics = entry["metrics"]
        wall = min(walls)
        events = metrics.get("events", 0)
        txs = metrics.get("txs", {})
        results.append(
            {
                "name": case.name,
                "category": case.category,
                "description": case.description,
                "protocol": case.spec.protocol,
                "n": case.spec.n,
                "sim_duration_s": case.spec.duration,
                "seed": case.seed,
                "events": events,
                "commits": metrics["commits"],
                "messages_sent": metrics["messages"]["sent"],
                # Simulated-time transaction throughput and commit
                # latency tails (None when the case runs no workload /
                # predates the txs metrics).
                "txs_per_sec": (
                    txs.get("per_sec") if txs.get("submitted") else None
                ),
                "commit_latency_p50_s": metrics.get("regular_latency_p50_s"),
                "commit_latency_p99_s": metrics.get("regular_latency_p99_s"),
                # Per-phase lifecycle decomposition (mempool wait,
                # proposal→QC, QC→endorse, endorse→commit means).
                "latency_breakdown": metrics.get("latency_breakdown"),
                # Memory bound tracked by the checkpoint subprotocol
                # (populated for every case; truncation only shrinks it
                # when checkpointing is enabled).
                "peak_live_blocks": metrics.get("checkpoint", {}).get(
                    "peak_live_blocks"
                ),
                "snapshots_installed": metrics.get("checkpoint", {}).get(
                    "snapshots_installed"
                ),
                "wall_clock_s": round(wall, 6),
                "wall_clock_runs": [round(value, 6) for value in walls],
                "events_per_sec": round(events / wall, 3) if wall > 0 else None,
                "sim_ratio": (
                    round(case.spec.duration / wall, 3) if wall > 0 else None
                ),
            }
        )
    return results

"""Benchmark reports: ``BENCH_<label>.json`` files and the 20% gate.

A bench report is the perf twin of a campaign report: per-benchmark
events/second and wall clock, plus enough environment detail to judge
whether two reports are comparable at all.  ``compare_benchmarks``
flags any benchmark whose events/second dropped more than the
threshold (default 20%) against a baseline report — the regression
gate ``repro bench compare`` and CI's ``bench-smoke`` job enforce.

Wall clocks are machine-dependent: a committed baseline is only
meaningful against runs on comparable hardware, so refresh it
(``repro bench run --label <label>``) when the reference machine
changes.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass
from pathlib import Path

BENCH_SCHEMA_VERSION = 1

#: Default relative slowdown that fails the gate (20%).
DEFAULT_THRESHOLD = 0.20


def build_report(
    label: str,
    suite: str,
    results: list,
    repeats: int,
    workers: int,
) -> dict:
    """Assemble the JSON-serializable bench report."""
    total_wall = sum(entry["wall_clock_s"] for entry in results)
    total_events = sum(entry["events"] for entry in results)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "suite": suite,
        "repeats": repeats,
        "workers": workers,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "benchmarks": results,
        "summary": {
            "cases": len(results),
            "total_wall_clock_s": round(total_wall, 6),
            "total_events": total_events,
            "overall_events_per_sec": (
                round(total_events / total_wall, 3) if total_wall > 0 else None
            ),
        },
    }


def bench_path(label: str, root=".") -> Path:
    """The conventional report location: ``BENCH_<label>.json`` at the root."""
    return Path(root) / f"BENCH_{label}.json"


def save_bench(report: dict, path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_bench(path) -> dict:
    return json.loads(Path(path).read_text())


@dataclass(slots=True)
class BenchRegression:
    """One benchmark that fell past the slowdown threshold."""

    name: str
    metric: str
    current: float | None
    baseline: float | None
    limit: float | None

    def describe(self) -> str:
        def show(value):
            return "—" if value is None else f"{value:g}"

        return (
            f"{self.name}: {self.metric} {show(self.current)} "
            f"vs baseline {show(self.baseline)} (floor {show(self.limit)})"
        )


def _by_name(report: dict) -> dict:
    return {entry["name"]: entry for entry in report.get("benchmarks", ())}


def compare_benchmarks(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list:
    """Regressions of ``current`` against ``baseline``.

    A benchmark regresses when its events/second — or, for workload
    cases, its simulated txs/second — falls below
    ``baseline × (1 - threshold)``; a benchmark present in the baseline
    but missing from the current report is a regression too (a shrunk
    suite must be deliberate).  A baseline without benchmarks raises —
    a gate comparing against nothing must fail loudly, not pass.
    """
    baseline_entries = _by_name(baseline)
    if not baseline_entries:
        raise ValueError(
            "baseline report contains no benchmarks "
            "(wrong file, or not a BENCH_*.json?)"
        )
    regressions = []
    current_entries = _by_name(current)
    for name, base_entry in baseline_entries.items():
        entry = current_entries.get(name)
        if entry is None:
            regressions.append(
                BenchRegression(name, "missing-benchmark", None, None, None)
            )
            continue
        rate = entry.get("events_per_sec")
        base_rate = base_entry.get("events_per_sec")
        if rate is not None and base_rate is not None:
            floor = base_rate * (1.0 - threshold)
            if rate < floor:
                regressions.append(
                    BenchRegression(
                        name, "events_per_sec", rate, base_rate, round(floor, 3)
                    )
                )
        # Transaction throughput is simulated-time and deterministic,
        # so the same floor applies without hardware caveats.  A
        # workload case that stops reporting txs/sec regressed.
        base_txs = base_entry.get("txs_per_sec")
        if base_txs:
            txs = entry.get("txs_per_sec")
            txs_floor = base_txs * (1.0 - threshold)
            if txs is None or txs < txs_floor:
                regressions.append(
                    BenchRegression(
                        name, "txs_per_sec", txs, base_txs, round(txs_floor, 3)
                    )
                )
    return regressions


def coverage_warnings(current: dict, baseline: dict) -> list:
    """Cases present in only one report, as human-readable warnings.

    Complements :func:`compare_benchmarks`: only-in-baseline cases are
    already hard regressions there; only-in-current cases run entirely
    ungated (typically new benchmarks awaiting a baseline refresh) —
    both deserve a loud mention so nobody mistakes a partial comparison
    for full coverage.
    """
    current_names = set(_by_name(current))
    baseline_names = set(_by_name(baseline))
    warnings = []
    for name in sorted(current_names - baseline_names):
        warnings.append(
            f"{name}: only in current report — not gated "
            "(baseline predates it; refresh to start tracking)"
        )
    for name in sorted(baseline_names - current_names):
        warnings.append(
            f"{name}: only in baseline report — missing from current run"
        )
    return warnings


def format_bench_table(report: dict) -> str:
    """Human-readable results table for one bench report."""
    header = (
        f"{'benchmark':<22}{'n':>5}{'events':>10}{'commits':>9}"
        f"{'wall (s)':>10}{'events/s':>12}{'sim ratio':>11}"
    )
    lines = [f"bench {report['label']} (suite={report['suite']}, "
             f"repeats={report['repeats']})", header, "-" * len(header)]
    for entry in report.get("benchmarks", ()):
        rate = entry.get("events_per_sec")
        ratio = entry.get("sim_ratio")
        lines.append(
            f"{entry['name']:<22}{entry['n']:>5}{entry['events']:>10}"
            f"{entry['commits']:>9}{entry['wall_clock_s']:>10.3f}"
            f"{(f'{rate:,.0f}' if rate is not None else '—'):>12}"
            f"{(f'{ratio:.1f}x' if ratio is not None else '—'):>11}"
        )
    summary = report.get("summary", {})
    overall = summary.get("overall_events_per_sec")
    lines.append(
        f"\ntotal: {summary.get('total_wall_clock_s')}s wall, "
        f"{summary.get('total_events')} events"
        + (f", {overall:,.0f} events/s overall" if overall else "")
    )
    return "\n".join(lines)


def format_comparison(current: dict, baseline: dict) -> str:
    """Per-benchmark speedup table of ``current`` over ``baseline``."""
    header = (
        f"{'benchmark':<22}{'baseline ev/s':>15}{'current ev/s':>15}"
        f"{'speedup':>9}"
    )
    lines = [
        f"{current.get('label', '?')} vs {baseline.get('label', '?')}",
        header,
        "-" * len(header),
    ]
    current_entries = _by_name(current)
    for name, base_entry in _by_name(baseline).items():
        entry = current_entries.get(name)
        base_rate = base_entry.get("events_per_sec")
        rate = entry.get("events_per_sec") if entry else None
        if rate is None or base_rate is None or base_rate == 0:
            speedup = "—"
        else:
            speedup = f"{rate / base_rate:.2f}x"
        lines.append(
            f"{name:<22}"
            f"{(f'{base_rate:,.0f}' if base_rate is not None else '—'):>15}"
            f"{(f'{rate:,.0f}' if rate is not None else '—'):>15}"
            f"{speedup:>9}"
        )
    return "\n".join(lines)

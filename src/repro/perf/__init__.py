"""Performance tracking: macro-benchmarks and ``BENCH_*.json`` reports.

The standing perf loop (see ROADMAP): ``repro bench run`` executes the
benchmark suite through the campaign engine and writes
``BENCH_<label>.json`` at the repo root; ``repro bench compare`` gates
changes on a ≤20% events/second regression against a baseline report.

    from repro.perf import SUITES, run_suite, build_report

    results = run_suite(SUITES["smoke"]())
    report = build_report("local", "smoke", results, repeats=3, workers=1)
"""

from repro.perf.benchmarks import (
    BenchmarkCase,
    SUITES,
    full_suite,
    run_suite,
    smoke_suite,
    suite_jobs,
)
from repro.perf.report import (
    BenchRegression,
    DEFAULT_THRESHOLD,
    bench_path,
    build_report,
    compare_benchmarks,
    coverage_warnings,
    format_bench_table,
    format_comparison,
    load_bench,
    save_bench,
)

__all__ = [
    "BenchmarkCase",
    "SUITES",
    "full_suite",
    "smoke_suite",
    "suite_jobs",
    "run_suite",
    "BenchRegression",
    "DEFAULT_THRESHOLD",
    "bench_path",
    "build_report",
    "compare_benchmarks",
    "coverage_warnings",
    "format_bench_table",
    "format_comparison",
    "load_bench",
    "save_bench",
]

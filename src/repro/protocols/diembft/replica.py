"""The DiemBFT replica (Figure 2).

State: highest voted round ``r_vote``, highest locked round ``r_lock``,
current round (owned by the pacemaker), and the highest known QC
``qc_high``.

Rules, verbatim from the paper:

* **Proposing** — the round leader multicasts a block extending the
  highest certified block (certified by ``qc_high``).
* **Voting** — on the first valid round-``r`` proposal, send a vote to
  the *next* leader iff ``r > r_vote`` and ``parent.round >= r_lock``.
* **Locking** — on a valid QC, ``r_lock = max(r_lock, parent-of-
  certified-block.round)`` (2-chain lock) and ``qc_high`` is raised.
* **Commit** — the 3-chain rule (three adjacent certified blocks with
  consecutive rounds), delegated to
  :class:`~repro.core.commit_rules.CommitTracker`.
* **Synchronization** — advance on a QC of the previous round or a
  timeout certificate; delegated to
  :class:`~repro.protocols.pacemaker.Pacemaker`.

The class is written to be subclassed: SFT-DiemBFT overrides vote
construction and certification hooks; the FBFT baseline overrides late
vote handling.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.commit_rules import CommitTracker
from repro.protocols.base import BaseReplica, ReplicaConfig, ReplicaContext
from repro.protocols.pacemaker import Pacemaker, PacemakerConfig
from repro.types.block import Block, BlockId, make_genesis
from repro.types.chain import BlockStore
from repro.types.messages import (
    ProposalMsg,
    QCMsg,
    TimeoutMsg,
    VoteMsg,
)
from repro.types.quorum_cert import QuorumCertificate
from repro.types.transaction import Payload, TxBatch
from repro.types.vote import Vote


class DiemBFTReplica(BaseReplica):
    """One DiemBFT replica driven by the simulated network."""

    def __init__(self, config: ReplicaConfig, context: ReplicaContext) -> None:
        super().__init__(config, context)
        genesis, genesis_qc = make_genesis()
        self.genesis = genesis
        self.store = BlockStore(genesis, genesis_qc)
        self.qc_high = genesis_qc
        self.r_vote = 0
        self.r_lock = 0
        self.pacemaker = Pacemaker(
            PacemakerConfig(
                base_timeout=config.round_timeout,
                multiplier=config.timeout_multiplier,
                max_timeout=config.max_timeout,
                quorum=config.quorum(),
                join_threshold=config.f + 1,
            ),
            context,
            on_new_round=self._on_new_round,
            on_local_timeout=self._on_local_timeout,
        )
        self.commit_tracker = self._make_commit_tracker()
        self.commit_tracker.tracer = self.tracer
        self.payload_source = self._default_payload
        # Vote aggregation (this replica acting as a collector).
        self._collected_votes: dict[BlockId, dict[int, object]] = {}
        self._vote_block_info: dict[BlockId, tuple] = {}
        self._formed_qcs: set[BlockId] = set()
        self._pending_qc_forms: set[BlockId] = set()
        # Replica-level idempotence and orphan handling.
        self._qcs_processed: set[BlockId] = set()
        self._pending_qcs: dict[BlockId, QuorumCertificate] = {}
        self._orphan_proposals: dict[BlockId, ProposalMsg] = {}
        # Block-sync: last cast vote (recovered via timeout messages
        # when the aggregating next leader crashed).
        self._last_vote = None
        # WAL qc_high stashed by restore_from_wal; fed through
        # _process_qc by rejoin_after_restart() (after start(), which
        # would otherwise reset the pacemaker round it advances).
        self._wal_qc_high = None
        # Statistics: registry-backed counters; the property shims below
        # keep the legacy attribute API (+= sites, test assertions).
        self._c_blocks_proposed = self.metrics.counter("blocks_proposed")
        self._c_votes_sent = self.metrics.counter("votes_sent")
        self._c_timeouts_sent = self.metrics.counter("timeouts_sent")
        self._c_invalid_messages = self.metrics.counter("invalid_messages")
        self._init_sync()
        self._init_checkpoint()

    # ------------------------------------------------------------------
    # registry-backed statistics (legacy attribute API preserved)
    # ------------------------------------------------------------------

    @property
    def blocks_proposed(self) -> int:
        return self._c_blocks_proposed.value

    @blocks_proposed.setter
    def blocks_proposed(self, value: int) -> None:
        self._c_blocks_proposed.value = value

    @property
    def votes_sent(self) -> int:
        return self._c_votes_sent.value

    @votes_sent.setter
    def votes_sent(self, value: int) -> None:
        self._c_votes_sent.value = value

    @property
    def timeouts_sent(self) -> int:
        return self._c_timeouts_sent.value

    @timeouts_sent.setter
    def timeouts_sent(self, value: int) -> None:
        self._c_timeouts_sent.value = value

    @property
    def invalid_messages(self) -> int:
        return self._c_invalid_messages.value

    @invalid_messages.setter
    def invalid_messages(self, value: int) -> None:
        self._c_invalid_messages.value = value

    # ------------------------------------------------------------------
    # construction hooks (overridden by subclasses)
    # ------------------------------------------------------------------

    def _make_commit_tracker(self) -> CommitTracker:
        return CommitTracker(self.store, self.config.f, rule="diembft")

    def _make_vote(self, block: Block):
        """Build this protocol's vote for ``block`` (plain DiemBFT vote)."""
        vote = Vote(
            block_id=block.id(),
            block_round=block.round,
            height=block.height,
            voter=self.replica_id,
        )
        return self._sign_vote(vote)

    def _sign_vote(self, vote):
        signature = self.context.signing_key.sign(vote.signing_payload())
        # Frozen dataclasses: rebuild with the signature attached.
        return replace(vote, signature=signature)

    def _after_vote(self, block: Block) -> None:
        """Hook: called after this replica votes for ``block``."""

    def _on_new_certification(self, qc: QuorumCertificate, now: float) -> None:
        """Hook: a QC for a known block was recorded for the first time."""
        self.commit_tracker.on_new_qc(qc, now)

    def _on_late_vote(self, vote) -> None:
        """Hook: a vote arrived for a block whose QC already formed."""

    def _proposal_commit_log(self) -> tuple:
        """Hook: light-client commit log to embed in proposals (§5)."""
        return ()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.pacemaker.start()

    def restore_from_wal(self, state) -> None:
        """Reload the durable voting record after a restart.

        ``r_vote`` is the amnesia-safety core: with it restored the
        ordinary ``round <= r_vote`` voting guard refuses every round
        the pre-crash incarnation already voted in.  ``qc_high`` is
        only stashed here — ingesting it advances the pacemaker, which
        ``start()`` would reset, so :meth:`rejoin_after_restart` feeds
        it through ``_process_qc`` once the replica is live.
        """
        super().restore_from_wal(state)
        self.r_vote = max(self.r_vote, state.r_vote)
        self.r_lock = max(self.r_lock, state.r_lock)
        if state.last_vote is not None:
            self._last_vote = state.last_vote
        self.pacemaker.restore_timed_out(state.timed_out_rounds)
        if state.qc_high is not None and state.qc_high.round > self.qc_high.round:
            self._wal_qc_high = state.qc_high

    def rejoin_after_restart(self) -> None:
        """Kick off catch-up from the WAL's highest known QC: its block
        is unknown to the fresh store, so ``_process_qc`` routes it to
        the block-sync / snapshot rejoin path."""
        qc, self._wal_qc_high = self._wal_qc_high, None
        if qc is not None:
            self._process_qc(qc, self.context.now)

    def _default_payload(self, now: float) -> Payload:
        return Payload(
            batch=TxBatch(
                count=self.config.block_batch_count,
                size_bytes=self.config.block_batch_bytes,
                created_at=now,
                tag=self.replica_id,
            )
        )

    # ------------------------------------------------------------------
    # round transitions
    # ------------------------------------------------------------------

    def _on_new_round(self, round_number: int, reason: str) -> None:
        if self.crashed:
            return
        if self.tracer is not None:
            self.tracer.emit(
                self.context.now, "round", round=round_number, detail=reason
            )
        if self.sync is not None and reason == "tc":
            # Timeout-driven jumps are the round-lag staleness signal:
            # QCs advance the round only when their block is known.
            self.sync.note_round_lag(
                round_number, self.store.highest_certified_block().round
            )
        if self.config.leader_of(round_number) == self.replica_id:
            self._propose(round_number, reason)

    def _propose(self, round_number: int, reason: str) -> None:
        parent_qc = self.qc_high
        block = Block(
            parent_id=parent_qc.block_id,
            qc=parent_qc,
            round=round_number,
            height=parent_qc.height + 1,
            proposer=self.replica_id,
            payload=self.payload_source(self.context.now),
            created_at=self.context.now,
            commit_log=self._proposal_commit_log(),
        )
        tc = None
        if parent_qc.round != round_number - 1:
            tc = self.pacemaker.known_tc(round_number - 1)
        proposal = ProposalMsg(
            sender=self.replica_id, round=round_number, block=block, tc=tc
        )
        signature = self.context.signing_key.sign(proposal.signing_payload())
        proposal = replace(proposal, signature=signature)
        self.blocks_proposed += 1
        tracer = self.tracer
        if tracer is not None:
            txs = block.payload.transactions
            tracer.emit(
                block.created_at, "propose", round=round_number,
                height=block.height, block=block.id().short(),
                value=sum(block.created_at - tx.submitted_at for tx in txs),
                count=len(txs),
            )
        self.context.multicast(proposal, include_self=True)

    def _on_local_timeout(self, round_number: int) -> None:
        if self.crashed:
            return
        vote = None
        if (
            self.sync is not None
            and self._last_vote is not None
            and self._last_vote.block_round == round_number
        ):
            # QC recovery: the vote this replica sent to the (possibly
            # crashed) round-(r+1) leader rides on the timeout, letting
            # every peer aggregate the round-r QC locally.
            vote = self._last_vote
        timeout = TimeoutMsg(
            sender=self.replica_id,
            round=round_number,
            qc_high=self.qc_high,
            vote=vote,
        )
        signature = self.context.signing_key.sign(timeout.signing_payload())
        timeout = replace(timeout, signature=signature)
        self.timeouts_sent += 1
        if self.wal is not None:
            self.wal.record_timeout(round_number)
        if self.tracer is not None:
            self.tracer.emit(self.context.now, "timeout", round=round_number)
        self.context.multicast(timeout, include_self=True)

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def on_message(self, src: int, message) -> None:
        if isinstance(message, ProposalMsg):
            self._on_proposal(src, message)
        elif isinstance(message, VoteMsg):
            self._on_vote(src, message)
        elif isinstance(message, TimeoutMsg):
            self._on_timeout_msg(src, message)
        elif isinstance(message, QCMsg):
            self._on_qc_msg(src, message)
        else:
            self._on_other_message(src, message)

    def _on_other_message(self, src: int, message) -> None:
        """Hook for subclass-specific message types."""
        del src, message

    def on_timer(self, tag) -> None:  # timers are closures in this design
        del tag

    # ------------------------------------------------------------------
    # proposals
    # ------------------------------------------------------------------

    def _on_proposal(self, src: int, msg: ProposalMsg) -> None:
        if not self._validate_proposal(src, msg):
            self.invalid_messages += 1
            return
        if (
            self.config.drop_stale_messages
            and msg.round < self.pacemaker.current_round
            and not self.store.is_awaited(msg.block.id())
        ):
            # Real DiemBFT rejects proposals for rounds it has moved
            # past; the exception keeps a block that a buffered orphan
            # is waiting for (possible under delivery reordering).
            return
        if msg.tc is not None:
            self.pacemaker.note_tc(msg.tc)
            self.pacemaker.advance_on_tc(msg.tc)

        block = msg.block
        # Remember the proposal; the generic inserted-block path votes
        # on it, whether insertion happens now or when a missing parent
        # arrives (orphan flush).
        self._orphan_proposals.setdefault(block.id(), msg)
        inserted = self.store.add_block(block)
        if inserted:
            self._handle_inserted_blocks(inserted)
        elif self.sync is not None and block.parent_id not in self.store:
            # The proposal was orphaned on an unknown parent — the
            # staleness signal the catch-up subprotocol acts on.
            self.sync.note_missing(block.parent_id)

    def _validate_proposal(self, src: int, msg: ProposalMsg) -> bool:
        block = msg.block
        if block.is_genesis() or block.qc is None:
            return False
        if block.round != msg.round or block.proposer != msg.sender:
            return False
        if src != msg.sender:
            return False
        if self.config.leader_of(msg.round) != msg.sender:
            return False
        if block.qc.block_id != block.parent_id:
            return False
        if self.config.verify_signatures:
            if msg.signature is None or not self.context.registry.verify(
                msg.signing_payload(), msg.signature
            ):
                return False
            if not block.qc.validate(self.context.registry, self.config.quorum()):
                return False
        return True

    def _handle_inserted_blocks(self, inserted) -> None:
        """Process QC effects and voting for each newly stored block."""
        now = self.context.now
        for block in inserted:
            if block.qc is not None:
                self._process_qc(block.qc, now)
            pending_qc = self._pending_qcs.pop(block.id(), None)
            if pending_qc is not None:
                self._process_qc(pending_qc, now)
        # Voting happens after all certification state is updated.
        for block in inserted:
            msg = self._orphan_proposals.pop(block.id(), None)
            if msg is not None:
                self._maybe_vote(msg)

    # ------------------------------------------------------------------
    # voting
    # ------------------------------------------------------------------

    def _maybe_vote(self, msg: ProposalMsg) -> None:
        block = msg.block
        round_number = block.round
        if self.pacemaker.has_timed_out(round_number):
            return
        if round_number != self.pacemaker.current_round:
            return
        if round_number <= self.r_vote:
            return
        if self.wal is not None and self.wal.has_voted(round_number):
            # Amnesia safety, belt-and-braces: the WAL is authoritative
            # about past votes even if volatile r_vote lags it.
            return
        parent = self.store.maybe_get(block.parent_id)
        if parent is None:
            return
        if parent.round < self.r_lock:
            return
        if not self._validate_payload(block):
            return
        vote = self._make_vote(block)
        self.r_vote = round_number
        self.votes_sent += 1
        if self.tracer is not None:
            self.tracer.emit(
                self.context.now, "vote", round=round_number,
                height=block.height, block=block.id().short(),
            )
        self._last_vote = vote
        self._after_vote(block)
        if self.wal is not None:
            # fsync the vote before it leaves the replica
            self.wal.record_vote(round_number, block.id(), vote)
        next_leader = self.config.leader_of(round_number + 1)
        self.context.send(next_leader, VoteMsg(sender=self.replica_id, vote=vote))

    def _validate_payload(self, block: Block) -> bool:
        """External validity hook (Section 2); accepts everything by default."""
        del block
        return True

    # ------------------------------------------------------------------
    # vote collection (this replica as the round-(r+1) leader)
    # ------------------------------------------------------------------

    def _on_vote(self, src: int, msg: VoteMsg) -> None:
        vote = msg.vote
        if src != vote.voter or not 0 <= vote.voter < self.config.n:
            self.invalid_messages += 1
            return
        if self.config.verify_signatures:
            if vote.signature is None or not self.context.registry.verify(
                vote.signing_payload(), vote.signature
            ):
                self.invalid_messages += 1
                return
        if self.config.leader_of(vote.block_round + 1) != self.replica_id:
            return  # not the collector for this round
        self._aggregate_vote(vote)

    def _aggregate_vote(self, vote) -> None:
        """Bucket one validated vote; form the QC at quorum.

        Shared by the ordinary collector path and the sync-enabled
        timeout-vote recovery path (where *every* replica aggregates).
        """
        block_id = vote.block_id
        if block_id in self._formed_qcs:
            self._on_late_vote(vote)
            return
        bucket = self._collected_votes.setdefault(block_id, {})
        bucket[vote.voter] = vote
        self._vote_block_info[block_id] = (vote.block_round, vote.height)
        if len(bucket) < self.config.quorum():
            return
        if self.tracer is not None and len(bucket) == self.config.quorum():
            self.tracer.emit(
                self.context.now, "votes_collected", round=vote.block_round,
                height=vote.height, block=block_id.short(), count=len(bucket),
            )
        if self.config.qc_extra_wait > 0:
            if block_id not in self._pending_qc_forms:
                self._pending_qc_forms.add(block_id)
                self.context.set_timer(
                    self.config.qc_extra_wait, self._form_qc, block_id
                )
        else:
            self._form_qc(block_id)

    def _form_qc(self, block_id: BlockId) -> None:
        if self.crashed or block_id in self._formed_qcs:
            return
        bucket = self._collected_votes.pop(block_id, None)
        self._pending_qc_forms.discard(block_id)
        if bucket is None or len(bucket) < self.config.quorum():
            return
        round_number, height = self._vote_block_info.pop(block_id)
        votes = tuple(bucket[voter] for voter in sorted(bucket))
        qc = QuorumCertificate(
            block_id=block_id, round=round_number, height=height, votes=votes
        )
        self._formed_qcs.add(block_id)
        if self.tracer is not None:
            self.tracer.emit(
                self.context.now, "qc_formed", round=round_number,
                height=height, block=block_id.short(), count=len(votes),
            )
        self._process_qc(qc, self.context.now)
        if (
            self.config.linear_votes
            and self.config.leader_of(round_number + 1) == self.replica_id
        ):
            # Linear vote collection: the collector re-broadcasts the
            # aggregated certificate so peers learn it one hop after
            # formation instead of waiting for it to ride inside the
            # next proposal.  The collector check matters because with
            # sync enabled *every* replica aggregates timeout-recovered
            # votes — only the designated collector may fan out.
            self.context.multicast(
                QCMsg(sender=self.replica_id, qc=qc), include_self=False
            )

    def _on_qc_msg(self, src: int, msg: QCMsg) -> None:
        """Ingest a collector's aggregated-QC broadcast (linear mode).

        The certificate is self-certifying — ``2f + 1`` signed votes —
        so validation is the ordinary QC check regardless of which peer
        relayed it.
        """
        del src
        qc = msg.qc
        if qc.is_genesis():
            return
        if self.config.verify_signatures and not qc.validate(
            self.context.registry, self.config.quorum()
        ):
            self.invalid_messages += 1
            return
        self._process_qc(qc, self.context.now)

    # ------------------------------------------------------------------
    # QC processing (locking rule + synchronization rule)
    # ------------------------------------------------------------------

    def _process_qc(self, qc: QuorumCertificate, now: float) -> None:
        if qc.round > self.qc_high.round:
            self.qc_high = qc
            if self.wal is not None:
                self.wal.record_qc_high(qc)
        certified = self.store.maybe_get(qc.block_id)
        if certified is not None:
            if certified.parent_id is not None:
                parent = self.store.maybe_get(certified.parent_id)
                if parent is not None and parent.round > self.r_lock:
                    self.r_lock = parent.round
                    if self.wal is not None:
                        self.wal.record_lock(parent.round)
            if qc.block_id not in self._qcs_processed:
                self._qcs_processed.add(qc.block_id)
                self.store.record_qc(qc)
                tracer = self.tracer
                if tracer is None:
                    self._on_new_certification(qc, now)
                else:
                    tracer.emit(
                        now, "qc", round=qc.round, height=qc.height,
                        block=qc.block_id.short(), count=len(qc.votes),
                    )
                    commits_before = len(self.commit_tracker.commit_order)
                    self._on_new_certification(qc, now)
                    for event in self.commit_tracker.commit_order[commits_before:]:
                        tracer.emit(
                            now, "commit", round=event.round,
                            height=event.height, block=event.block_id.short(),
                        )
        else:
            self._pending_qcs.setdefault(qc.block_id, qc)
            if self.sync is not None and not qc.is_genesis():
                # A QC certifying a block we have never seen: fetch
                # its certified ancestor chain from peers.
                self.sync.note_missing(qc.block_id)
        self.pacemaker.advance_on_qc(qc.round)

    # ------------------------------------------------------------------
    # timeouts
    # ------------------------------------------------------------------

    def _on_timeout_msg(self, src: int, msg: TimeoutMsg) -> None:
        if src != msg.sender:
            self.invalid_messages += 1
            return
        if self.config.verify_signatures:
            if msg.signature is None or not self.context.registry.verify(
                msg.signing_payload(), msg.signature
            ):
                self.invalid_messages += 1
                return
        if (
            self.config.drop_stale_messages
            and msg.round < self.pacemaker.current_round
        ):
            return  # timeout for a round this replica already left
        self._process_qc(msg.qc_high, self.context.now)
        if self.sync is not None and msg.vote is not None:
            self._recover_timeout_vote(msg.sender, msg.vote)
        tc = self.pacemaker.record_timeout_vote(
            msg.round, msg.sender, msg.qc_high.round
        )
        if tc is not None:
            self.pacemaker.advance_on_tc(tc)

    def _recover_timeout_vote(self, sender: int, vote) -> None:
        """Aggregate a vote recovered from a peer's timeout message.

        When the leader of round ``r + 1`` crashes, the round-``r``
        votes it should have aggregated are lost and the 3-chain can
        never complete (the fuzzer's rotation-starvation find).  With
        sync enabled every replica re-aggregates the votes that ride on
        timeout messages, so the QC forms anyway.  Safety is unchanged:
        a recovered QC is the same 2f+1 signed votes any collector
        would have bundled.
        """
        if vote.voter != sender or not 0 <= vote.voter < self.config.n:
            self.invalid_messages += 1
            return
        if self.store.is_certified(vote.block_id):
            return  # QC already known through the ordinary paths
        if self.config.verify_signatures:
            if vote.signature is None or not self.context.registry.verify(
                vote.signing_payload(), vote.signature
            ):
                self.invalid_messages += 1
                return
        self._aggregate_vote(vote)

    # ------------------------------------------------------------------
    # checkpoint truncation
    # ------------------------------------------------------------------

    def _on_truncated(self, pruned) -> None:
        super()._on_truncated(pruned)
        for block_id in pruned:
            self._collected_votes.pop(block_id, None)
            self._vote_block_info.pop(block_id, None)
            self._formed_qcs.discard(block_id)
            self._pending_qc_forms.discard(block_id)
            self._qcs_processed.discard(block_id)
            self._pending_qcs.pop(block_id, None)
            self._orphan_proposals.pop(block_id, None)

    # ------------------------------------------------------------------
    # introspection helpers (used by runtime/metrics/tests)
    # ------------------------------------------------------------------

    @property
    def current_round(self) -> int:
        return self.pacemaker.current_round

    def committed_blocks(self) -> list:
        return list(self.commit_tracker.commit_order)

    def committed_tx_count(self) -> int:
        total = 0
        for event in self.commit_tracker.commit_order:
            block = self.store.maybe_get(event.block_id)
            if block is not None:
                total += block.payload.tx_count()
        return total

"""DiemBFT (LibraBFT) — the chained HotStuff substrate (Figure 2)."""

from repro.protocols.diembft.replica import DiemBFTReplica

__all__ = ["DiemBFTReplica"]

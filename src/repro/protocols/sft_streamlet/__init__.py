"""SFT-Streamlet — strengthened fault tolerance for Streamlet (Figure 11)."""

from repro.protocols.sft_streamlet.replica import SFTStreamletReplica

__all__ = ["SFTStreamletReplica"]

"""The SFT-Streamlet replica (Figure 11).

Differences from SFT-DiemBFT (Appendix D):

* the marker records the largest **height** (not round) of any voted
  conflicting block;
* endorsement is parameterized: a strong-vote for ``B'``
  *k-endorses* ``B`` iff ``B = B'`` or (``B'`` extends ``B`` and
  ``marker < k``);
* the strong commit rule ``x``-strong commits the height-``k`` middle
  block of a consecutive-round 3-chain when all three blocks have at
  least ``x + f + 1`` ``k``-endorsers.

Because every replica observes every vote (all-to-all + echo),
observers feed raw strong-votes into the endorsement tracker as they
arrive, and strong-commit strength is re-evaluated after each local QC
ingestion (``k``-endorser counts have no fixed threshold to listen on).

Appendix D.4's observation — reverting an SFT-Streamlet strong commit
requires the adversary to *sustain* corruption for about ``h`` rounds
to regrow a competitive certified chain, versus a single round in
SFT-DiemBFT — is exercised by benchmark E8 and the adversarial tests.

Block-sync (``sync_enabled``) is inherited from the Streamlet base;
synced blocks re-enter ``_handle_inserted_blocks`` so their embedded
strong-QCs reach the endorsement tracker like live ones.
"""

from __future__ import annotations

from repro.core.commit_rules import CommitTracker
from repro.core.endorsement import EndorsementTracker
from repro.core.strong_vote import VotingHistory
from repro.protocols.base import ReplicaContext
from repro.protocols.streamlet.replica import StreamletConfig, StreamletReplica
from repro.types.block import Block
from repro.types.quorum_cert import QuorumCertificate
from repro.types.vote import StrongVote


class SFTStreamletReplica(StreamletReplica):
    """Streamlet with height-marker strong-votes and k-endorsements."""

    def __init__(self, config: StreamletConfig, context: ReplicaContext) -> None:
        self.endorsement: EndorsementTracker | None = None
        super().__init__(config, context)
        self.voting_history = VotingHistory(self.store, mode="height")

    def _make_commit_tracker(self) -> CommitTracker:
        if self.config.observer:
            self.endorsement = EndorsementTracker(
                self.store,
                mode="height",
                naive=self.config.naive_endorsement,
            )
        return CommitTracker(
            self.store,
            self.config.f,
            rule="streamlet",
            endorsement=self.endorsement,
        )

    def _make_vote(self, block: Block) -> StrongVote:
        if self.config.generalized_intervals:
            intervals = self.voting_history.intervals_for(
                block, window=self.config.interval_window
            ).pairs()
        else:
            intervals = ()
        vote = StrongVote(
            block_id=block.id(),
            block_round=block.round,
            height=block.height,
            voter=self.replica_id,
            marker=self.voting_history.marker_for(block),
            intervals=intervals,
        )
        return self._sign_vote(vote)

    def _after_vote(self, block: Block) -> None:
        self.voting_history.record_vote(block)
        if self.wal is not None:
            # fsync the voted-tip set alongside the vote itself: the
            # height-marker computation after a restart depends on it.
            self.wal.record_tips(
                self.voting_history.tip_keys(),
                self.voting_history.highest_voted_round,
            )

    def restore_from_wal(self, state) -> None:
        super().restore_from_wal(state)
        self.voting_history.restore(
            state.voted_tips, state.highest_voted_round
        )

    def _on_truncated(self, pruned) -> None:
        super()._on_truncated(pruned)
        self.voting_history.forget_pruned(pruned)
        if self.endorsement is not None:
            self.endorsement.forget_pruned(pruned)

    def _ingest_vote_for_endorsement(self, vote, now: float) -> None:
        if self.endorsement is not None:
            self.endorsement.add_vote(vote, now)
            # k-endorser counts changed; re-check registered 3-chains.
            self.commit_tracker.evaluate_strong_commits(now)

    def _on_new_certification(self, qc: QuorumCertificate, now: float) -> None:
        if self.endorsement is not None:
            self.endorsement.add_strong_qc(qc, now)
        self.commit_tracker.on_new_qc(qc, now)
        if self.endorsement is not None:
            self.commit_tracker.evaluate_strong_commits(now)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def strength_of(self, block_id) -> int:
        return self.commit_tracker.strength_of(block_id)

"""Round synchronization for DiemBFT-style protocols.

Implements Figure 2's synchronization rule: advance to round ``r`` on
(a) a QC for a round-``(r-1)`` block, or (b) ``2f + 1`` timeout
messages of round ``r - 1``.  Also implements the timeout machinery:
a per-round timer; on expiry the replica stops voting in the round and
multicasts ⟨timeout, r, qc_high⟩; ``f + 1`` observed timeouts for a
round at least the current one make a replica join the timeout (the
standard Bracha-style echo that guarantees timeout certificates form),
and ``2f + 1`` form a :class:`~repro.types.quorum_cert.TimeoutCertificate`.

Timer durations follow exponential backoff over *consecutive* failed
rounds, capped at ``max_timeout``; one successful round resets the
backoff.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types.quorum_cert import TimeoutCertificate


@dataclass(slots=True)
class PacemakerConfig:
    base_timeout: float = 1.0
    multiplier: float = 1.5
    max_timeout: float = 8.0
    quorum: int = 3
    join_threshold: int = 2  # f + 1


class Pacemaker:
    """Tracks the current round and decides when to advance it.

    The owning replica provides two callbacks:

    * ``on_new_round(round, reason)`` — invoked after every advance
      (``reason`` is ``"qc"``, ``"tc"`` or ``"start"``);
    * ``on_local_timeout(round)`` — invoked when the round timer fires
      or the replica joins a timeout echo; the replica is responsible
      for multicasting its timeout message.
    """

    def __init__(self, config: PacemakerConfig, context, on_new_round, on_local_timeout):
        self.config = config
        self.context = context
        self.current_round = 0
        self.round_entered_at = 0.0
        self.consecutive_timeouts = 0
        self._timer = None
        self._timed_out_rounds: set[int] = set()
        self._timeout_votes: dict[int, dict] = {}
        self._tcs: dict[int, TimeoutCertificate] = {}
        self._on_new_round = on_new_round
        self._on_local_timeout = on_local_timeout

    # ------------------------------------------------------------------
    # round state
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Enter round 1 (genesis is round 0)."""
        self._enter_round(1, "start")

    def current_timeout(self) -> float:
        duration = self.config.base_timeout * (
            self.config.multiplier ** self.consecutive_timeouts
        )
        return min(duration, self.config.max_timeout)

    def _enter_round(self, round_number: int, reason: str) -> None:
        self.current_round = round_number
        self.round_entered_at = self.context.now
        self.context.cancel_timer(self._timer)
        self._timer = self.context.set_timer(
            self.current_timeout(), self._timer_fired, round_number
        )
        self._on_new_round(round_number, reason)

    def advance_on_qc(self, qc_round: int) -> bool:
        """Sync rule (a): a QC of round ``r - 1`` enters round ``r``."""
        target = qc_round + 1
        if target <= self.current_round:
            return False
        self.consecutive_timeouts = 0
        self._enter_round(target, "qc")
        return True

    def advance_on_tc(self, tc: TimeoutCertificate) -> bool:
        """Sync rule (b): a TC of round ``r - 1`` enters round ``r``."""
        target = tc.round + 1
        if target <= self.current_round:
            return False
        self.consecutive_timeouts += 1
        self._enter_round(target, "tc")
        return True

    def has_timed_out(self, round_number: int) -> bool:
        """Whether this replica stopped voting in ``round_number``."""
        return round_number in self._timed_out_rounds

    def restore_timed_out(self, rounds) -> None:
        """Crash-recovery seam: reload the WAL's timed-out rounds so a
        reborn replica keeps refusing to vote in rounds it already
        declared dead before the crash."""
        self._timed_out_rounds.update(rounds)

    # ------------------------------------------------------------------
    # timeouts
    # ------------------------------------------------------------------

    def _timer_fired(self, round_number: int) -> None:
        if round_number != self.current_round:
            return  # stale timer (round already advanced)
        if round_number in self._timed_out_rounds:
            return
        self._timed_out_rounds.add(round_number)
        self._on_local_timeout(round_number)

    def record_timeout_vote(
        self, round_number: int, sender: int, qc_high_round: int
    ) -> TimeoutCertificate | None:
        """Account a received ⟨timeout⟩; returns a TC when one forms.

        Also triggers the join rule: ``f + 1`` distinct timeouts for a
        round ``>=`` the current one make this replica time out too.
        """
        votes = self._timeout_votes.setdefault(round_number, {})
        votes[sender] = max(votes.get(sender, -1), qc_high_round)

        if (
            len(votes) >= self.config.join_threshold
            and round_number >= self.current_round
            and round_number not in self._timed_out_rounds
        ):
            self._timed_out_rounds.add(round_number)
            self._on_local_timeout(round_number)

        if len(votes) >= self.config.quorum and round_number not in self._tcs:
            tc = TimeoutCertificate(
                round=round_number,
                timeout_voters=frozenset(votes),
                highest_qc_round=max(votes.values()),
            )
            self._tcs[round_number] = tc
            return tc
        return None

    def known_tc(self, round_number: int) -> TimeoutCertificate | None:
        return self._tcs.get(round_number)

    def note_tc(self, tc: TimeoutCertificate) -> None:
        """Record a TC learned from a peer (e.g. attached to a proposal)."""
        self._tcs.setdefault(tc.round, tc)

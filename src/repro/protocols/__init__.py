"""Chain-based BFT SMR protocols.

The package follows the paper's prototype (Figure 1): every protocol
is a Steady State rule set (propose / vote / lock / commit) plus a
Pacemaker (round synchronization).  Five protocols are provided:

* :mod:`repro.protocols.diembft`       — DiemBFT (Figure 2), the substrate;
* :mod:`repro.protocols.sft_diembft`   — SFT-DiemBFT (Figure 4), the paper's
  main contribution, with marker and generalized-interval vote modes;
* :mod:`repro.protocols.fbft`          — the FBFT-adapted baseline
  (Appendix B) with quadratic extra-vote dissemination;
* :mod:`repro.protocols.streamlet`     — Streamlet (Figure 10);
* :mod:`repro.protocols.sft_streamlet` — SFT-Streamlet (Figure 11).
"""

from repro.protocols.base import BaseReplica, ReplicaConfig, ReplicaContext
from repro.protocols.pacemaker import Pacemaker, PacemakerConfig

__all__ = [
    "BaseReplica",
    "ReplicaConfig",
    "ReplicaContext",
    "Pacemaker",
    "PacemakerConfig",
]

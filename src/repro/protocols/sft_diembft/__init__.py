"""SFT-DiemBFT — strengthened fault tolerance for DiemBFT (Figure 4)."""

from repro.protocols.sft_diembft.replica import SFTDiemBFTReplica

__all__ = ["SFTDiemBFTReplica"]

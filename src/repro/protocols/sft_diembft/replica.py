"""The SFT-DiemBFT replica (Figure 4, plus the Section 3.4 extension).

Changes relative to plain DiemBFT, exactly the paper's list:

* **Local state** — per fork, the highest voted block
  (:class:`~repro.core.strong_vote.VotingHistory` maintains the voted
  tips).
* **Strong-vote / strong-QC** — votes carry a ``marker`` (or, in
  generalized mode, the interval set ``I``); QCs therefore aggregate
  strong-votes.
* **Endorsements** — tracked incrementally by
  :class:`~repro.core.endorsement.EndorsementTracker` as strong-QCs
  are learned from proposals, vote aggregation, and timeout messages.
* **Strong commit rule** — the strong 3-chain rule, evaluated by the
  shared :class:`~repro.core.commit_rules.CommitTracker`.

Endorsement bookkeeping is metrics-plumbing only: messages and votes
do not depend on it, so non-observer replicas skip it (``observer``
flag) without changing the protocol — this mirrors the paper's remark
that SFT adds only "marginal bookkeeping overhead".

For light clients (Section 5), observer leaders embed a commit log of
strong-commit level updates in their proposals; see
:mod:`repro.lightclient.proofs`.

Block-sync (``sync_enabled``) is inherited from the DiemBFT base:
synced ancestor chains enter through ``_handle_inserted_blocks``, so
their embedded strong-QCs feed the endorsement tracker exactly as
live-delivered ones do.
"""

from __future__ import annotations

from repro.core.commit_rules import CommitTracker
from repro.core.endorsement import EndorsementTracker
from repro.core.strong_vote import VotingHistory
from repro.protocols.base import ReplicaConfig, ReplicaContext
from repro.protocols.diembft.replica import DiemBFTReplica
from repro.types.block import Block
from repro.types.quorum_cert import QuorumCertificate
from repro.types.vote import StrongVote


class SFTDiemBFTReplica(DiemBFTReplica):
    """DiemBFT with strong-votes, endorsements, and strong commits."""

    def __init__(self, config: ReplicaConfig, context: ReplicaContext) -> None:
        self.endorsement: EndorsementTracker | None = None
        super().__init__(config, context)
        self.voting_history = VotingHistory(self.store, mode="round")
        self._commit_log_cursor = 0

    # ------------------------------------------------------------------
    # construction hooks
    # ------------------------------------------------------------------

    def _make_commit_tracker(self) -> CommitTracker:
        if self.config.observer:
            self.endorsement = EndorsementTracker(
                self.store,
                mode="round",
                naive=self.config.naive_endorsement,
            )
        return CommitTracker(
            self.store,
            self.config.f,
            rule="diembft",
            endorsement=self.endorsement,
        )

    def _make_vote(self, block: Block) -> StrongVote:
        """Strong-vote: marker (or interval set) from the voting history."""
        if self.config.generalized_intervals:
            intervals = self.voting_history.intervals_for(
                block, window=self.config.interval_window
            ).pairs()
            marker = self.voting_history.marker_for(block)
        else:
            intervals = ()
            marker = self.voting_history.marker_for(block)
        vote = StrongVote(
            block_id=block.id(),
            block_round=block.round,
            height=block.height,
            voter=self.replica_id,
            marker=marker,
            intervals=intervals,
        )
        return self._sign_vote(vote)

    def _after_vote(self, block: Block) -> None:
        self.voting_history.record_vote(block)
        if self.wal is not None:
            # fsync the voted-tip set alongside the vote itself: the
            # marker computation after a restart depends on it.
            self.wal.record_tips(
                self.voting_history.tip_keys(),
                self.voting_history.highest_voted_round,
            )

    def restore_from_wal(self, state) -> None:
        super().restore_from_wal(state)
        self.voting_history.restore(
            state.voted_tips, state.highest_voted_round
        )

    def _on_truncated(self, pruned) -> None:
        super()._on_truncated(pruned)
        self.voting_history.forget_pruned(pruned)
        if self.endorsement is not None:
            self.endorsement.forget_pruned(pruned)

    def _on_new_certification(self, qc: QuorumCertificate, now: float) -> None:
        # Feed endorsements before the commit check so that a 3-chain
        # completed by this QC is immediately evaluated with fresh counts.
        if self.endorsement is not None:
            self.endorsement.add_strong_qc(qc, now)
        self.commit_tracker.on_new_qc(qc, now)

    # ------------------------------------------------------------------
    # light-client commit log (Section 5)
    # ------------------------------------------------------------------

    def _proposal_commit_log(self) -> tuple:
        """Strong-commit updates since this replica's last proposal."""
        if self.endorsement is None:
            return ()
        events = self.commit_tracker.strong_events
        entries = tuple(
            (event.block_id.value, event.level)
            for event in events[self._commit_log_cursor:]
        )
        self._commit_log_cursor = len(events)
        return entries

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def strength_of(self, block_id) -> int:
        return self.commit_tracker.strength_of(block_id)

    def endorser_count(self, block_id) -> int:
        if self.endorsement is None:
            return 0
        return self.endorsement.count(block_id)

"""Streamlet — textbook streamlined blockchain (Figure 10)."""

from repro.protocols.streamlet.replica import StreamletConfig, StreamletReplica

__all__ = ["StreamletReplica", "StreamletConfig"]

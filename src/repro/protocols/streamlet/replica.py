"""The Streamlet replica (Figure 10).

Streamlet trades performance for simplicity:

* **lock-step rounds** of duration ``2Δ`` (Δ = assumed maximum network
  delay after GST) — the pacemaker is a fixed-interval clock, no
  timeout messages;
* the leader proposes extending **the longest certified chain** it
  knows;
* replicas vote (by **multicast**, not to a collector) for the first
  round-``r`` proposal iff it extends one of the longest certified
  chains they have seen;
* every replica aggregates votes and forms QCs locally;
* an **echo mechanism** re-multicasts every previously unseen message,
  giving the O(n³) per-round message complexity the paper cites;
* **commit rule**: three adjacent certified blocks at consecutive
  rounds commit the *middle* block and its ancestors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.commit_rules import CommitTracker
from repro.protocols.base import BaseReplica, ReplicaConfig, ReplicaContext
from repro.types.block import Block, BlockId
from repro.types.chain import BlockStore
from repro.types.messages import EchoMsg, ProposalMsg, QCMsg, VoteMsg
from repro.types.quorum_cert import QuorumCertificate
from repro.types.transaction import Payload, TxBatch
from repro.types.vote import Vote
from repro.types.block import make_genesis


@dataclass(slots=True)
class StreamletConfig(ReplicaConfig):
    """Streamlet adds the lock-step round duration (``2Δ``)."""

    round_duration: float = 0.5
    echo_enabled: bool = True


class StreamletReplica(BaseReplica):
    """One Streamlet replica on the simulated network."""

    def __init__(self, config: StreamletConfig, context: ReplicaContext) -> None:
        super().__init__(config, context)
        genesis, genesis_qc = make_genesis()
        self.genesis = genesis
        self.store = BlockStore(genesis, genesis_qc)
        self.store.record_qc(genesis_qc)
        self.current_round = 0
        self.commit_tracker = self._make_commit_tracker()
        self.commit_tracker.tracer = self.tracer
        self.payload_source = self._default_payload
        self._voted_rounds: set[int] = set()
        self._collected_votes: dict[BlockId, dict[int, object]] = {}
        self._vote_block_info: dict[BlockId, tuple] = {}
        self._formed_qcs: set[BlockId] = set()
        self._qcs_processed: set[BlockId] = set()
        self._pending_qcs: dict[BlockId, QuorumCertificate] = {}
        self._orphan_proposals: dict[BlockId, ProposalMsg] = {}
        self._seen_message_keys: set = set()
        # WAL highest certified QC stashed by restore_from_wal; fed
        # through _process_qc by rejoin_after_restart().
        self._wal_qc_high = None
        # Pre-crash longest certified chain height (0 = fresh boot):
        # the voting floor enforced by _maybe_vote after a restart.
        self._wal_certified_floor = 0
        # Statistics: registry-backed counters; the property shims below
        # keep the legacy attribute API (+= sites, test assertions).
        self._c_blocks_proposed = self.metrics.counter("blocks_proposed")
        self._c_votes_sent = self.metrics.counter("votes_sent")
        self._c_invalid_messages = self.metrics.counter("invalid_messages")
        self._init_sync()
        self._init_checkpoint()

    # ------------------------------------------------------------------
    # registry-backed statistics (legacy attribute API preserved)
    # ------------------------------------------------------------------

    @property
    def blocks_proposed(self) -> int:
        return self._c_blocks_proposed.value

    @blocks_proposed.setter
    def blocks_proposed(self, value: int) -> None:
        self._c_blocks_proposed.value = value

    @property
    def votes_sent(self) -> int:
        return self._c_votes_sent.value

    @votes_sent.setter
    def votes_sent(self, value: int) -> None:
        self._c_votes_sent.value = value

    @property
    def invalid_messages(self) -> int:
        return self._c_invalid_messages.value

    @invalid_messages.setter
    def invalid_messages(self, value: int) -> None:
        self._c_invalid_messages.value = value

    # ------------------------------------------------------------------
    # construction hooks (overridden by SFT-Streamlet)
    # ------------------------------------------------------------------

    def _make_commit_tracker(self) -> CommitTracker:
        return CommitTracker(self.store, self.config.f, rule="streamlet")

    def _make_vote(self, block: Block):
        vote = Vote(
            block_id=block.id(),
            block_round=block.round,
            height=block.height,
            voter=self.replica_id,
        )
        return self._sign_vote(vote)

    def _sign_vote(self, vote):
        signature = self.context.signing_key.sign(vote.signing_payload())
        return replace(vote, signature=signature)

    def _after_vote(self, block: Block) -> None:
        """Hook: called after voting for ``block``."""

    def _on_new_certification(self, qc: QuorumCertificate, now: float) -> None:
        self.commit_tracker.on_new_qc(qc, now)

    def _ingest_vote_for_endorsement(self, vote, now: float) -> None:
        """Hook: SFT-Streamlet feeds every observed vote to its tracker."""

    # ------------------------------------------------------------------
    # lifecycle: lock-step rounds
    # ------------------------------------------------------------------

    def start(self) -> None:
        now = self.context.now
        if now <= 0.0:
            self._enter_round(1)
            return
        # Crash-recovery restart: the cluster-wide lock-step clock kept
        # ticking while this replica was down, so rejoin at the *next*
        # round boundary rather than restarting from round 1.  Until
        # then current_round stays 0, which refuses every vote.
        period = self.config.round_duration
        boundary = int(now / period) + 1
        self.context.set_timer(
            boundary * period - now, self._enter_round, boundary + 1
        )

    def restore_from_wal(self, state) -> None:
        """Reload the durable voting record after a restart.

        The restored ``_voted_rounds`` set is the amnesia-safety core:
        Streamlet's one-vote-per-round guard consults it directly, so
        the reborn replica refuses every round its pre-crash
        incarnation already voted in.
        """
        super().restore_from_wal(state)
        self._voted_rounds |= state.voted_rounds()
        if state.qc_high is not None:
            self._wal_qc_high = state.qc_high
        # The lock analog: Streamlet's longest-chain voting rule is
        # only safe across a restart if the reborn replica remembers
        # how long the longest certified chain already was.  Its fresh
        # store knows only genesis; without this floor it would help
        # certify a second chain from scratch — no round is ever voted
        # twice, yet conflicting heights commit (the property fuzzer
        # found exactly that with three simultaneous restarts).
        self._wal_certified_floor = state.certified_height

    def rejoin_after_restart(self) -> None:
        """Kick off catch-up from the WAL's highest certified QC: its
        block is unknown to the fresh store, so ``_process_qc`` routes
        it to the block-sync / snapshot rejoin path."""
        qc, self._wal_qc_high = self._wal_qc_high, None
        if qc is not None:
            self._process_qc(qc, self.context.now)

    def _default_payload(self, now: float) -> Payload:
        return Payload(
            batch=TxBatch(
                count=self.config.block_batch_count,
                size_bytes=self.config.block_batch_bytes,
                created_at=now,
                tag=self.replica_id,
            )
        )

    def _enter_round(self, round_number: int) -> None:
        if self.crashed:
            return
        self.current_round = round_number
        if self.tracer is not None:
            self.tracer.emit(
                self.context.now, "round", round=round_number, detail="clock"
            )
        if self.sync is not None:
            # Lock-step rounds advance on the clock, so a replica whose
            # certified tip trails the round number is stale.
            self.sync.note_round_lag(
                round_number, self.store.highest_certified_block().round
            )
        if self.config.leader_of(round_number) == self.replica_id:
            self._propose(round_number)
        self.context.set_timer(
            self.config.round_duration, self._enter_round, round_number + 1
        )

    def _propose(self, round_number: int) -> None:
        parent = self._choose_parent()
        parent_qc = self.store.qc_for(parent.id())
        if parent_qc is None:
            return  # cannot justify the extension; skip the slot
        proposal = self._signed_proposal(parent, parent_qc, round_number)
        self.blocks_proposed += 1
        tracer = self.tracer
        if tracer is not None:
            block = proposal.block
            txs = block.payload.transactions
            tracer.emit(
                block.created_at, "propose", round=round_number,
                height=block.height, block=block.id().short(),
                value=sum(block.created_at - tx.submitted_at for tx in txs),
                count=len(txs),
            )
        self.context.multicast(proposal, include_self=True)

    def _signed_proposal(
        self, parent: Block, parent_qc, round_number: int, commit_log: tuple = ()
    ) -> ProposalMsg:
        """Build and sign a proposal extending ``parent`` (also the seam
        adversarial leader behaviours construct their blocks through)."""
        block = Block(
            parent_id=parent.id(),
            qc=parent_qc,
            round=round_number,
            height=parent.height + 1,
            proposer=self.replica_id,
            payload=self.payload_source(self.context.now),
            created_at=self.context.now,
            commit_log=commit_log,
        )
        proposal = ProposalMsg(
            sender=self.replica_id, round=round_number, block=block
        )
        signature = self.context.signing_key.sign(proposal.signing_payload())
        return replace(proposal, signature=signature)

    def _choose_parent(self) -> Block:
        """Tip of the longest certified chain (deterministic tiebreak)."""
        tips = self.store.longest_certified_tips()
        if not tips:
            return self.genesis
        return max(tips, key=lambda block: (block.round, block.id().hex()))

    # ------------------------------------------------------------------
    # message handling (+ echo)
    # ------------------------------------------------------------------

    def on_message(self, src: int, message) -> None:
        if isinstance(message, EchoMsg):
            # Unwrap; authenticity comes from the inner signature.
            self._handle_protocol_message(message.origin, message.inner, echoed=True)
        else:
            self._handle_protocol_message(src, message, echoed=False)

    def on_timer(self, tag) -> None:
        del tag

    def _message_key(self, message):
        if isinstance(message, ProposalMsg):
            return ("proposal", message.block.id())
        if isinstance(message, VoteMsg):
            return ("vote", message.vote.block_id, message.vote.voter)
        if isinstance(message, QCMsg):
            return ("qc", message.qc.block_id)
        return None

    def _should_echo(self, message) -> bool:
        """Echo policy: the linear-mode message flow must stay O(n).

        Votes travel point-to-point to the collector under
        ``linear_votes`` (echoing them would rebuild the all-to-all
        phase), and an aggregated-QC broadcast is never echoed — the
        collector already fanned it out to everyone.
        """
        if isinstance(message, QCMsg):
            return False
        if self.config.linear_votes and isinstance(message, VoteMsg):
            return False
        return True

    def _handle_protocol_message(self, src: int, message, echoed: bool) -> None:
        key = self._message_key(message)
        if key is not None:
            if key in self._seen_message_keys:
                return
            self._seen_message_keys.add(key)
            if self.config.echo_enabled and self._should_echo(message):
                self.context.multicast(
                    EchoMsg(sender=self.replica_id, inner=message, origin=src),
                    include_self=False,
                )
        if isinstance(message, ProposalMsg):
            self._on_proposal(src, message, echoed)
        elif isinstance(message, VoteMsg):
            self._on_vote(message)
        elif isinstance(message, QCMsg):
            self._on_qc_msg(message)

    # ------------------------------------------------------------------
    # proposals and voting
    # ------------------------------------------------------------------

    def _on_proposal(self, src: int, msg: ProposalMsg, echoed: bool) -> None:
        del echoed
        if not self._validate_proposal(src, msg):
            self.invalid_messages += 1
            return
        block = msg.block
        self._orphan_proposals.setdefault(block.id(), msg)
        inserted = self.store.add_block(block)
        if inserted:
            self._handle_inserted_blocks(inserted)
        elif self.sync is not None and block.parent_id not in self.store:
            self.sync.note_missing(block.parent_id)

    def _validate_proposal(self, src: int, msg: ProposalMsg) -> bool:
        block = msg.block
        if block.is_genesis() or block.qc is None:
            return False
        if block.round != msg.round or block.proposer != msg.sender:
            return False
        if self.config.leader_of(msg.round) != msg.sender:
            return False
        if block.qc.block_id != block.parent_id:
            return False
        del src  # echoes legitimately relay with src != sender
        if self.config.verify_signatures:
            if msg.signature is None or not self.context.registry.verify(
                msg.signing_payload(), msg.signature
            ):
                return False
            if not block.qc.validate(self.context.registry, self.config.quorum()):
                return False
        return True

    def _handle_inserted_blocks(self, inserted) -> None:
        now = self.context.now
        for block in inserted:
            if block.qc is not None:
                self._process_qc(block.qc, now)
            pending_qc = self._pending_qcs.pop(block.id(), None)
            if pending_qc is not None:
                self._process_qc(pending_qc, now)
        for block in inserted:
            msg = self._orphan_proposals.pop(block.id(), None)
            if msg is not None:
                self._maybe_vote(msg)

    def _maybe_vote(self, msg: ProposalMsg) -> None:
        block = msg.block
        round_number = block.round
        if round_number != self.current_round:
            return
        if round_number in self._voted_rounds:
            return
        if self.wal is not None and self.wal.has_voted(round_number):
            # Amnesia safety, belt-and-braces: the WAL is authoritative
            # about past votes even if the volatile set lags it.
            return
        parent = self.store.maybe_get(block.parent_id)
        if parent is None:
            return
        # Voting rule: the proposal must extend one of the longest
        # certified chains this replica has seen.
        if not self.store.is_certified(parent.id()):
            return
        if parent.height != self.store.certified_chain_height():
            return
        if parent.height < self._wal_certified_floor:
            # Restart safety: the pre-crash incarnation had certified
            # a chain this tall.  Until catch-up restores the store to
            # at least that height, voting for a shorter extension
            # could certify a conflicting branch from scratch.
            return
        vote = self._make_vote(block)
        self._voted_rounds.add(round_number)
        self.votes_sent += 1
        if self.tracer is not None:
            self.tracer.emit(
                self.context.now, "vote", round=round_number,
                height=block.height, block=block.id().short(),
            )
        self._after_vote(block)
        if self.wal is not None:
            # fsync the vote before it leaves the replica
            self.wal.record_vote(round_number, block.id(), vote)
        vote_msg = VoteMsg(sender=self.replica_id, vote=vote)
        if self.config.linear_votes:
            # Linear collection: one point-to-point vote to the next
            # round's leader (the collector), which aggregates and
            # re-broadcasts the certificate — O(n) per vote phase
            # instead of the multicast-plus-echo all-to-all.
            collector = self.config.leader_of(round_number + 1)
            self.context.send(collector, vote_msg)
        else:
            self.context.multicast(vote_msg, include_self=True)

    # ------------------------------------------------------------------
    # vote aggregation (every replica collects)
    # ------------------------------------------------------------------

    def _on_vote(self, msg: VoteMsg) -> None:
        vote = msg.vote
        if not 0 <= vote.voter < self.config.n:
            self.invalid_messages += 1
            return
        if self.config.verify_signatures:
            if vote.signature is None or not self.context.registry.verify(
                vote.signing_payload(), vote.signature
            ):
                self.invalid_messages += 1
                return
        if (
            self.config.linear_votes
            and self.config.leader_of(vote.block_round + 1) != self.replica_id
        ):
            return  # not the collector for this round
        self._ingest_vote_for_endorsement(vote, self.context.now)
        block_id = vote.block_id
        if block_id in self._formed_qcs:
            return
        bucket = self._collected_votes.setdefault(block_id, {})
        bucket[vote.voter] = vote
        self._vote_block_info[block_id] = (vote.block_round, vote.height)
        if len(bucket) >= self.config.quorum():
            self._form_qc(block_id)

    def _form_qc(self, block_id: BlockId) -> None:
        bucket = self._collected_votes.pop(block_id, None)
        if bucket is None:
            return
        round_number, height = self._vote_block_info.pop(block_id)
        votes = tuple(bucket[voter] for voter in sorted(bucket))
        qc = QuorumCertificate(
            block_id=block_id, round=round_number, height=height, votes=votes
        )
        self._formed_qcs.add(block_id)
        if self.tracer is not None:
            # Streamlet forms the QC the instant the quorum completes,
            # so collection and formation share a timestamp.
            self.tracer.emit(
                self.context.now, "votes_collected", round=round_number,
                height=height, block=block_id.short(), count=len(votes),
            )
            self.tracer.emit(
                self.context.now, "qc_formed", round=round_number,
                height=height, block=block_id.short(), count=len(votes),
            )
        self._process_qc(qc, self.context.now)
        if (
            self.config.linear_votes
            and self.config.leader_of(round_number + 1) == self.replica_id
        ):
            self.context.multicast(
                QCMsg(sender=self.replica_id, qc=qc), include_self=False
            )

    def _on_qc_msg(self, msg: QCMsg) -> None:
        """Ingest a collector's aggregated-QC broadcast (linear mode)."""
        qc = msg.qc
        if qc.is_genesis():
            return
        if self.config.verify_signatures and not qc.validate(
            self.context.registry, self.config.quorum()
        ):
            self.invalid_messages += 1
            return
        self._formed_qcs.add(qc.block_id)
        self._collected_votes.pop(qc.block_id, None)
        self._vote_block_info.pop(qc.block_id, None)
        self._process_qc(qc, self.context.now)

    def _process_qc(self, qc: QuorumCertificate, now: float) -> None:
        if qc.block_id in self.store:
            if qc.block_id not in self._qcs_processed:
                self._qcs_processed.add(qc.block_id)
                self.store.record_qc(qc)
                if self.wal is not None:
                    # Streamlet has no qc_high; persist the highest
                    # certified QC as the restart catch-up anchor, and
                    # the longest certified chain height as the voting
                    # floor a reborn instance must respect.
                    self.wal.record_qc_high(qc)
                    self.wal.record_certified_height(
                        self.store.certified_chain_height()
                    )
                tracer = self.tracer
                if tracer is None:
                    self._on_new_certification(qc, now)
                else:
                    tracer.emit(
                        now, "qc", round=qc.round, height=qc.height,
                        block=qc.block_id.short(), count=len(qc.votes),
                    )
                    commits_before = len(self.commit_tracker.commit_order)
                    self._on_new_certification(qc, now)
                    for event in self.commit_tracker.commit_order[commits_before:]:
                        tracer.emit(
                            now, "commit", round=event.round,
                            height=event.height, block=event.block_id.short(),
                        )
        else:
            self._pending_qcs.setdefault(qc.block_id, qc)
            if self.sync is not None and not qc.is_genesis():
                self.sync.note_missing(qc.block_id)

    # ------------------------------------------------------------------
    # checkpoint truncation
    # ------------------------------------------------------------------

    def _on_truncated(self, pruned) -> None:
        super()._on_truncated(pruned)
        for block_id in pruned:
            self._collected_votes.pop(block_id, None)
            self._vote_block_info.pop(block_id, None)
            self._formed_qcs.discard(block_id)
            self._qcs_processed.discard(block_id)
            self._pending_qcs.pop(block_id, None)
            self._orphan_proposals.pop(block_id, None)
            self._seen_message_keys.discard(("proposal", block_id))
            self._seen_message_keys.discard(("qc", block_id))
        self._seen_message_keys = {
            key
            for key in self._seen_message_keys
            if not (key[0] == "vote" and key[1] in pruned)
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def committed_blocks(self) -> list:
        return list(self.commit_tracker.commit_order)

    def committed_tx_count(self) -> int:
        total = 0
        for event in self.commit_tracker.commit_order:
            block = self.store.maybe_get(event.block_id)
            if block is not None:
                total += block.payload.tx_count()
        return total

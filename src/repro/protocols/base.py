"""The chain-based BFT SMR prototype (Figure 1) and replica plumbing.

Every protocol replica is an event-driven state machine: some transport
calls :meth:`BaseReplica.deliver` and some clock fires timers via
:meth:`BaseReplica.on_timer`.  Concrete protocols fill in the
protocol-specific rules — proposing, voting, locking, committing, and
round synchronization — exactly the holes the paper's prototype leaves
open.

Replicas are deliberately transport-agnostic.  All interaction with the
outside world goes through :class:`ReplicaContext`, which is assembled
from two narrow structural interfaces:

* :class:`Transport` — message egress (``send`` / ``multicast``) plus
  endpoint detachment for crash faults;
* :class:`Clock` — the time source (``now``) and timer scheduling
  (``set_timer`` / ``cancel_timer``).

The deterministic simulator provides one implementation pair
(:class:`repro.net.sim.SimTransport` / :class:`repro.net.sim.SimClock`)
and the real-network runtime another
(:class:`repro.rt_net.transport.TcpTransport` /
:class:`repro.rt_net.transport.WallClock`), so the identical protocol
code runs under exhaustive simulation or real asyncio TCP sockets.
Protocol code must only ever call ``ctx.send`` / ``ctx.multicast`` /
``ctx.set_timer`` / ``ctx.cancel_timer`` / ``ctx.now`` (plus the key
material accessors) — never reach into a concrete transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.crypto.registry import KeyRegistry
from repro.types.messages import (
    CheckpointMsg,
    SnapshotRequestMsg,
    SnapshotResponseMsg,
    SyncRequestMsg,
    SyncResponseMsg,
)


@runtime_checkable
class Transport(Protocol):
    """Message egress as seen by a replica.

    Implementations route by replica id.  ``send`` and ``multicast``
    are fire-and-forget: delivery latency, ordering, and loss semantics
    belong to the implementation (the simulated network models partial
    synchrony; the TCP transport gives per-connection FIFO delivery).
    """

    def send(self, src: int, dst: int, message) -> None: ...

    def multicast(self, src: int, message, include_self: bool = False) -> None: ...

    def unregister(self, replica_id: int) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """Time source and timer scheduling as seen by a replica.

    ``now`` is seconds as a float; the epoch is implementation-defined
    (simulated time starts at 0, the wall clock at process start), so
    protocol code must only ever compare or subtract timestamps.
    ``set_timer`` returns an opaque handle accepted by
    ``cancel_timer``; cancelling an already-fired or already-cancelled
    timer is a no-op.
    """

    @property
    def now(self) -> float: ...

    def set_timer(self, delay: float, callback, *args): ...

    def cancel_timer(self, handle) -> None: ...


def round_robin_leader(round_number: int, n: int) -> int:
    """The paper's leader election: round-robin rotation."""
    return round_number % n


@dataclass(slots=True)
class ReplicaConfig:
    """Static per-replica configuration.

    ``f`` is the assumed Byzantine bound with ``n = 3f + 1`` replicas
    (quorums have ``2f + 1``).  Knobs:

    * ``round_timeout`` / ``timeout_multiplier`` / ``max_timeout`` —
      pacemaker timer policy;
    * ``qc_extra_wait`` — Section 4.2: leaders delay QC formation this
      many seconds after reaching ``2f + 1`` votes to fold in straggler
      votes (0 disables);
    * ``generalized_intervals`` / ``interval_window`` — Section 3.4
      strong-vote mode;
    * ``observer`` — whether this replica pays for endorsement /
      strength bookkeeping (metrics); protocol behaviour is unaffected;
    * ``naive_endorsement`` — count every indirect vote as an
      endorsement, ignoring markers (the flawed scheme Appendix C
      refutes; only the fuzzer's invariant oracle turns this on);
    * ``verify_signatures`` — validate every signature on receipt
      (on for tests; large benches may disable for speed);
    * ``block_batch_count`` / ``block_batch_bytes`` — synthetic payload
      shape (the paper's ~1000 txns / ~450 KB per block);
    * ``sync_enabled`` — the block-sync / catch-up subprotocol
      (:mod:`repro.sync`): fetch missing certified ancestor chains
      from peers and recover QCs from timeout-attached votes.  Off
      preserves the pre-sync behaviour byte-for-byte (determinism
      differentials, bench baselines);
    * ``sync_retry`` / ``sync_max_blocks`` / ``sync_round_lag`` —
      sync tuning: per-peer response deadline before rotating, blocks
      per response, and how far the round may run ahead of the local
      certified tip before a tip catch-up fires;
    * ``batch_size`` / ``max_batch_bytes`` — mempool drain caps when a
      real-transaction workload is attached: at most ``batch_size``
      transactions and (when non-zero) ``max_batch_bytes`` payload
      bytes per proposed block;
    * ``pipelined_proposals`` — mempool drain discipline.  Off is
      stop-and-wait re-proposal: a leader's payload repeats the
      unacknowledged front of its queue until commit feedback drains
      it.  On marks drained transactions in flight so consecutive
      proposals ship fresh batches — a leader proposes round ``r+1``'s
      transactions without waiting for round ``r``'s commit;
    * ``linear_votes`` — Linear-PBFT-style vote collection: votes go
      point-to-point to the round collector, which multicasts the
      aggregated QC (:class:`~repro.types.messages.QCMsg`), making the
      vote phase O(n) instead of all-to-all.  Off preserves the
      pre-feature message flow byte-for-byte, same discipline as
      ``sync_enabled``;
    * ``checkpoint_interval`` — the PBFT checkpoint subprotocol
      (:mod:`repro.sync.checkpoint`): every this-many commits each
      replica signs a digest of its executed kvstore state; ``2f + 1``
      matching digests form a stable checkpoint that truncates history
      below it and lets far-behind replicas join via snapshot transfer
      instead of full replay.  0 (the default) disables it entirely,
      preserving pre-feature runs byte-for-byte;
    * ``trace_level`` — structured lifecycle tracing (:mod:`repro.obs`):
      ``"off"`` (default, byte-identical runs), ``"spans"`` (the
      ``proposed → qc_formed → endorsed → committed`` span chain plus
      sync/checkpoint request spans into the cluster-wide trace log),
      or ``"full"`` (spans plus one event per delivered message);
    * ``flight_recorder`` — the always-on per-replica ring of recent
      trace events, dumped to a JSON artifact when the invariant
      oracle reports a violation.  Memory-only: it never affects
      behaviour, messages, or metrics output.
    """

    n: int
    f: int
    round_timeout: float = 1.0
    timeout_multiplier: float = 1.5
    max_timeout: float = 8.0
    qc_extra_wait: float = 0.0
    generalized_intervals: bool = False
    interval_window: int | None = None
    observer: bool = True
    naive_endorsement: bool = False
    verify_signatures: bool = True
    drop_stale_messages: bool = True
    block_batch_count: int = 1000
    block_batch_bytes: int = 450_000
    sync_enabled: bool = True
    sync_retry: float = 0.25
    sync_max_blocks: int = 8
    sync_round_lag: int = 4
    batch_size: int = 256
    max_batch_bytes: int = 0
    pipelined_proposals: bool = False
    linear_votes: bool = False
    checkpoint_interval: int = 0
    trace_level: str = "off"
    flight_recorder: bool = True
    leader_fn: object = field(default=None)

    def quorum(self) -> int:
        return 2 * self.f + 1

    def leader_of(self, round_number: int) -> int:
        if self.leader_fn is not None:
            return self.leader_fn(round_number, self.n)
        return round_robin_leader(round_number, self.n)


class ReplicaContext:
    """Everything a replica may do to the outside world.

    Binds one replica id to a :class:`Transport` and a :class:`Clock`
    (plus the key registry and optional trace/WAL attachments), so
    protocol code never touches global state or a concrete transport
    implementation; this is also the seam fault-injection tests use.
    The full replica-facing surface is ``send`` / ``multicast`` /
    ``set_timer`` / ``cancel_timer`` / ``now`` / ``detach`` and the
    key material (``registry`` / ``signing_key``).
    """

    def __init__(
        self,
        replica_id: int,
        transport: Transport,
        clock: Clock,
        registry: KeyRegistry,
        trace=None,
        durable=None,
    ) -> None:
        self.replica_id = replica_id
        self.transport = transport
        self.clock = clock
        self.registry = registry
        self.signing_key = registry.signing_key(replica_id)
        #: Cluster-wide span log (repro.obs.TraceLog) when tracing is
        #: enabled; None otherwise.
        self.trace = trace
        #: This replica's DurableState WAL record when the cluster has
        #: a crash-recovery schedule; None otherwise (the default), in
        #: which case no WAL work happens and runs replay byte-identically.
        self.durable = durable

    @property
    def now(self) -> float:
        return self.clock.now

    def send(self, dst: int, message) -> None:
        """Queue ``message`` for delivery to replica ``dst``."""
        self.transport.send(self.replica_id, dst, message)

    def multicast(self, message, include_self: bool = True) -> None:
        """Queue ``message`` for delivery to every replica."""
        self.transport.multicast(self.replica_id, message, include_self=include_self)

    def set_timer(self, delay: float, callback, *args):
        """Run ``callback(*args)`` after ``delay`` seconds; returns a handle."""
        return self.clock.set_timer(delay, callback, *args)

    def cancel_timer(self, handle) -> None:
        """Cancel a pending timer from :meth:`set_timer` (no-op when fired)."""
        if handle is not None:
            self.clock.cancel_timer(handle)

    def detach(self) -> None:
        """Remove this replica's transport endpoint (crash faults)."""
        self.transport.unregister(self.replica_id)


class BaseReplica:
    """Common lifecycle for every protocol replica."""

    #: Whether a reborn instance reloads its WAL.  The scripted
    #: ``amnesia`` behaviour sets this False to demonstrate that the
    #: durable voting record is load-bearing (the amnesia differential).
    wal_restore = True

    def __init__(self, config: ReplicaConfig, context: ReplicaContext) -> None:
        self.config = config
        self.context = context
        self.replica_id = context.replica_id
        self.crashed = False
        self.crash_at: float | None = None
        #: DurableState write-ahead record (crash-recovery runs only).
        self.wal = getattr(context, "durable", None)
        self.sync = None  # SyncManager, attached by _init_sync()
        self.checkpoint = None  # CheckpointManager, via _init_checkpoint()
        from repro.obs import FlightRecorder, MetricsRegistry, Tracer

        self.metrics = MetricsRegistry()
        span_log = (
            getattr(context, "trace", None)
            if config.trace_level != "off" else None
        )
        flight = FlightRecorder() if config.flight_recorder else None
        #: None iff both the span log and the flight ring are off —
        #: every emit site guards on this single attribute, so disabled
        #: runs stay byte-identical and effectively free.
        self.tracer = (
            Tracer(context.replica_id, span_log=span_log, flight=flight,
                   level=config.trace_level)
            if span_log is not None or flight is not None
            else None
        )

    def _init_sync(self) -> None:
        """Attach the block-sync manager (subclasses call after the
        block store exists; no-op when ``sync_enabled`` is off)."""
        if self.config.sync_enabled:
            from repro.sync import SyncManager

            self.sync = SyncManager(self)

    def _init_checkpoint(self) -> None:
        """Attach the checkpoint manager (subclasses call after the
        block store and commit tracker exist; no-op when
        ``checkpoint_interval`` is 0)."""
        if self.config.checkpoint_interval > 0:
            from repro.sync import CheckpointManager

            self.checkpoint = CheckpointManager(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Called once when the simulation begins."""
        raise NotImplementedError

    def crash(self) -> None:
        """Benign (crash) fault: the replica stops entirely."""
        self.crashed = True
        self.context.detach()

    def restore_from_wal(self, state) -> None:
        """Reload safety-critical voting state after a restart.

        Called by :meth:`~repro.runtime.cluster.Cluster.restart_replica`
        on the *replacement* instance, before :meth:`start`.  Protocol
        families override; the base implementation only counts the
        restore so the recovery metrics section sees it.
        """
        state.note_restore()

    def rejoin_after_restart(self) -> None:
        """Called once after a restarted replica's :meth:`start`; the
        protocol families override to kick off block-sync / snapshot
        catch-up from the WAL's highest known certificate."""

    def deliver(self, src: int, message) -> None:
        """Network entry point; dispatches to ``on_message``.

        Sync traffic is intercepted here, before protocol dispatch:
        the catch-up subprotocol is family-agnostic plumbing (it only
        reads/extends the block store), so neither DiemBFT's collector
        logic nor Streamlet's echo layer ever sees it.
        """
        if self.crashed:
            return
        tracer = self.tracer
        if tracer is not None and tracer.full:
            tracer.emit(
                self.context.now, "deliver",
                detail=f"{type(message).__name__} from {src}",
            )
        if isinstance(message, SyncRequestMsg):
            self._on_sync_request(src, message)
            return
        if isinstance(message, SyncResponseMsg):
            self._on_sync_response(src, message)
            self._poll_checkpoint()
            return
        if self.checkpoint is not None:
            if isinstance(message, CheckpointMsg):
                self.checkpoint.on_checkpoint(src, message)
                self._poll_checkpoint()
                return
            if isinstance(message, SnapshotRequestMsg):
                self.checkpoint.serve_snapshot(src, message)
                return
            if isinstance(message, SnapshotResponseMsg):
                self.checkpoint.on_snapshot_response(src, message)
                self._poll_checkpoint()
                return
        self.on_message(src, message)
        self._poll_checkpoint()

    # ------------------------------------------------------------------
    # sync plumbing (shared by both protocol families)
    # ------------------------------------------------------------------

    def _on_sync_request(self, src: int, msg) -> None:
        """Serve a peer's catch-up request (adversary seam: a
        response-withholding behaviour overrides this to drop it)."""
        if self.sync is not None:
            self.sync.serve(src, msg)

    def _on_sync_response(self, src: int, msg) -> None:
        if self.sync is None:
            return
        inserted, tip_qc = self.sync.accept(src, msg)
        if tip_qc is not None:
            self._process_qc(tip_qc, self.context.now)
        if inserted:
            self._handle_inserted_blocks(inserted)

    def _process_qc(self, qc, now: float) -> None:
        """Provided by the protocol families (QC ingestion path)."""
        raise NotImplementedError

    def _handle_inserted_blocks(self, inserted) -> None:
        """Provided by the protocol families (post-insertion path)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # checkpoint plumbing (shared by both protocol families)
    # ------------------------------------------------------------------

    def _poll_checkpoint(self) -> None:
        """Let the checkpoint manager observe newly committed blocks.

        Every commit is triggered by some delivered message (votes,
        QCs, proposals, sync responses), so polling after delivery
        sees each one; with checkpointing off this is a no-op check.
        """
        if self.checkpoint is not None and not self.crashed:
            self.checkpoint.poll(self.context.now)

    def _on_truncated(self, pruned) -> None:
        """History below a stable checkpoint was pruned; clear memo
        state keyed by the dropped block ids.  Protocol families extend
        this with their own per-block structures."""
        self.commit_tracker.forget_pruned(pruned)

    # ------------------------------------------------------------------
    # protocol-specific holes (Figure 1)
    # ------------------------------------------------------------------

    def on_message(self, src: int, message) -> None:
        raise NotImplementedError

    def on_timer(self, tag) -> None:
        raise NotImplementedError

"""FBFT's flexible quorums adapted to DiemBFT (Appendix B).

The baseline achieves strengthened fault tolerance with *direct* votes
only: the strong commit rule requires each 3-chain block to carry
``x + f + 1`` distinct signed votes.  Because liveness caps QC size at
``2f + 1``, any extra votes that arrive after the QC formed must be
multicast separately by the round's vote collector — one multicast per
late vote, up to ``f`` of them per round, hence the O(f·n) = O(n²)
amortized message complexity per decision the paper derives.

Benchmark E5 (``benchmarks/test_message_complexity.py``) measures this
against SFT-DiemBFT's linear footprint.

Block-sync (``sync_enabled``) is inherited from the DiemBFT base; a
timeout-recovered vote that arrives after this replica's local QC
formed flows through :meth:`_on_late_vote` like any other straggler
vote, i.e. it is multicast and counted toward flexible-quorum
assurance.
"""

from __future__ import annotations

from repro.core.commit_rules import CommitTracker
from repro.protocols.base import ReplicaConfig, ReplicaContext
from repro.protocols.diembft.replica import DiemBFTReplica
from repro.types.block import BlockId
from repro.types.chain import BlockStore
from repro.types.messages import ExtraVotesMsg
from repro.types.quorum_cert import QuorumCertificate


class DirectVoteTracker:
    """Counts *direct* votes per block (FBFT's notion of assurance).

    Exposes the same listener/count interface as
    :class:`~repro.core.endorsement.EndorsementTracker`, so the shared
    :class:`~repro.core.commit_rules.CommitTracker` evaluates the
    Appendix-B strong commit rule without modification.
    """

    def __init__(self, store: BlockStore) -> None:
        self._store = store
        self._voters: dict[BlockId, set[int]] = {}
        self._listeners: list = []

    def add_listener(self, listener) -> None:
        self._listeners.append(listener)

    def add_vote(self, vote, now: float = 0.0) -> bool:
        """Record one direct vote; returns True if it was new."""
        block = self._store.maybe_get(vote.block_id)
        if block is None:
            return False
        voters = self._voters.setdefault(vote.block_id, set())
        if vote.voter in voters:
            return False
        voters.add(vote.voter)
        count = len(voters)
        for listener in self._listeners:
            listener(block, count, now)
        return True

    def add_qc(self, qc: QuorumCertificate, now: float = 0.0) -> None:
        for vote in qc.votes:
            self.add_vote(vote, now)

    def count(self, block_id: BlockId) -> int:
        voters = self._voters.get(block_id)
        return len(voters) if voters is not None else 0

    def count_at(self, block_id: BlockId, k: int) -> int:
        """Direct votes are threshold-independent."""
        del k
        return self.count(block_id)

    def endorsers(self, block_id: BlockId) -> frozenset:
        return frozenset(self._voters.get(block_id, ()))


class FBFTDiemBFTReplica(DiemBFTReplica):
    """DiemBFT with Appendix-B flexible-quorum strong commits."""

    def __init__(self, config: ReplicaConfig, context: ReplicaContext) -> None:
        self.direct_votes: DirectVoteTracker | None = None
        super().__init__(config, context)
        self.extra_vote_multicasts = 0

    def _make_commit_tracker(self) -> CommitTracker:
        if self.config.observer:
            self.direct_votes = DirectVoteTracker(self.store)
        return CommitTracker(
            self.store,
            self.config.f,
            rule="diembft",
            endorsement=self.direct_votes,
        )

    def _on_new_certification(self, qc: QuorumCertificate, now: float) -> None:
        if self.direct_votes is not None:
            self.direct_votes.add_qc(qc, now)
        self.commit_tracker.on_new_qc(qc, now)

    def _on_late_vote(self, vote) -> None:
        """A vote beyond the QC: multicast it so everyone can count it.

        This is the Appendix-B dissemination step — each late vote
        costs one multicast (n messages).
        """
        if self.direct_votes is not None:
            self.direct_votes.add_vote(vote, self.context.now)
        self.extra_vote_multicasts += 1
        self.context.multicast(
            ExtraVotesMsg(
                sender=self.replica_id, round=vote.block_round, votes=(vote,)
            ),
            include_self=False,
        )

    def _on_other_message(self, src: int, message) -> None:
        if not isinstance(message, ExtraVotesMsg):
            return
        del src  # extra votes are self-authenticating via vote signatures
        for vote in message.votes:
            if self.config.verify_signatures:
                if vote.signature is None or not self.context.registry.verify(
                    vote.signing_payload(), vote.signature
                ):
                    self.invalid_messages += 1
                    continue
            if self.direct_votes is not None:
                self.direct_votes.add_vote(vote, self.context.now)

"""FBFT adapted to DiemBFT (Appendix B) — the quadratic baseline."""

from repro.protocols.fbft.replica import DirectVoteTracker, FBFTDiemBFTReplica

__all__ = ["FBFTDiemBFTReplica", "DirectVoteTracker"]

"""Application layer: state machines executed over the committed log.

BFT SMR's contract (Section 2) is a linearizable log "akin to a single
non-faulty server".  This package closes the loop: a deterministic
state machine consumes each replica's committed blocks in order, so
tests and examples can assert the end result — identical state and
state hashes on every honest replica — rather than just matching block
ids.
"""

from repro.app.kvstore import KVCommand, KVStateMachine, LedgerExecutor

__all__ = ["KVCommand", "KVStateMachine", "LedgerExecutor"]

"""A deterministic key-value state machine over the committed log.

:class:`KVStateMachine` applies ``SET``/``DEL``/``TRANSFER`` commands
encoded in transaction payloads; :class:`LedgerExecutor` drains a
replica's commit log into a state machine incrementally.  Determinism
is the whole point: after any prefix of the log, every honest replica
must hold exactly the same state (verified via :meth:`state_hash`),
which is the linearizability check the SMR definition demands.

Commands serialize into :class:`~repro.types.transaction.Transaction`
payloads, so the application layer rides on the ordinary client path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import HashDigest, hash_fields
from repro.types.transaction import Transaction


@dataclass(frozen=True, slots=True)
class KVCommand:
    """One state-machine command.

    ``op`` ∈ {"set", "del", "transfer"}:

    * ``set key value``        — write a value;
    * ``del key``              — remove a key;
    * ``transfer key key2 n``  — move ``n`` units between integer
      accounts (external validity: fails, without effect, when the
      source balance is insufficient — the "externally valid"
      application predicate of Section 2).
    """

    op: str
    key: str
    value: str = ""
    key2: str = ""
    amount: int = 0

    def encode(self) -> bytes:
        return "|".join(
            (self.op, self.key, self.value, self.key2, str(self.amount))
        ).encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes) -> "KVCommand | None":
        try:
            op, key, value, key2, amount = payload.decode("utf-8").split("|")
            return cls(op=op, key=key, value=value, key2=key2,
                       amount=int(amount))
        except (ValueError, UnicodeDecodeError):
            return None

    def to_transaction(self, client_id: int, sequence: int,
                       submitted_at: float = 0.0) -> Transaction:
        return Transaction(
            client_id=client_id,
            sequence=sequence,
            payload=self.encode(),
            submitted_at=submitted_at,
        )


class KVStateMachine:
    """Deterministic in-memory KV store with integer accounts."""

    def __init__(self) -> None:
        self._state: dict[str, str] = {}
        self.applied = 0
        self.rejected = 0

    def apply(self, command: KVCommand) -> bool:
        """Apply one command; returns False when externally invalid."""
        if command.op == "set":
            self._state[command.key] = command.value
        elif command.op == "del":
            self._state.pop(command.key, None)
        elif command.op == "transfer":
            source = self._as_int(self._state.get(command.key, "0"))
            destination = self._as_int(self._state.get(command.key2, "0"))
            if (
                source is None
                or destination is None
                or command.amount < 0
                or source < command.amount
            ):
                # Externally invalid (Section 2): insufficient balance,
                # or an endpoint holding a non-numeric value (the key
                # spaces of set and transfer overlap by design).
                self.rejected += 1
                return False
            if command.key != command.key2:
                self._state[command.key] = str(source - command.amount)
                self._state[command.key2] = str(destination + command.amount)
        else:
            self.rejected += 1
            return False
        self.applied += 1
        return True

    @staticmethod
    def _as_int(value) -> int | None:
        try:
            return int(value or "0")
        except ValueError:
            return None

    def apply_transaction(self, transaction: Transaction) -> bool:
        command = KVCommand.decode(transaction.payload)
        if command is None:
            self.rejected += 1
            return False
        return self.apply(command)

    def get(self, key: str) -> str | None:
        return self._state.get(key)

    def __len__(self) -> int:
        return len(self._state)

    def state_hash(self) -> HashDigest:
        """Order-independent digest of the full state."""
        items = tuple(sorted(self._state.items()))
        return hash_fields("kv-state", items)

    def snapshot(self) -> dict:
        return dict(self._state)

    def items(self) -> tuple:
        """The full state as sorted ``(key, value)`` pairs (wire form)."""
        return tuple(sorted(self._state.items()))

    def install(self, items) -> None:
        """Replace the full state with a snapshot's key/value pairs."""
        self._state = {key: value for key, value in items}


class LedgerExecutor:
    """Incrementally executes one replica's committed log.

    Call :meth:`sync` after (or during) a run; it applies the payload
    transactions of newly committed blocks in commit order.  The
    executor never re-applies a block, so repeated syncs are cheap.
    """

    def __init__(self, replica, state_machine: KVStateMachine | None = None):
        self.replica = replica
        self.state = state_machine or KVStateMachine()
        self._cursor = 0
        self._applied_txids: set = set()
        self.blocks_executed = 0
        self.duplicates_skipped = 0

    def sync(self) -> int:
        """Apply newly committed blocks; returns how many were applied.

        A transaction may legitimately appear in several blocks (a
        leader re-proposes anything not yet committed), so execution
        deduplicates by transaction id — the standard SMR exactly-once
        rule.
        """
        applied = 0
        while self.sync_next() is not None:
            applied += 1
        return applied

    def sync_next(self):
        """Apply exactly one pending commit event; None when caught up.

        Returns the :class:`~repro.core.commit_rules.CommitEvent` just
        consumed (whether or not its block was still in the store) so a
        caller — e.g. the checkpoint manager — can observe the executed
        state at an exact commit height before applying the next one.
        """
        commit_order = self.replica.commit_tracker.commit_order
        if self._cursor >= len(commit_order):
            return None
        event = commit_order[self._cursor]
        self._cursor += 1
        block = self.replica.store.maybe_get(event.block_id)
        if block is None:
            return event
        for transaction in block.payload.transactions:
            txid = transaction.txid()
            if txid in self._applied_txids:
                self.duplicates_skipped += 1
                continue
            self._applied_txids.add(txid)
            self.state.apply_transaction(transaction)
        self.blocks_executed += 1
        return event

    def install_snapshot(
        self,
        state_items,
        applied_txids,
        cursor: int,
        applied_count: int = 0,
        rejected_count: int = 0,
    ) -> None:
        """Replace the executor's world with a validated checkpoint.

        ``cursor`` is the commit-log position already reflected in the
        snapshot (execution resumes from there); ``applied_txids`` is
        the dedup set at the checkpoint boundary — without it a
        transaction committed both below and above the checkpoint would
        be applied twice on the joiner and its state would diverge.
        """
        self.state = KVStateMachine()
        self.state.install(state_items)
        self.state.applied = applied_count
        self.state.rejected = rejected_count
        self._applied_txids = set(applied_txids)
        self._cursor = cursor
        self.blocks_executed = 0
        self.duplicates_skipped = 0

    @property
    def cursor(self) -> int:
        """Commit-log position the executor has applied through."""
        return self._cursor

    def applied_txids(self) -> tuple:
        """The dedup set as a sorted tuple (digest/wire form)."""
        return tuple(sorted(self._applied_txids, key=lambda txid: txid.value))

    def state_hash(self) -> HashDigest:
        return self.state.state_hash()

"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` needs `bdist_wheel` for modern editable installs;
this offline environment lacks it, so `python setup.py develop` (or
pip's legacy resolver) provides the editable install path.  All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Geo-distributed strong-commit latency — a miniature Figure 7a.

Runs SFT-DiemBFT over the paper's symmetric 3-region topology
(inter-region delay δ) and prints the x-strong commit latency curve:
latency grows with x, with a visible jump at 1.1f (one extra
strong-QC round-trip past the 3-chain) and a larger one near 2f
(waiting for straggler votes to enter a strong-QC).

The sweep over δ runs as a campaign — the scenario matrix engine
expands δ ∈ {100, 200} ms into jobs and executes them in parallel
worker processes (the same machinery as ``repro campaign run``).

By default this uses n = 31 for a fast run; pass ``--paper`` for the
full n = 100 / δ ∈ {100, 200} ms configuration of the paper (a couple
of minutes of wall time).

Run:  python examples/geo_latency.py [--paper]
"""

import sys

from repro import Campaign, ScenarioSpec, run_campaign
from repro.analysis import format_fig7_table, line_chart
from repro.core import ratio_grid
from repro.experiments import reports_from_series


def main() -> None:
    paper_scale = "--paper" in sys.argv
    n = 100 if paper_scale else 31
    duration = 40.0 if paper_scale else 20.0

    base = ScenarioSpec(
        name="geo_latency",
        protocol="sft-diembft",
        n=n,
        topology="symmetric",
        jitter=0.004,
        duration=duration,
        round_timeout=2.0,
        seeds=(11,),
        verify_signatures=False,
        observers=5 if n >= 50 else "all",
        block_batch_count=1000,
        block_batch_bytes=450_000,
        ratios=ratio_grid(),
        cutoff_fraction=0.66,
    )
    campaign = Campaign(base, matrix={"delta": [0.100, 0.200]})
    print(f"running symmetric geo-distribution, n={n}: "
          f"{campaign.job_count()} jobs over 2 workers…")
    report = run_campaign(campaign, workers=2)

    table_series = {}
    chart_series = {}
    for job in report["jobs"]:
        label = f"δ={job['params']['delta'] * 1000:.0f}ms"
        points = job["metrics"]["strong_latency_series"]
        table_series[label] = reports_from_series(points)
        chart_series[label] = [
            (point["ratio"], point["mean_latency_s"]) for point in points
        ]

    print()
    print(format_fig7_table(
        table_series,
        title=f"Strong commit latency, symmetric geo-distribution (n={n})",
    ))
    print()
    print(line_chart(
        chart_series, x_label="x-strong (f)", y_label="latency (s)"
    ))
    print(f"\ncampaign wall-clock: {report['wall_clock_s']:.1f}s "
          f"({report['workers']} workers)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Geo-distributed strong-commit latency — a miniature Figure 7a.

Runs SFT-DiemBFT over the paper's symmetric 3-region topology
(inter-region delay δ) and prints the x-strong commit latency curve:
latency grows with x, with a visible jump at 1.1f (one extra
strong-QC round-trip past the 3-chain) and a larger one near 2f
(waiting for straggler votes to enter a strong-QC).

By default this uses n = 31 for a fast run; pass ``--paper`` for the
full n = 100 / δ ∈ {100, 200} ms configuration of the paper (a couple
of minutes of wall time).

Run:  python examples/geo_latency.py [--paper]
"""

import sys

from repro import ExperimentConfig, build_cluster, ratio_grid, strong_latency_series
from repro.analysis import format_fig7_table, line_chart


def run_once(n: int, delta: float, duration: float) -> list:
    config = ExperimentConfig(
        protocol="sft-diembft",
        n=n,
        topology="symmetric",
        delta=delta,
        jitter=0.004,
        duration=duration,
        round_timeout=max(1.0, 10 * delta),
        seed=11,
        verify_signatures=False,
        observers=5 if n >= 50 else "all",
    )
    cluster = build_cluster(config).run()
    return strong_latency_series(
        cluster, ratios=ratio_grid(), created_before=duration * 0.66
    )


def main() -> None:
    paper_scale = "--paper" in sys.argv
    n = 100 if paper_scale else 31
    duration = 40.0 if paper_scale else 20.0
    deltas = (0.100, 0.200)

    series_by_delta = {}
    for delta in deltas:
        label = f"δ={delta * 1000:.0f}ms"
        print(f"running symmetric geo-distribution, n={n}, {label}…")
        series_by_delta[label] = run_once(n, delta, duration)

    print()
    print(format_fig7_table(
        series_by_delta,
        title=f"Strong commit latency, symmetric geo-distribution (n={n})",
    ))

    chart_series = {
        label: [(point.ratio, point.mean_latency) for point in series]
        for label, series in series_by_delta.items()
    }
    print()
    print(line_chart(chart_series, x_label="x-strong (f)", y_label="latency (s)"))


if __name__ == "__main__":
    main()

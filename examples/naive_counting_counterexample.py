#!/usr/bin/env python3
"""Appendix C walkthrough: why counting all indirect votes is unsafe.

Builds the exact fork structure of Figure 9 — f + 1 Byzantine replicas
plus one honest replica (h_{f+1}) that legally switches branches — and
evaluates the resilience of both branches under two accounting schemes:

* naive: every vote for a descendant counts towards a block, so BOTH
  conflicting chains reach (f+1)-strong — two conflicting (f+1)-strong
  commits under t = f + 1 faults, violating Definition 1;
* SFT markers: h_{f+1}'s vote carries marker = r + 1 and does not
  endorse the blocks it already "betrayed", keeping the main chain at
  f-strong — no conflicting pair above f exists, so Definition 1 holds.

Run:  python examples/naive_counting_counterexample.py
"""

from repro.adversary import AppendixCScenario


def main() -> None:
    f = 2
    scenario = AppendixCScenario(f=f)
    result = scenario.run()

    print(f"Appendix C scenario with f={f} (n={3 * f + 1}), "
          f"t = f+1 = {f + 1} Byzantine replicas\n")

    print("Fork structure (Figure 9):")
    print(f"  main chain: B_(r-1) ← B_r ← B_(r+1) ← B_(r+2) ← B_(r+3)")
    print(f"  fork:       B_(r-1) ← B'_(r+1) ← B'_(r+4) ← B'_(r+5) ← B'_(r+6) ← B'_(r+7)")
    print(f"  h_(f+1) votes B'_(r+1) then B_(r+2);")
    print(f"  h_1..h_f vote the main chain then the fork extension.\n")

    print("naive accounting (count every indirect vote):")
    print(f"  main  B_r      strength = {result.naive_main_strength}")
    print(f"  fork  B'_(r+4) strength = {result.naive_fork_strength}")
    if result.naive_violates_definition_1():
        print(f"  → BOTH conflicting chains claim ≥ (f+1) = {f + 1}-strong:")
        print(f"    Definition 1 is VIOLATED under t = {f + 1} faults.\n")

    print("SFT accounting (markers identify non-endorsing votes):")
    print(f"  main  B_r      strength = {result.sft_main_strength}")
    print(f"  fork  B'_(r+4) strength = {result.sft_fork_strength}")
    if result.sft_is_safe():
        print(f"  → the main chain stays at f = {f}-strong; its guarantee")
        print(f"    is void at t = f+1 anyway, so a single (f+1)-strong fork")
        print(f"    is permitted — Definition 1 HOLDS.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Appendix D: strengthened fault tolerance on Streamlet.

Runs both Streamlet and SFT-Streamlet side by side, showing that the
SFT layer ports across protocols: height-based markers, k-endorsements
and the middle-commit strong 3-chain rule.  Also demonstrates the
message-complexity gulf between Streamlet's all-to-all + echo pattern
(O(n³) per round) and DiemBFT's linear votes.

Run:  python examples/streamlet_sft.py
"""

from repro import (
    ExperimentConfig,
    build_cluster,
    check_commit_safety,
    strong_latency_series,
)


def run(protocol: str):
    config = ExperimentConfig(
        protocol=protocol,
        n=7,
        topology="uniform",
        uniform_delay=0.010,
        jitter=0.002,
        duration=8.0,
        seed=3,
        block_batch_count=10,
        block_batch_bytes=1_000,
    )
    cluster = build_cluster(config).run()
    check_commit_safety(cluster.replicas)
    return cluster


def main() -> None:
    print("Streamlet vs SFT-Streamlet vs SFT-DiemBFT (n=7, 8s simulated)\n")
    rows = []
    for protocol in ("streamlet", "sft-streamlet", "sft-diembft"):
        cluster = run(protocol)
        replica = cluster.replicas[0]
        commits = len(replica.commit_tracker.commit_order)
        messages = cluster.network.messages_sent
        rows.append((protocol, commits, messages, messages / max(1, commits)))
    print(f"{'protocol':<15}{'commits':>9}{'messages':>11}{'msgs/block':>12}")
    for protocol, commits, messages, per_block in rows:
        print(f"{protocol:<15}{commits:>9}{messages:>11}{per_block:>12.0f}")

    print("\nSFT-Streamlet strength growth (middle-commit strong 3-chain):")
    cluster = run("sft-streamlet")
    series = strong_latency_series(
        cluster, ratios=(1.0, 1.5, 2.0), created_before=5.0
    )
    for point in series:
        latency = (
            f"{point.mean_latency * 1000:.0f} ms"
            if point.mean_latency is not None
            else "not reached"
        )
        print(f"  x={point.ratio:.1f}f (level {point.level}): {latency} "
              f"({point.samples}/{point.eligible} block views)")

    print(
        "\nNote (Appendix D.4): reverting an SFT-Streamlet strong commit"
        "\nrequires the adversary to regrow a competitive-length certified"
        "\nchain (≈ h rounds of sustained corruption), while SFT-DiemBFT"
        "\nonly needs one higher-round certified block."
    )


if __name__ == "__main__":
    main()

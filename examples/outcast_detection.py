#!/usr/bin/env python3
"""Outcast replicas and health monitoring (Sections 4.1 and 5).

Reproduces the asymmetric-geo phenomenon in miniature: a far-away
minority region whose strong-votes rarely (or never) reach strong-QCs
caps the whole system's achievable strong-commit level.  The Section 5
health monitor detects exactly those replicas from the chain alone.

The cluster comes from the declarative scenario path — the same spec
ships as ``scenarios/outcast_regions.toml`` for ``repro campaign run``.

Run:  python examples/outcast_detection.py
"""

from repro import ScenarioSpec
from repro.analysis import QCDiversityMonitor


def main() -> None:
    # A 13-replica cluster: 10 nearby, 3 in a distant region, with a
    # round timeout short enough that distant leaders get replaced —
    # the δ=200 ms regime of Figure 7b, scaled down.
    n, f = 13, 4

    spec = ScenarioSpec(
        name="outcast_regions",
        protocol="sft-diembft",
        n=n,
        f=f,
        topology="regions",
        region_sizes=(10, 3),
        delta=0.100,
        duration=20.0,
        jitter=0.002,
        round_timeout=0.08,
        timeout_multiplier=1.0,
        seeds=(17,),
        block_batch_count=10,
        block_batch_bytes=1_000,
    )
    cluster = spec.build().run()

    replica = cluster.replicas[0]
    commits = replica.commit_tracker.commit_order
    print(f"n={n}, f={f}: {len(commits)} commits, "
          f"{replica.current_round} rounds\n")

    monitor = QCDiversityMonitor(n)
    monitor.observe_chain(replica.store, commits)
    print(f"{'replica':>8}{'QCs':>7}{'rate':>8}   status")
    for health in monitor.report():
        status = ""
        if health.is_outcast():
            status = "OUTCAST — reconfigure or replace (Section 4.1)"
        elif health.appearance_rate < 0.5:
            status = "straggler"
        print(f"{health.replica_id:>8}{health.qc_appearances:>7}"
              f"{health.appearance_rate:>8.2f}   {status}")

    cap = monitor.max_achievable_strength(f)
    print(f"\nmax achievable strong-commit level from current QC "
          f"diversity: {cap} (2f = {2 * f})")
    best = max(
        (timeline.current for _, timeline in replica.commit_tracker.timelines()),
        default=-1,
    )
    print(f"best strength actually reached: {best}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Section 4.2: trading regular-commit latency for strong-commit latency.

Leaders can wait an extra period after collecting 2f + 1 strong-votes,
folding straggler votes into larger, more diverse strong-QCs.  A small
regular-latency sacrifice collapses the 2f-strong latency onto the
regular-commit line — the dynamic knob the paper suggests for blocks
carrying high-value transactions.

Run:  python examples/latency_tradeoff.py
"""

from repro import (
    ExperimentConfig,
    build_cluster,
    level_for_ratio,
    regular_commit_latency,
    strong_commit_latency,
)


def main() -> None:
    n, duration = 31, 16.0
    f = (n - 1) // 3
    waits = (0.0, 0.01, 0.02, 0.05)
    print(f"SFT-DiemBFT, n={n}, symmetric 3 regions δ=50ms — "
          f"extra-wait sweep\n")
    print(f"{'extra wait':>11}{'QC size':>9}{'regular(s)':>12}"
          f"{'1.5f-strong(s)':>15}{'2f-strong(s)':>14}")
    for wait in waits:
        config = ExperimentConfig(
            protocol="sft-diembft",
            n=n,
            topology="symmetric",
            delta=0.050,
            jitter=0.004,
            duration=duration,
            round_timeout=1.0,
            qc_extra_wait=wait,
            seed=21,
            verify_signatures=False,
        )
        cluster = build_cluster(config).run()
        cutoff = duration * 0.6
        regular, _ = regular_commit_latency(cluster, created_before=cutoff)
        mid, _, _ = strong_commit_latency(
            cluster, level_for_ratio(1.5, f), created_before=cutoff
        )
        top, _, _ = strong_commit_latency(
            cluster, 2 * f, created_before=cutoff
        )
        qc_size = len(cluster.replicas[0].qc_high.votes)
        print(f"{wait * 1000:>9.0f}ms{qc_size:>9}{regular:>12.3f}"
              f"{mid:>15.3f}{top:>14.3f}")

    print(
        "\nWith enough extra wait the strong-QCs contain every replica,"
        "\nso a regular 3-chain commit is simultaneously 2f-strong and"
        "\nthe curves merge (Figure 8's right-hand regime)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Section 4.2: trading regular-commit latency for strong-commit latency.

Leaders can wait an extra period after collecting 2f + 1 strong-votes,
folding straggler votes into larger, more diverse strong-QCs.  A small
regular-latency sacrifice collapses the 2f-strong latency onto the
regular-commit line — the dynamic knob the paper suggests for blocks
carrying high-value transactions.

The extra-wait sweep runs as a campaign (matrix over ``qc_extra_wait``,
the Figure 8 axis) with parallel workers — the same machinery as
``repro campaign run scenarios/fig8_tradeoff.toml``.

Run:  python examples/latency_tradeoff.py
"""

from repro import Campaign, ScenarioSpec, run_campaign


def main() -> None:
    n, duration = 31, 16.0
    waits = (0.0, 0.01, 0.02, 0.05)
    base = ScenarioSpec(
        name="latency_tradeoff",
        protocol="sft-diembft",
        n=n,
        topology="symmetric",
        delta=0.050,
        jitter=0.004,
        duration=duration,
        round_timeout=1.0,
        seeds=(21,),
        verify_signatures=False,
        block_batch_count=1000,
        block_batch_bytes=450_000,
        ratios=(1.5, 2.0),
        cutoff_fraction=0.6,
    )
    campaign = Campaign(base, matrix={"qc_extra_wait": list(waits)})
    print(f"SFT-DiemBFT, n={n}, symmetric 3 regions δ=50ms — "
          f"extra-wait sweep ({campaign.job_count()} jobs, 2 workers)\n")
    report = run_campaign(campaign, workers=2)

    print(f"{'extra wait':>11}{'regular(s)':>12}"
          f"{'1.5f-strong(s)':>15}{'2f-strong(s)':>14}")
    for job in report["jobs"]:
        wait = job["params"]["qc_extra_wait"]
        metrics = job["metrics"]
        by_ratio = {
            point["ratio"]: point["mean_latency_s"]
            for point in metrics["strong_latency_series"]
        }
        print(f"{wait * 1000:>9.0f}ms{metrics['regular_latency_s']:>12.3f}"
              f"{by_ratio[1.5]:>15.3f}{by_ratio[2.0]:>14.3f}")

    print(
        "\nWith enough extra wait the strong-QCs contain every replica,"
        "\nso a regular 3-chain commit is simultaneously 2f-strong and"
        "\nthe curves merge (Figure 8's right-hand regime)."
        f"\n\ncampaign wall-clock: {report['wall_clock_s']:.1f}s"
        f" ({report['workers']} workers)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Section 5: proving strong commits to a light client.

Runs SFT-DiemBFT, then plays the role of a wallet app that holds only
the replica public keys: it consumes certified commit logs (carried
inside blocks and covered by the blocks' QCs) and learns, with no
access to the chain, how strong each block's commit has become.
Tampered proofs are rejected.

Run:  python examples/light_client_proofs.py
"""

from repro import ExperimentConfig, LightClient, build_cluster
from repro.lightclient import ProofError, StrongCommitProof, build_proof
from repro.types.quorum_cert import QuorumCertificate


def main() -> None:
    config = ExperimentConfig(
        protocol="sft-diembft",
        n=7,
        topology="uniform",
        uniform_delay=0.010,
        jitter=0.002,
        duration=8.0,
        round_timeout=0.5,
        seed=9,
        block_batch_count=10,
        block_batch_bytes=1_000,
    )
    cluster = build_cluster(config).run()
    replica = cluster.replicas[0]

    client = LightClient(
        cluster.registry, n=config.n, f=config.resolved_f()
    )
    print(f"light client initialized with the PKI only "
          f"(n={config.n}, f={config.resolved_f()})\n")

    proofs_verified = 0
    entries_accepted = 0
    sample_proof = None
    for block in replica.store.all_blocks():
        proof = build_proof(replica.store, block.id())
        if proof is None:
            continue
        accepted = client.verify(proof)
        proofs_verified += 1
        entries_accepted += len(accepted)
        if sample_proof is None and accepted:
            sample_proof = proof
    print(f"verified {proofs_verified} certified commit-log proofs "
          f"({entries_accepted} level updates accepted)")

    strongest = sorted(
        client.proven_levels.items(), key=lambda item: -item[1]
    )[:5]
    print("\nstrongest proven commits (block id prefix → level):")
    for block_id_bytes, level in strongest:
        print(f"  {block_id_bytes.hex()[:10]}… → {level}-strong")

    # Tamper with a proof: drop votes below the quorum.
    if sample_proof is not None:
        truncated = QuorumCertificate(
            block_id=sample_proof.qc.block_id,
            round=sample_proof.qc.round,
            height=sample_proof.qc.height,
            votes=sample_proof.qc.votes[:2],
        )
        try:
            client.verify(
                StrongCommitProof(block=sample_proof.block, qc=truncated)
            )
            print("\ntampered proof accepted — BUG")
        except ProofError as error:
            print(f"\ntampered proof rejected as expected: {error}")


if __name__ == "__main__":
    main()

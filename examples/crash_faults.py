#!/usr/bin/env python3
"""Theorem 2 in action: crash faults cap strength at (2f - c).

Crashes c replicas at t = 0 and shows that, during the optimistic
period, committed blocks still strong commit up to exactly
(2f - c)-strong — the crashed replicas can never endorse, but every
live replica's strong-vote eventually lands in a strong-QC via the
round-robin rotation (at latest when it acts as vote collector).

Run:  python examples/crash_faults.py
"""

from repro import ExperimentConfig, build_cluster, check_commit_safety


def run_with_crashes(crash_count: int) -> None:
    n, duration = 10, 20.0
    config = ExperimentConfig(
        protocol="sft-diembft",
        n=n,
        f=3,
        topology="uniform",
        uniform_delay=0.010,
        jitter=0.002,
        duration=duration,
        round_timeout=0.5,
        seed=5,
        block_batch_count=10,
        block_batch_bytes=1_000,
        crash_schedule=tuple(
            (n - 1 - index, 0.0) for index in range(crash_count)
        ),
    )
    f = config.resolved_f()
    cluster = build_cluster(config).run()
    survivors = [replica for replica in cluster.replicas if not replica.crashed]
    check_commit_safety(survivors)

    replica = survivors[0]
    commits = replica.commit_tracker.commit_order
    # Look at settled blocks only (created in the first half of the run).
    strengths = []
    for event in commits:
        timeline = replica.commit_tracker.timeline_of(event.block_id)
        if timeline is None or timeline.block.created_at > duration / 2:
            continue
        strengths.append(timeline.current)
    best = max(strengths) if strengths else -1
    expected = 2 * f - crash_count
    print(
        f"c={crash_count} crashes: {len(commits):4d} commits, "
        f"max strength reached = {best} "
        f"(theorem bound 2f-c = {expected}) "
        f"{'✓' if best == expected else '✗'}"
    )


def main() -> None:
    print("SFT-DiemBFT with n=10, f=3 — strength caps under crash faults\n")
    for crash_count in range(0, 4):
        run_with_crashes(crash_count)
    print(
        "\nEach crash permanently removes one potential endorser, so the"
        "\nbest achievable strong commit drops one level per crash — while"
        "\nregular (f-strong) commits continue unaffected up to c = f."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run SFT-DiemBFT and watch a block's resilience grow.

Simulates a 7-replica cluster (f = 2) on a flat 10 ms network, then
shows, for one committed block, the timeline of its strength levels:
it commits at f-strong (the regular 3-chain rule) and climbs to
2f-strong as successor strong-QCs accumulate endorsements — the SFT
analogue of a transaction getting "buried deeper" in Nakamoto
consensus.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, build_cluster, check_commit_safety


def main() -> None:
    config = ExperimentConfig(
        protocol="sft-diembft",
        n=7,
        topology="uniform",
        uniform_delay=0.010,
        jitter=0.002,
        duration=10.0,
        round_timeout=0.5,
        seed=7,
        block_batch_count=100,
        block_batch_bytes=10_000,
    )
    f = config.resolved_f()
    print(f"running {config.protocol} with n={config.n}, f={f} "
          f"for {config.duration:.0f}s of simulated time…")

    cluster = build_cluster(config).run()
    check_commit_safety(cluster.replicas)

    replica = cluster.replicas[0]
    commits = replica.commit_tracker.commit_order
    print(f"replica 0 committed {len(commits)} blocks "
          f"(highest round {replica.current_round})\n")

    # Pick a block from the middle of the run and print its strength
    # timeline as seen by replica 0.
    event = commits[len(commits) // 2]
    block = replica.store.get(event.block_id)
    timeline = replica.commit_tracker.timeline_of(event.block_id)
    print(f"block at round {block.round} (created t={block.created_at:.3f}s):")
    print(f"  regular commit (f-strong, f={f}) at t={event.committed_at:.3f}s "
          f"→ latency {event.latency() * 1000:.0f} ms")
    for level in range(f, 2 * f + 1):
        reached = timeline.first_reached(level)
        if reached is None:
            print(f"  {level}-strong: not reached")
            continue
        latency_ms = (reached - block.created_at) * 1000
        extra = " ← tolerates up to 2f faults" if level == 2 * f else ""
        print(f"  {level}-strong at t={reached:.3f}s "
              f"→ latency {latency_ms:.0f} ms{extra}")

    print("\nendorser counts for the same block's 3-chain:")
    cursor = block
    for _ in range(3):
        count = replica.endorser_count(cursor.id())
        print(f"  round {cursor.round}: {count}/{config.n} endorsers")
        children = replica.store.children(cursor.id())
        if not children:
            break
        cursor = replica.store.get(children[0])

    stats = cluster.message_stats()
    print(f"\nnetwork: {stats['sent']} messages, "
          f"{stats['bytes'] / 1e6:.1f} MB simulated")


if __name__ == "__main__":
    main()

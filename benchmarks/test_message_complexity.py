"""E5 — message complexity: SFT-DiemBFT O(n) vs FBFT-adapted O(n²).

Section 3.2 / Appendix B: adapting FBFT's flexible quorums to DiemBFT
forces the vote collector to multicast up to f late votes per round
(one multicast each), i.e. O(f·n) = O(n²) messages per block decision,
while SFT-DiemBFT keeps the linear 2n (proposal multicast + votes to
the next leader).

This bench sweeps n and reports messages per committed block for both
protocols; the growth exponent is estimated from the endpoints.
"""

import math

from repro.runtime.config import ExperimentConfig, build_cluster
from repro.runtime.metrics import check_commit_safety

SWEEP_N = (7, 13, 25, 49, 100)


def run_uniform(protocol: str, n: int, duration: float, seed: int = 31):
    config = ExperimentConfig(
        protocol=protocol,
        n=n,
        topology="uniform",
        uniform_delay=0.010,
        jitter=0.002,
        duration=duration,
        round_timeout=1.0,
        seed=seed,
        verify_signatures=False,
        observers=(0,),
        block_batch_count=100,
        block_batch_bytes=10_000,
    )
    return build_cluster(config).run()


def messages_per_block(cluster) -> float:
    observer = cluster.observer_replicas()[0]
    blocks = len(observer.commit_tracker.commit_order)
    return cluster.network.messages_sent / max(1, blocks)


def test_message_complexity_sft_vs_fbft(benchmark):
    rows = []

    def sweep():
        for n in SWEEP_N:
            duration = 10.0 if n <= 25 else 5.0
            per_block = {}
            for protocol in ("sft-diembft", "fbft"):
                cluster = run_uniform(protocol, n, duration)
                check_commit_safety(cluster.observer_replicas())
                per_block[protocol] = messages_per_block(cluster)
            rows.append((n, per_block["sft-diembft"], per_block["fbft"]))
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Messages per committed block — SFT-DiemBFT vs FBFT-adapted")
    print(f"{'n':>5}{'SFT (O(n))':>14}{'FBFT (O(n²))':>14}{'ratio':>8}")
    for n, sft, fbft in rows:
        print(f"{n:>5}{sft:>14.1f}{fbft:>14.1f}{fbft / sft:>8.2f}")

    # Growth exponents from the sweep endpoints.
    n_low, sft_low, fbft_low = rows[0]
    n_high, sft_high, fbft_high = rows[-1]
    scale = math.log(n_high / n_low)
    sft_exponent = math.log(sft_high / sft_low) / scale
    fbft_exponent = math.log(fbft_high / fbft_low) / scale
    print(f"\nestimated growth: SFT ~ n^{sft_exponent:.2f}, "
          f"FBFT ~ n^{fbft_exponent:.2f}")

    # SFT stays (near-)linear; FBFT clearly super-linear.
    assert sft_exponent < 1.25
    assert fbft_exponent > 1.5
    # At the paper's n = 100, FBFT costs several× more messages.
    assert fbft_high > 2.5 * sft_high

"""E8 — SFT-Streamlet (Appendix D): strength growth and protocol costs.

Appendix D ports SFT to Streamlet.  This bench measures (a) the
strength-growth latency curve on SFT-Streamlet, (b) the message cost
per committed block against SFT-DiemBFT (Streamlet's all-to-all votes
plus echo give O(n³) per round vs DiemBFT's linear pattern), and (c)
the D.4 comparison: the depth of certified-fork regrowth an adversary
needs to threaten a strong commit in each protocol (1 block for
DiemBFT's round-based rules vs a full competitive chain for
Streamlet's height-based rules).
"""

from repro.runtime.config import ExperimentConfig, build_cluster
from repro.runtime.metrics import check_commit_safety, strong_latency_series

RATIOS = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0)


def run(protocol: str, n: int = 13):
    config = ExperimentConfig(
        protocol=protocol,
        n=n,
        topology="uniform",
        uniform_delay=0.010,
        jitter=0.002,
        duration=12.0,
        round_timeout=0.5,
        seed=43,
        verify_signatures=False,
        block_batch_count=10,
        block_batch_bytes=1_000,
    )
    return build_cluster(config).run()


def test_sft_streamlet_strength_and_costs(benchmark):
    results = {}

    def run_all():
        for protocol in ("sft-streamlet", "sft-diembft"):
            cluster = run(protocol)
            check_commit_safety(cluster.replicas)
            cutoff = cluster.simulator.now * 0.6
            series = strong_latency_series(
                cluster, RATIOS, created_before=cutoff
            )
            observer = cluster.replicas[0]
            blocks = len(observer.commit_tracker.commit_order)
            results[protocol] = (
                series,
                cluster.network.messages_sent / max(1, blocks),
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("SFT-Streamlet vs SFT-DiemBFT (n=13, f=4, uniform 10ms)")
    print(f"{'x-strong':>9}"
          + "".join(f"{proto:>16}" for proto in results))
    for index, ratio in enumerate(RATIOS):
        row = f"{ratio:>8.1f}f"
        for protocol in results:
            point = results[protocol][0][index]
            cell = (
                f"{point.mean_latency * 1000:.0f}ms"
                if point.mean_latency is not None
                else "—"
            )
            row += f"{cell:>16}"
        print(row)
    print(f"{'msgs/blk':>9}" + "".join(
        f"{results[protocol][1]:>16.0f}" for protocol in results
    ))

    streamlet_series, streamlet_msgs = results["sft-streamlet"]
    diembft_series, diembft_msgs = results["sft-diembft"]
    # Both reach 2f-strong.
    assert streamlet_series[-1].mean_latency is not None
    assert diembft_series[-1].mean_latency is not None
    # Streamlet pays an order of magnitude more messages (echo, O(n³)).
    assert streamlet_msgs > 5 * diembft_msgs
    # Strength grows monotonically on both.
    for series, _msgs in results.values():
        latencies = [point.mean_latency for point in series]
        assert all(
            later >= earlier * 0.99
            for earlier, later in zip(latencies, latencies[1:])
        )

"""E1 — Figure 7a: strong commit latency, symmetric geo-distribution.

Paper setup: n = 100 replicas in 3 even regions, inter-region delay
δ ∈ {100, 200} ms, saturated 1000-txn/450 KB blocks; y-axis is the
mean latency from block creation to x-strong commit, x ∈ [f, 2f].

Expected shape (paper): latency grows near-linearly with x; a jump at
1.1f (one extra strong-QC round-trip beyond the 3-chain) and a larger
jump at 2f (stragglers' votes enter strong-QCs rarely); δ = 200 ms
shifts the whole curve up.
"""

from repro.analysis import format_fig7_table, line_chart
from repro.runtime.metrics import check_commit_safety

from benchmarks.conftest import latency_table_rows, run_symmetric


def test_fig7a_symmetric_geo_distribution(benchmark):
    results = {}

    def run_both():
        for delta in (0.100, 0.200):
            cluster = run_symmetric(delta=delta)
            check_commit_safety(cluster.observer_replicas())
            results[f"δ={delta * 1000:.0f}ms"] = latency_table_rows(cluster)
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print(format_fig7_table(
        results,
        title="Figure 7a — strong commit latency, symmetric geo (n=100, f=33)",
    ))
    print()
    print(line_chart(
        {
            label: [(point.ratio, point.mean_latency) for point in series]
            for label, series in results.items()
        },
        x_label="x-strong (f)",
        y_label="latency (s)",
    ))

    # Shape assertions mirroring the paper's observations.
    for label, series in results.items():
        by_ratio = {point.ratio: point for point in series}
        base = by_ratio[1.0].mean_latency
        step = by_ratio[1.1].mean_latency
        top = by_ratio[2.0].mean_latency
        near_top = by_ratio[1.9].mean_latency
        assert base is not None and top is not None
        # Jump at 1.1f: at least one more QC round-trip.
        assert step > base * 1.05, label
        # Monotone growth overall.
        assert top > near_top > step * 0.99, label
        # 2f costs markedly more than 1.9f (straggler effect).
        assert top > near_top * 1.1, label
    # δ = 200 ms curve sits above δ = 100 ms.
    assert (
        results["δ=200ms"][0].mean_latency
        > results["δ=100ms"][0].mean_latency
    )

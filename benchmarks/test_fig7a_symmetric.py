"""E1 — Figure 7a: strong commit latency, symmetric geo-distribution.

Paper setup: n = 100 replicas in 3 even regions, inter-region delay
δ ∈ {100, 200} ms, saturated 1000-txn/450 KB blocks; y-axis is the
mean latency from block creation to x-strong commit, x ∈ [f, 2f].

Expected shape (paper): latency grows near-linearly with x; a jump at
1.1f (one extra strong-QC round-trip beyond the 3-chain) and a larger
jump at 2f (stragglers' votes enter strong-QCs rarely); δ = 200 ms
shifts the whole curve up.

Runs as a two-job campaign (matrix over δ) through the experiment
engine — the same path as ``repro campaign run scenarios/fig7a_*``.
"""

from repro.analysis import format_fig7_table, line_chart
from repro.experiments import Campaign, CampaignRunner

from benchmarks.conftest import series_from_job, symmetric_spec


def test_fig7a_symmetric_geo_distribution(benchmark):
    campaign = Campaign(
        symmetric_spec(delta=0.100), matrix={"delta": [0.100, 0.200]}
    )
    report = {}

    def run_campaign():
        report.update(CampaignRunner(campaign.expand(), workers=1).run())
        return report

    benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    results = {}
    for job_entry in report["jobs"]:
        assert job_entry["metrics"]["safety_ok"], job_entry["job_id"]
        label = f"δ={job_entry['params']['delta'] * 1000:.0f}ms"
        results[label] = series_from_job(job_entry)

    print()
    print(format_fig7_table(
        results,
        title="Figure 7a — strong commit latency, symmetric geo (n=100, f=33)",
    ))
    print()
    print(line_chart(
        {
            label: [(point.ratio, point.mean_latency) for point in series]
            for label, series in results.items()
        },
        x_label="x-strong (f)",
        y_label="latency (s)",
    ))

    # Shape assertions mirroring the paper's observations.
    for label, series in results.items():
        by_ratio = {point.ratio: point for point in series}
        base = by_ratio[1.0].mean_latency
        step = by_ratio[1.1].mean_latency
        top = by_ratio[2.0].mean_latency
        near_top = by_ratio[1.9].mean_latency
        assert base is not None and top is not None
        # Jump at 1.1f: at least one more QC round-trip.
        assert step > base * 1.05, label
        # Monotone growth overall.
        assert top > near_top > step * 0.99, label
        # 2f costs markedly more than 1.9f (straggler effect).
        assert top > near_top * 1.1, label
    # δ = 200 ms curve sits above δ = 100 ms.
    assert (
        results["δ=200ms"][0].mean_latency
        > results["δ=100ms"][0].mean_latency
    )

"""E6 — liveness bounds: Theorems 2 and 3 as measurements.

Theorem 2: after GST with c ≤ f benign (crash) faults, a block is
(2f − c)-strong committed within n + 2 rounds.  Theorem 3: with
generalized interval votes, the same holds for t Byzantine faults at
(2f − t).  The bench sweeps the fault count and reports, per c, the
best achieved strength and the mean/max time to reach it.
"""

from repro.adversary import make_silent
from repro.protocols.sft_diembft import SFTDiemBFTReplica
from repro.runtime.config import ExperimentConfig, build_cluster
from repro.runtime.metrics import check_commit_safety

N, F = 10, 3


def run_with_faults(fault_count: int, byzantine: bool, generalized: bool):
    config = ExperimentConfig(
        protocol="sft-diembft",
        n=N,
        f=F,
        topology="uniform",
        uniform_delay=0.010,
        jitter=0.002,
        duration=24.0,
        round_timeout=0.5,
        seed=37,
        generalized_intervals=generalized,
        block_batch_count=10,
        block_batch_bytes=1_000,
        crash_schedule=(
            ()
            if byzantine
            else tuple((N - 1 - index, 0.0) for index in range(fault_count))
        ),
    )
    cluster = build_cluster(config)
    overrides = {}
    if byzantine:
        for index in range(fault_count):
            overrides[N - 1 - index] = make_silent(SFTDiemBFTReplica)
    cluster.build(replica_overrides=overrides)
    cluster.run()
    return cluster


def strength_stats(cluster, target: int):
    replica = next(
        replica for replica in cluster.replicas if not replica.crashed
    )
    horizon = cluster.simulator.now * 0.5
    latencies = []
    best = -1
    for _, timeline in replica.commit_tracker.timelines():
        if timeline.block.is_genesis() or timeline.block.created_at > horizon:
            continue
        best = max(best, timeline.current)
        latency = timeline.latency_to(target)
        if latency is not None:
            latencies.append(latency)
    mean = sum(latencies) / len(latencies) if latencies else None
    worst = max(latencies) if latencies else None
    return best, mean, worst, len(latencies)


def test_liveness_bounds_theorem_2_and_3(benchmark):
    rows = []

    def sweep():
        for fault_count in range(0, F + 1):
            cluster = run_with_faults(fault_count, byzantine=False,
                                      generalized=False)
            check_commit_safety(
                [replica for replica in cluster.replicas if not replica.crashed]
            )
            target = 2 * F - fault_count
            rows.append(
                ("crash", fault_count, target)
                + strength_stats(cluster, target)
            )
        for fault_count in (1, 2):
            cluster = run_with_faults(fault_count, byzantine=True,
                                      generalized=True)
            honest = [
                replica
                for replica in cluster.replicas
                if replica.replica_id < N - fault_count
            ]
            check_commit_safety(honest)
            target = 2 * F - fault_count
            rows.append(
                ("byzantine+intervals", fault_count, target)
                + strength_stats(cluster, target)
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(f"Liveness bounds (n={N}, f={F}) — Theorems 2 and 3")
    print(f"{'faults':<22}{'t/c':>4}{'target':>8}{'best':>6}"
          f"{'mean(s)':>9}{'max(s)':>8}{'blocks':>8}")
    for kind, count, target, best, mean, worst, samples in rows:
        mean_text = f"{mean:.3f}" if mean is not None else "—"
        worst_text = f"{worst:.3f}" if worst is not None else "—"
        print(f"{kind:<22}{count:>4}{target:>8}{best:>6}"
              f"{mean_text:>9}{worst_text:>8}{samples:>8}")

    for kind, count, target, best, mean, worst, samples in rows:
        # The theorem's strength target is achieved…
        assert best >= target, (kind, count)
        # …for every settled block.
        assert samples > 10, (kind, count)

"""E7 — ablation: marker votes vs generalized interval votes (§3.4).

The single marker is the paper's minimal-information strong-vote; it
buys Theorem 2 liveness (benign faults only).  Under *Byzantine*
leaders that equivocate, honest replicas that crossed a fork carry
high markers forever after, so their later votes stop endorsing deep
prefixes — strong commits for blocks near the fork stall.  The
generalized interval votes recover those endorsements (Theorem 3) at
the cost of a few extra integers per vote.

This bench injects an equivocating leader and compares, per scheme,
the fraction of settled blocks that reach high strength and the wire
size of votes.
"""

from repro.adversary import make_equivocating_leader
from repro.protocols.sft_diembft import SFTDiemBFTReplica
from repro.runtime.config import ExperimentConfig, build_cluster
from repro.runtime.metrics import check_commit_safety

N, F = 7, 2
BYZANTINE_ID = 3


def run_mode(generalized: bool, window: int | None = None):
    config = ExperimentConfig(
        protocol="sft-diembft",
        n=N,
        topology="uniform",
        uniform_delay=0.010,
        jitter=0.002,
        duration=20.0,
        round_timeout=0.4,
        seed=41,
        generalized_intervals=generalized,
        interval_window=window,
        block_batch_count=10,
        block_batch_bytes=1_000,
    )
    cluster = build_cluster(config)
    cluster.build(
        replica_overrides={
            BYZANTINE_ID: make_equivocating_leader(SFTDiemBFTReplica)
        }
    )
    cluster.run()
    return cluster


def reach_stats(cluster, level: int):
    replica = cluster.replicas[0]
    horizon = cluster.simulator.now * 0.5
    reached = 0
    eligible = 0
    for event in replica.commit_tracker.commit_order:
        timeline = replica.commit_tracker.timeline_of(event.block_id)
        if timeline is None or timeline.block.is_genesis():
            continue
        if timeline.block.created_at > horizon:
            continue
        eligible += 1
        if timeline.current >= level:
            reached += 1
    return reached, eligible


def vote_extra_ints(cluster) -> float:
    """Mean count of extra integers carried per strong-vote."""
    replica = cluster.replicas[0]
    qc = replica.qc_high
    total = 0
    for vote in qc.votes:
        if vote.intervals:
            total += 2 * len(vote.intervals)
        else:
            total += 1  # the marker
    return total / max(1, len(qc.votes))


def test_ablation_marker_vs_intervals(benchmark):
    results = {}

    def run_all():
        modes = (
            ("marker", False, None),
            ("intervals[1,r]", True, None),
            (f"intervals[r-{N},r]", True, N),
        )
        for label, generalized, window in modes:
            cluster = run_mode(generalized, window)
            honest = [
                replica
                for index, replica in enumerate(cluster.replicas)
                if index != BYZANTINE_ID
            ]
            check_commit_safety(honest)
            high = 2 * F - 1  # t = 1 Byzantine → Theorem 3 target
            reached, eligible = reach_stats(cluster, high)
            results[label] = (reached, eligible, vote_extra_ints(cluster))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"Ablation §3.4 — equivocating leader (replica {BYZANTINE_ID}), "
          f"n={N}, f={F}, target = (2f-1)-strong")
    print(f"{'vote scheme':<18}{'reached':>9}{'eligible':>10}"
          f"{'fraction':>10}{'ints/vote':>11}")
    for label, (reached, eligible, ints) in results.items():
        fraction = reached / max(1, eligible)
        print(f"{label:<18}{reached:>9}{eligible:>10}"
              f"{fraction:>10.2f}{ints:>11.1f}")

    marker_reached, marker_eligible, marker_ints = results["marker"]
    full_reached, full_eligible, full_ints = results["intervals[1,r]"]
    win_label = f"intervals[r-{N},r]"
    win_reached, win_eligible, win_ints = results[win_label]
    # Interval votes reach the Theorem 3 target at least as often as
    # markers under equivocation.
    marker_fraction = marker_reached / max(1, marker_eligible)
    full_fraction = full_reached / max(1, full_eligible)
    assert full_fraction >= marker_fraction
    assert full_fraction > 0.8
    assert win_reached / max(1, win_eligible) > 0.8
    # Size trade-off (the §3.4 discussion): markers are one integer;
    # unwindowed interval sets accumulate one exclusion per historical
    # fork and grow without bound; the last-n-rounds window keeps them
    # small ("at most t intervals during periods of synchrony").
    assert marker_ints == 1.0
    assert full_ints > 10.0
    assert win_ints <= 8.0

"""E3 — Figure 8: regular-commit vs strong-commit latency trade-off.

Paper setup: symmetric geo-distribution, δ = 100 ms; leaders wait an
extra period after receiving 2f + 1 strong-votes, folding straggler
votes into the strong-QC; sweep the wait and plot, for each strength
level, (regular commit latency, strong commit latency).

Expected shape (paper): a small regular-latency sacrifice cuts the
2f-strong latency drastically (≈ 10 s → ≈ 5 s in the paper); each
x-strong curve first drops then merges with the regular-commit line
once QCs hold at least x + f + 1 votes.
"""

from repro.core.resilience import level_for_ratio
from repro.runtime.metrics import check_commit_safety, strong_commit_latency

from benchmarks.conftest import regular_latency, run_symmetric

WAITS = (0.0, 0.05, 0.1, 0.2, 0.4)
LEVELS = (1.2, 1.4, 1.6, 1.8, 2.0)


def test_fig8_regular_vs_strong_tradeoff(benchmark):
    f = 33
    points = {ratio: [] for ratio in LEVELS}
    regulars = []

    def sweep():
        for wait in WAITS:
            cluster = run_symmetric(
                delta=0.100, duration=40.0, qc_extra_wait=wait, seed=23
            )
            check_commit_safety(cluster.observer_replicas())
            cutoff = cluster.simulator.now * 0.6
            regular = regular_latency(cluster)
            regulars.append((wait, regular))
            for ratio in LEVELS:
                strong, _, _ = strong_commit_latency(
                    cluster, level_for_ratio(ratio, f), created_before=cutoff
                )
                points[ratio].append((regular, strong))
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Figure 8 — strong vs regular commit latency trade-off "
          "(symmetric, δ=100ms)")
    header = f"{'extra wait':>11}{'regular(s)':>12}" + "".join(
        f"{f'{ratio:.1f}f(s)':>10}" for ratio in LEVELS
    )
    print(header)
    for index, (wait, regular) in enumerate(regulars):
        row = f"{wait * 1000:>9.0f}ms{regular:>12.3f}"
        for ratio in LEVELS:
            strong = points[ratio][index][1]
            row += f"{strong:>10.3f}" if strong is not None else f"{'—':>10}"
        print(row)

    # Regular latency grows with the wait (the sacrifice).
    regular_values = [regular for _, regular in regulars]
    assert regular_values[-1] > regular_values[0]

    # The 2f-strong latency drops sharply from wait=0 to a modest wait.
    top = points[2.0]
    assert top[0][1] is not None and top[-1][1] is not None
    assert top[-1][1] < top[0][1] * 0.7

    # With the largest wait every curve merges with the regular line.
    final_regular = regular_values[-1]
    for ratio in LEVELS:
        final_strong = points[ratio][-1][1]
        assert final_strong is not None
        assert abs(final_strong - final_regular) < 0.25 * final_regular, (
            f"{ratio}f did not merge: {final_strong} vs {final_regular}"
        )

"""E2 — Figure 7b: strong commit latency, asymmetric geo-distribution.

Paper setup: regions A = 45, B = 45, C = 10 replicas; A↔B is 20 ms,
C↔{A,B} is δ ∈ {100, 200} ms.

Expected shape (paper):

* commits up to 1.7f-strong (x = 56 = 90 - f - 1) need endorsers from
  A∪B only and stay cheap;
* ≥ 1.8f requires region-C strong-votes, which enter strong-QCs only
  when a C replica collects votes (10 rounds per 100) → large jump;
* at δ = 200 ms, C-led rounds time out and are replaced, so region-C
  votes never reach the chain and the A/B view caps at 1.7f.
"""

from repro.analysis import format_fig7_table
from repro.runtime.metrics import check_commit_safety, strong_latency_series

from benchmarks.conftest import PAPER_RATIOS, run_asymmetric


def _ab_observer_series(cluster):
    """Series over region-A/B observers (the paper's on-chain view).

    Region-C replicas locally process QCs formed by C collectors even
    in rounds the rest of the network skipped; restricting to A/B
    observers matches the paper's "strong-QC in the blockchain"
    accounting (see EXPERIMENTS.md).
    """
    cutoff = cluster.simulator.now * 0.6
    region_c = set(range(90, 100))
    saved = cluster.config.observers
    ab_ids = tuple(
        replica_id
        for replica_id in cluster.config.observer_ids()
        if replica_id not in region_c
    )
    cluster.config.observers = ab_ids
    try:
        return strong_latency_series(
            cluster, PAPER_RATIOS, created_before=cutoff
        )
    finally:
        cluster.config.observers = saved


def test_fig7b_asymmetric_geo_distribution(benchmark):
    results = {}

    def run_both():
        for delta in (0.100, 0.200):
            cluster = run_asymmetric(delta=delta)
            check_commit_safety(cluster.observer_replicas())
            results[f"δ={delta * 1000:.0f}ms"] = _ab_observer_series(cluster)
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print(format_fig7_table(
        results,
        title=(
            "Figure 7b — strong commit latency, asymmetric geo "
            "(A=45, B=45, C=10; A↔B=20ms)"
        ),
    ))

    series_100 = {point.ratio: point for point in results["δ=100ms"]}
    series_200 = {point.ratio: point for point in results["δ=200ms"]}

    # δ=100ms: plateau through 1.7f, jump at 1.8f (region-C rounds).
    assert series_100[1.7].mean_latency is not None
    assert series_100[1.8].mean_latency is not None
    assert (
        series_100[1.8].mean_latency > series_100[1.7].mean_latency * 2.5
    )
    assert series_100[1.7].mean_latency < series_100[1.0].mean_latency * 4

    # δ=200ms: C leaders replaced → the chain never carries C votes;
    # nothing past 1.7f is achieved in the A/B (on-chain) view.
    assert series_200[1.7].mean_latency is not None
    for ratio in (1.8, 1.9, 2.0):
        assert series_200[ratio].samples == 0, (
            f"x={ratio}f unexpectedly reached at δ=200ms"
        )

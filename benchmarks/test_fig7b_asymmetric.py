"""E2 — Figure 7b: strong commit latency, asymmetric geo-distribution.

Paper setup: regions A = 45, B = 45, C = 10 replicas; A↔B is 20 ms,
C↔{A,B} is δ ∈ {100, 200} ms.

Expected shape (paper):

* commits up to 1.7f-strong (x = 56 = 90 - f - 1) need endorsers from
  A∪B only and stay cheap;
* ≥ 1.8f requires region-C strong-votes, which enter strong-QCs only
  when a C replica collects votes (10 rounds per 100) → large jump;
* at δ = 200 ms, C-led rounds time out and are replaced, so region-C
  votes never reach the chain and the A/B view caps at 1.7f.

Runs as a two-job campaign (matrix over δ) through the experiment
engine; the spec's ``series_observers`` restricts the latency series
to region-A/B observers — the paper's "strong-QC in the blockchain"
accounting (see EXPERIMENTS.md).
"""

from repro.analysis import format_fig7_table
from repro.experiments import Campaign, CampaignRunner

from benchmarks.conftest import asymmetric_spec, series_from_job


def test_fig7b_asymmetric_geo_distribution(benchmark):
    campaign = Campaign(
        asymmetric_spec(delta=0.100), matrix={"delta": [0.100, 0.200]}
    )
    report = {}

    def run_campaign():
        report.update(CampaignRunner(campaign.expand(), workers=1).run())
        return report

    benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    results = {}
    for job_entry in report["jobs"]:
        assert job_entry["metrics"]["safety_ok"], job_entry["job_id"]
        label = f"δ={job_entry['params']['delta'] * 1000:.0f}ms"
        results[label] = series_from_job(job_entry)

    print()
    print(format_fig7_table(
        results,
        title=(
            "Figure 7b — strong commit latency, asymmetric geo "
            "(A=45, B=45, C=10; A↔B=20ms)"
        ),
    ))

    series_100 = {point.ratio: point for point in results["δ=100ms"]}
    series_200 = {point.ratio: point for point in results["δ=200ms"]}

    # δ=100ms: plateau through 1.7f, jump at 1.8f (region-C rounds).
    assert series_100[1.7].mean_latency is not None
    assert series_100[1.8].mean_latency is not None
    assert (
        series_100[1.8].mean_latency > series_100[1.7].mean_latency * 2.5
    )
    assert series_100[1.7].mean_latency < series_100[1.0].mean_latency * 4

    # δ=200ms: C leaders replaced → the chain never carries C votes;
    # nothing past 1.7f is achieved in the A/B (on-chain) view.
    assert series_200[1.7].mean_latency is not None
    for ratio in (1.8, 1.9, 2.0):
        assert series_200[ratio].samples == 0, (
            f"x={ratio}f unexpectedly reached at δ=200ms"
        )

"""E4 — throughput parity: SFT-DiemBFT ≈ DiemBFT.

The paper omits throughput plots because "the throughput of
SFT-DiemBFT is almost identical to that of the original DiemBFT
protocol in all our experiments" — the only wire overhead is one
marker integer per vote.  This bench regenerates that claim as a
table: committed transactions per second under the symmetric setting,
plus the regular-commit latency for completeness.
"""

from repro.runtime.metrics import check_commit_safety, throughput_txps

from benchmarks.conftest import regular_latency, run_symmetric


def test_throughput_parity_sft_vs_diembft(benchmark):
    results = {}

    def run_pair():
        for protocol in ("diembft", "sft-diembft"):
            cluster = run_symmetric(
                delta=0.100, duration=30.0, protocol=protocol, seed=29
            )
            check_commit_safety(cluster.observer_replicas())
            results[protocol] = (
                throughput_txps(cluster),
                regular_latency(cluster),
                cluster.network.messages_sent,
                cluster.network.bytes_sent,
            )
        return results

    benchmark.pedantic(run_pair, rounds=1, iterations=1)

    print()
    print("Throughput parity (symmetric, δ=100ms, n=100, 1000-txn blocks)")
    print(f"{'protocol':<14}{'txn/s':>10}{'regular(s)':>12}"
          f"{'messages':>10}{'MB sent':>9}")
    for protocol, (tput, latency, msgs, volume) in results.items():
        print(f"{protocol:<14}{tput:>10.0f}{latency:>12.3f}"
              f"{msgs:>10}{volume / 1e6:>9.0f}")

    tput_plain = results["diembft"][0]
    tput_sft = results["sft-diembft"][0]
    assert tput_plain > 0
    # "Almost identical": within 2%.
    assert abs(tput_sft - tput_plain) / tput_plain < 0.02

    # The wire overhead of strong-votes is marginal (< 1% bytes).
    bytes_plain = results["diembft"][3]
    bytes_sft = results["sft-diembft"][3]
    assert abs(bytes_sft - bytes_plain) / bytes_plain < 0.01

"""Shared runners for the paper-reproduction benchmarks.

Every benchmark simulates a full cluster (pytest-benchmark times the
simulation) and then prints the series/rows the corresponding paper
figure reports, so ``pytest benchmarks/ --benchmark-only -s`` yields a
direct paper-vs-measured comparison (recorded in EXPERIMENTS.md).

All cluster construction goes through the campaign engine's
:class:`~repro.experiments.ScenarioSpec`, so the benchmarks exercise
the exact same factory path as ``repro campaign run`` and the bundled
``scenarios/`` files.
"""

from __future__ import annotations

from repro.experiments import ScenarioSpec, reports_from_series
from repro.runtime.metrics import (
    regular_commit_latency,
    strong_latency_series,
)

PAPER_N = 100
PAPER_RATIOS = tuple(round(1.0 + 0.1 * i, 1) for i in range(11))


def symmetric_spec(
    delta: float,
    duration: float = 40.0,
    seed: int = 11,
    qc_extra_wait: float = 0.0,
    bandwidth: float = 125_000_000.0,
    protocol: str = "sft-diembft",
) -> ScenarioSpec:
    """One paper-scale symmetric-geo scenario (Figure 7a / 8 setting).

    Bandwidth modelling (450 KB blocks on 1 Gbps uplinks) staggers
    proposal dissemination exactly like the paper's testbed, which
    spreads vote arrivals and makes strong-QC membership diverse.
    """
    return ScenarioSpec(
        name="fig7a_symmetric",
        protocol=protocol,
        n=PAPER_N,
        topology="symmetric",
        delta=delta,
        jitter=0.004,
        duration=duration,
        round_timeout=3.0,
        seeds=(seed,),
        qc_extra_wait=qc_extra_wait,
        verify_signatures=False,
        observers=10,
        bandwidth_bytes_per_sec=bandwidth,
        block_batch_count=1000,
        block_batch_bytes=450_000,
        ratios=PAPER_RATIOS,
        cutoff_fraction=0.66,
    )


def asymmetric_spec(
    delta: float, duration: float = 30.0, seed: int = 13
) -> ScenarioSpec:
    """One paper-scale asymmetric-geo scenario (Figure 7b setting).

    The 150 ms flat round timeout reproduces the paper's observed
    region-C leader replacement at δ = 200 ms while keeping C-led
    rounds viable at δ = 100 ms (Section 4.1).
    """
    return ScenarioSpec(
        name="fig7b_asymmetric",
        protocol="sft-diembft",
        n=PAPER_N,
        topology="asymmetric",
        delta=delta,
        jitter=0.004,
        duration=duration,
        round_timeout=0.15,
        timeout_multiplier=1.0,
        seeds=(seed,),
        verify_signatures=False,
        observers=10,
        block_batch_count=1000,
        block_batch_bytes=450_000,
        ratios=PAPER_RATIOS,
        cutoff_fraction=0.6,
        # The paper's protocol has no catch-up subprotocol; with sync
        # on, timeout-attached votes certify some replaced C-led rounds
        # and region-C votes leak into the chain, flattening the
        # published δ=200ms cap at 1.7f.  Keep the figure faithful.
        sync_enabled=False,
        # The paper's "strong-QC in the blockchain" accounting: series
        # over region-A/B observers only (region C is ids 90–99).
        series_observers=tuple(range(0, 90, 10)),
    )


def run_symmetric(
    delta: float,
    duration: float = 40.0,
    seed: int = 11,
    qc_extra_wait: float = 0.0,
    bandwidth: float = 125_000_000.0,
    protocol: str = "sft-diembft",
):
    """Build and run one symmetric-geo cluster via the scenario path."""
    spec = symmetric_spec(
        delta,
        duration=duration,
        seed=seed,
        qc_extra_wait=qc_extra_wait,
        bandwidth=bandwidth,
        protocol=protocol,
    )
    return spec.build(seed).run()


def run_asymmetric(delta: float, duration: float = 30.0, seed: int = 13):
    """Build and run one asymmetric-geo cluster via the scenario path."""
    return asymmetric_spec(delta, duration=duration, seed=seed).build(seed).run()


def series_from_job(job_entry: dict) -> list:
    """Rebuild LatencyReport points from a campaign job's metrics."""
    return reports_from_series(job_entry["metrics"]["strong_latency_series"])


def latency_table_rows(cluster, cutoff_fraction: float = 0.66):
    """Fig-7-style rows: (ratio, mean latency, samples, eligible)."""
    cutoff = cluster.simulator.now * cutoff_fraction
    return strong_latency_series(cluster, PAPER_RATIOS, created_before=cutoff)


def regular_latency(cluster, cutoff_fraction: float = 0.66):
    cutoff = cluster.simulator.now * cutoff_fraction
    mean, _count = regular_commit_latency(cluster, created_before=cutoff)
    return mean

"""Shared runners for the paper-reproduction benchmarks.

Every benchmark simulates a full cluster (pytest-benchmark times the
simulation) and then prints the series/rows the corresponding paper
figure reports, so ``pytest benchmarks/ --benchmark-only -s`` yields a
direct paper-vs-measured comparison (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.runtime.config import ExperimentConfig, build_cluster
from repro.runtime.metrics import (
    regular_commit_latency,
    strong_latency_series,
)

PAPER_N = 100
PAPER_RATIOS = tuple(round(1.0 + 0.1 * i, 1) for i in range(11))


def run_symmetric(
    delta: float,
    duration: float = 40.0,
    seed: int = 11,
    qc_extra_wait: float = 0.0,
    bandwidth: float = 125_000_000.0,
    protocol: str = "sft-diembft",
):
    """One paper-scale symmetric-geo run (Figure 7a / Figure 8 setting).

    Bandwidth modelling (450 KB blocks on 1 Gbps uplinks) staggers
    proposal dissemination exactly like the paper's testbed, which
    spreads vote arrivals and makes strong-QC membership diverse.
    """
    config = ExperimentConfig(
        protocol=protocol,
        n=PAPER_N,
        topology="symmetric",
        delta=delta,
        jitter=0.004,
        duration=duration,
        round_timeout=3.0,
        seed=seed,
        qc_extra_wait=qc_extra_wait,
        verify_signatures=False,
        observers=10,
        bandwidth_bytes_per_sec=bandwidth,
    )
    return build_cluster(config).run()


def run_asymmetric(delta: float, duration: float = 30.0, seed: int = 13):
    """One paper-scale asymmetric-geo run (Figure 7b setting).

    The 150 ms flat round timeout reproduces the paper's observed
    region-C leader replacement at δ = 200 ms while keeping C-led
    rounds viable at δ = 100 ms (Section 4.1).
    """
    config = ExperimentConfig(
        protocol="sft-diembft",
        n=PAPER_N,
        topology="asymmetric",
        delta=delta,
        jitter=0.004,
        duration=duration,
        round_timeout=0.15,
        timeout_multiplier=1.0,
        seed=seed,
        verify_signatures=False,
        observers=10,
    )
    return build_cluster(config).run()


def latency_table_rows(cluster, cutoff_fraction: float = 0.66):
    """Fig-7-style rows: (ratio, mean latency, samples, eligible)."""
    cutoff = cluster.simulator.now * cutoff_fraction
    return strong_latency_series(cluster, PAPER_RATIOS, created_before=cutoff)


def regular_latency(cluster, cutoff_fraction: float = 0.66):
    cutoff = cluster.simulator.now * cutoff_fraction
    mean, _count = regular_commit_latency(cluster, created_before=cutoff)
    return mean

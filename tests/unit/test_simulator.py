"""Discrete-event simulator: ordering, timers, determinism."""

import pytest

from repro.net.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(2.0, order.append, "b")
        simulator.schedule_at(1.0, order.append, "a")
        simulator.schedule_at(3.0, order.append, "c")
        simulator.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self):
        simulator = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            simulator.schedule_at(1.0, order.append, tag)
        simulator.run_until(1.0)
        assert order == ["first", "second", "third"]

    def test_now_advances_with_events(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(1.5, lambda: seen.append(simulator.now))
        simulator.run_until(5.0)
        assert seen == [1.5]
        assert simulator.now == 5.0

    def test_schedule_in_past_rejected(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run_until(1.0)
        with pytest.raises(ValueError):
            simulator.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        simulator = Simulator()
        result = []

        def first():
            simulator.schedule_in(1.0, lambda: result.append(simulator.now))

        simulator.schedule_at(1.0, first)
        simulator.run_until(5.0)
        assert result == [2.0]

    def test_run_until_does_not_run_future_events(self):
        simulator = Simulator()
        ran = []
        simulator.schedule_at(5.0, ran.append, "late")
        simulator.run_until(4.0)
        assert ran == []
        simulator.run_until(5.0)
        assert ran == ["late"]


class TestCancellation:
    def test_cancelled_timer_does_not_fire(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule_at(1.0, fired.append, "x")
        handle.cancel()
        simulator.run_until(2.0)
        assert fired == []

    def test_cancel_after_fire_is_harmless(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule_at(1.0, fired.append, "x")
        simulator.run_until(2.0)
        handle.cancel()
        assert fired == ["x"]


class TestCancelledTimerCompaction:
    def test_pending_reports_live_events_only(self):
        simulator = Simulator()
        handles = [
            simulator.schedule_at(float(i + 1), lambda: None) for i in range(10)
        ]
        assert simulator.pending() == 10
        for handle in handles[:4]:
            handle.cancel()
        assert simulator.pending() == 6

    def test_heap_compacts_when_cancelled_majority(self):
        simulator = Simulator()
        handles = [
            simulator.schedule_at(float(i + 1), lambda: None) for i in range(100)
        ]
        for handle in handles[:60]:
            handle.cancel()
        # Compaction keeps cancelled entries a minority of the heap.
        assert simulator.pending() == 40
        assert len(simulator._queue) <= 2 * simulator.pending() + 1
        simulator.run_until(200.0)
        assert simulator.events_processed == 40

    def test_double_cancel_counts_once(self):
        simulator = Simulator()
        live = simulator.schedule_at(1.0, lambda: None)
        handle = simulator.schedule_at(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        del live
        assert simulator.pending() == 1

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        simulator = Simulator()
        handle = simulator.schedule_at(1.0, lambda: None)
        simulator.schedule_at(2.0, lambda: None)
        simulator.run_until(1.5)
        handle.cancel()  # already fired and popped
        assert simulator.pending() == 1
        simulator.run_until(3.0)
        assert simulator.pending() == 0
        assert simulator.events_processed == 2

    def test_pacemaker_style_churn_keeps_queue_bounded(self):
        # One live timer replaced per round, old one cancelled — the
        # pattern that used to leak one heap entry per round.
        simulator = Simulator()
        current = simulator.schedule_at(1.0, lambda: None)
        for round_number in range(2, 2000):
            current.cancel()
            current = simulator.schedule_at(float(round_number), lambda: None)
        assert simulator.pending() == 1
        assert len(simulator._queue) <= 3

    def test_ordering_preserved_across_compaction(self):
        simulator = Simulator()
        order = []
        handles = {}
        for index in range(50):
            handles[index] = simulator.schedule_at(
                float(index + 1), order.append, index
            )
        for index in range(0, 50, 2):
            handles[index].cancel()
        simulator.run_until(100.0)
        assert order == list(range(1, 50, 2))


class TestDraining:
    def test_run_until_idle_counts_events(self):
        simulator = Simulator()
        for index in range(5):
            simulator.schedule_at(float(index), lambda: None)
        assert simulator.run_until_idle() == 5

    def test_run_until_idle_respects_cap(self):
        simulator = Simulator()

        def reschedule():
            simulator.schedule_in(1.0, reschedule)

        simulator.schedule_at(0.0, reschedule)
        executed = simulator.run_until_idle(max_events=10)
        assert executed == 10

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        simulator = Simulator()
        simulator.schedule_at(0.0, lambda: None)
        simulator.run_until(1.0)
        assert simulator.events_processed == 1

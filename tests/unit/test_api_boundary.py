"""Transport/Clock seam lint: protocol code must not reach the backend.

Replicas talk to the outside world only through the
:class:`~repro.protocols.base.Transport` and
:class:`~repro.protocols.base.Clock` protocols on their
:class:`~repro.protocols.base.ReplicaContext` — that seam is what lets
the same replica classes run under the deterministic simulator and the
asyncio TCP runtime.  A direct ``.network`` or ``.simulator`` attribute
reach from protocol-layer code would silently re-couple it to the
simulator backend and break the TCP tier, so this test greps for new
reaches and names the offending lines.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Packages that must stay backend-agnostic.  runtime/, net/, and
#: rt_net/ are the backends themselves and may name their own
#: attributes freely.
SEALED_PACKAGES = ("protocols", "core", "sync")

FORBIDDEN = re.compile(r"\.(network|simulator)\b")


def _violations():
    found = []
    for package in SEALED_PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if FORBIDDEN.search(line):
                    relative = path.relative_to(SRC.parent)
                    found.append(f"{relative}:{number}: {line.strip()}")
    return found


def test_sealed_packages_exist():
    for package in SEALED_PACKAGES:
        assert (SRC / package).is_dir(), f"src/repro/{package} moved?"


def test_no_backend_reaches_in_protocol_code():
    violations = _violations()
    assert not violations, (
        "protocol-layer code reaches the simulator backend directly; "
        "use the ReplicaContext Transport/Clock surface "
        "(ctx.send/multicast/set_timer/cancel_timer/now) instead:\n"
        + "\n".join(violations)
    )

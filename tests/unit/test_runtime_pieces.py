"""ExperimentConfig, mempool, metrics helpers, report formatting."""

import pytest

from repro.analysis.ascii_chart import line_chart
from repro.analysis.report import (
    format_fig7_table,
    format_series_csv,
    format_simple_table,
)
from repro.runtime.client import Mempool
from repro.runtime.config import ExperimentConfig, build_cluster
from repro.runtime.metrics import LatencyReport, percentile
from repro.types.transaction import Transaction


class TestExperimentConfig:
    def test_default_f_from_n(self):
        assert ExperimentConfig(n=100).resolved_f() == 33
        assert ExperimentConfig(n=7).resolved_f() == 2

    def test_explicit_f_wins(self):
        assert ExperimentConfig(n=10, f=3).resolved_f() == 3

    def test_with_overrides_copies(self):
        base = ExperimentConfig(n=7)
        changed = base.with_overrides(delta=0.2)
        assert changed.delta == 0.2
        assert base.delta == 0.1
        assert changed.n == 7

    def test_observer_stride(self):
        config = ExperimentConfig(n=10, observers=3)
        assert config.observer_ids() == (0, 3, 6, 9)

    def test_observer_all(self):
        config = ExperimentConfig(n=4, observers="all")
        assert config.observer_ids() == (0, 1, 2, 3)

    def test_observer_explicit(self):
        config = ExperimentConfig(n=10, observers=(1, 5))
        assert config.observer_ids() == (1, 5)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            build_cluster(ExperimentConfig(protocol="pbft"))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(topology="mesh").build_topology()

    def test_asymmetric_requires_n_100(self):
        with pytest.raises(ValueError):
            ExperimentConfig(topology="asymmetric", n=10).build_topology()

    def test_streamlet_round_duration_derived(self):
        config = ExperimentConfig(
            protocol="streamlet", n=7, topology="uniform", uniform_delay=0.01,
            jitter=0.002,
        )
        replica_config = config.replica_config(0)
        assert replica_config.round_duration >= 2 * (0.01 + 0.002)

    def test_replica_config_observer_flag(self):
        config = ExperimentConfig(n=10, observers=(0,))
        assert config.replica_config(0).observer
        assert not config.replica_config(5).observer


class TestMempool:
    def _txn(self, sequence):
        return Transaction(client_id=1, sequence=sequence)

    def test_submit_and_payload(self):
        mempool = Mempool(max_block_transactions=2)
        for sequence in range(3):
            mempool.submit(self._txn(sequence))
        payload = mempool.make_payload(now=0.0)
        assert payload.tx_count() == 2
        # Transactions stay pending until committed.
        assert mempool.pending_count() == 3

    def test_remove_committed(self):
        mempool = Mempool()
        txn = self._txn(0)
        mempool.submit(txn)
        mempool.remove_committed([txn])
        assert mempool.pending_count() == 0

    def test_duplicate_submissions_deduplicated(self):
        mempool = Mempool()
        txn = self._txn(0)
        mempool.submit(txn)
        mempool.submit(txn)
        assert mempool.pending_count() == 1

    def test_byte_cap_limits_payload(self):
        # Each default transaction is 16 header bytes; a 40-byte cap
        # fits two.
        mempool = Mempool(max_block_transactions=10, max_block_bytes=40)
        for sequence in range(5):
            mempool.submit(self._txn(sequence))
        assert mempool.make_payload(now=0.0).tx_count() == 2

    def test_byte_cap_always_takes_one(self):
        # A jumbo transaction larger than the cap must not wedge the
        # queue: the first entry always ships.
        mempool = Mempool(max_block_bytes=8)
        mempool.submit(self._txn(0))
        assert mempool.make_payload(now=0.0).tx_count() == 1

    def test_stop_and_wait_re_proposes_same_front(self):
        mempool = Mempool(max_block_transactions=2)
        for sequence in range(4):
            mempool.submit(self._txn(sequence))
        first = mempool.make_payload(now=0.0)
        second = mempool.make_payload(now=0.1)
        assert first.transactions == second.transactions

    def test_pipelined_drains_skip_in_flight(self):
        mempool = Mempool(
            max_block_transactions=2, pipelined=True, inflight_timeout=1.0
        )
        for sequence in range(4):
            mempool.submit(self._txn(sequence))
        first = mempool.make_payload(now=0.0)
        second = mempool.make_payload(now=0.1)
        assert first.transactions != second.transactions
        assert {t.sequence for t in first.transactions} == {0, 1}
        assert {t.sequence for t in second.transactions} == {2, 3}

    def test_pipelined_in_flight_expires(self):
        # A batch whose proposal went nowhere becomes eligible again
        # once the in-flight timeout lapses.
        mempool = Mempool(
            max_block_transactions=2, pipelined=True, inflight_timeout=1.0
        )
        mempool.submit(self._txn(0))
        first = mempool.make_payload(now=0.0)
        assert mempool.make_payload(now=0.5).tx_count() == 0
        redo = mempool.make_payload(now=1.5)
        assert redo.transactions == first.transactions

    def test_commit_clears_in_flight(self):
        mempool = Mempool(pipelined=True, inflight_timeout=10.0)
        txn = self._txn(0)
        mempool.submit(txn)
        mempool.make_payload(now=0.0)
        mempool.remove_committed([txn])
        assert mempool.pending_count() == 0
        assert mempool._in_flight == {}


class TestPercentile:
    def test_quantile_zero_rejected(self):
        # q=0 would silently clamp to the minimum sample.
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], 0.0)

    def test_quantile_above_one_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], 1.1)

    def test_negative_quantile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.5)

    def test_empty_samples_return_none(self):
        assert percentile([], 0.5) is None

    def test_exact_boundary_rank_median(self):
        # Nearest-rank: ceil(0.5 * 4) = 2 → the 2nd smallest sample,
        # exactly at the rank boundary (no interpolation).
        assert percentile([4.0, 1.0, 3.0, 2.0], 0.5) == 2.0
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_exact_boundary_rank_p99(self):
        # ceil(0.99 * 100) = 99 → the 99th smallest of 100 samples.
        samples = [float(value) for value in range(100, 0, -1)]
        assert percentile(samples, 0.99) == 99.0
        # With exactly 100 samples, q=1.0 is the maximum.
        assert percentile(samples, 1.0) == 100.0

    def test_result_is_always_a_sample(self):
        samples = [0.31, 0.17, 0.99, 0.42, 0.58]
        for quantile in (0.01, 0.25, 0.5, 0.75, 0.99, 1.0):
            assert percentile(samples, quantile) in samples


class TestLatencyReport:
    def test_reached_fraction(self):
        report = LatencyReport(
            ratio=1.5, level=49, mean_latency=2.0, samples=30, eligible=40
        )
        assert report.reached_fraction() == 0.75

    def test_reached_fraction_empty(self):
        report = LatencyReport(
            ratio=1.5, level=49, mean_latency=None, samples=0, eligible=0
        )
        assert report.reached_fraction() == 0.0


class TestReportFormatting:
    def test_simple_table_alignment(self):
        table = format_simple_table(
            ["a", "bb"], [[1, 2.5], [None, 30]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "—" in table
        assert "2.500" in table

    def test_fig7_table_shape(self):
        series = {
            "δ=100ms": [
                LatencyReport(1.0, 33, 4.5, 100, 100),
                LatencyReport(2.0, 66, 9.5, 80, 100),
            ],
            "δ=200ms": [
                LatencyReport(1.0, 33, 5.5, 100, 100),
                LatencyReport(2.0, 66, None, 0, 100),
            ],
        }
        table = format_fig7_table(series, title="Figure 7a")
        assert "Figure 7a" in table
        assert "1.0" in table and "2.0" in table
        assert "9.500" in table
        assert "—" in table  # unreached level renders as dash

    def test_series_csv(self):
        series = [LatencyReport(1.0, 33, 4.5, 100, 120)]
        csv = format_series_csv(series, label="sym")
        assert "ratio,level,mean_latency_s,samples,eligible" in csv
        assert "1.0,33,4.500000,100,120" in csv


class TestAsciiChart:
    def test_chart_renders_points(self):
        chart = line_chart(
            {"a": [(1.0, 2.0), (2.0, 4.0)], "b": [(1.0, 3.0)]},
            width=20,
            height=5,
        )
        assert "legend" in chart
        assert "*" in chart and "o" in chart

    def test_chart_skips_none(self):
        chart = line_chart({"a": [(1.0, None), (2.0, 4.0)]}, width=10, height=4)
        assert "(no data)" not in chart

    def test_chart_empty(self):
        assert line_chart({"a": []}) == "(no data)"

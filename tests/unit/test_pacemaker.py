"""Pacemaker: round sync rule, timeouts, backoff, TCs."""

from repro.net.simulator import Simulator
from repro.protocols.pacemaker import Pacemaker, PacemakerConfig


class Harness:
    """Hosts a pacemaker over a bare simulator."""

    def __init__(self, base_timeout=1.0, multiplier=2.0, max_timeout=8.0,
                 quorum=3, join_threshold=2):
        self.simulator = Simulator()
        self.rounds = []
        self.local_timeouts = []
        self.pacemaker = Pacemaker(
            PacemakerConfig(
                base_timeout=base_timeout,
                multiplier=multiplier,
                max_timeout=max_timeout,
                quorum=quorum,
                join_threshold=join_threshold,
            ),
            self,
            on_new_round=lambda r, reason: self.rounds.append((r, reason)),
            on_local_timeout=self.local_timeouts.append,
        )

    # ReplicaContext-compatible surface used by Pacemaker.
    @property
    def now(self):
        return self.simulator.now

    def set_timer(self, delay, callback, *args):
        return self.simulator.schedule_in(delay, callback, *args)

    def cancel_timer(self, handle):
        if handle is not None:
            handle.cancel()


class TestRoundAdvancement:
    def test_start_enters_round_one(self):
        harness = Harness()
        harness.pacemaker.start()
        assert harness.pacemaker.current_round == 1
        assert harness.rounds == [(1, "start")]

    def test_qc_advances_to_next_round(self):
        harness = Harness()
        harness.pacemaker.start()
        assert harness.pacemaker.advance_on_qc(1)
        assert harness.pacemaker.current_round == 2

    def test_stale_qc_does_not_advance(self):
        harness = Harness()
        harness.pacemaker.start()
        harness.pacemaker.advance_on_qc(5)
        assert not harness.pacemaker.advance_on_qc(3)
        assert harness.pacemaker.current_round == 6

    def test_qc_can_skip_rounds(self):
        harness = Harness()
        harness.pacemaker.start()
        harness.pacemaker.advance_on_qc(10)
        assert harness.pacemaker.current_round == 11


class TestTimeouts:
    def test_timer_fires_local_timeout(self):
        harness = Harness(base_timeout=1.0)
        harness.pacemaker.start()
        harness.simulator.run_until(1.5)
        assert harness.local_timeouts == [1]
        assert harness.pacemaker.has_timed_out(1)

    def test_advance_cancels_timer(self):
        harness = Harness(base_timeout=1.0)
        harness.pacemaker.start()
        harness.pacemaker.advance_on_qc(1)  # leaves round 1 at t=0
        harness.simulator.run_until(1.5)
        # Round 1's timer was cancelled; only round 2's fresh timer fires.
        assert harness.local_timeouts == [2]
        assert not harness.pacemaker.has_timed_out(1)

    def test_tc_forms_at_quorum(self):
        harness = Harness(quorum=3)
        harness.pacemaker.start()
        assert harness.pacemaker.record_timeout_vote(1, sender=0, qc_high_round=0) is None
        assert harness.pacemaker.record_timeout_vote(1, sender=1, qc_high_round=0) is None
        tc = harness.pacemaker.record_timeout_vote(1, sender=2, qc_high_round=0)
        assert tc is not None
        assert tc.round == 1
        assert tc.timeout_voters == frozenset({0, 1, 2})

    def test_tc_highest_qc_round_aggregated(self):
        harness = Harness(quorum=2)
        harness.pacemaker.start()
        harness.pacemaker.record_timeout_vote(1, sender=0, qc_high_round=3)
        tc = harness.pacemaker.record_timeout_vote(1, sender=1, qc_high_round=7)
        assert tc.highest_qc_round == 7

    def test_duplicate_timeout_votes_ignored(self):
        harness = Harness(quorum=2)
        harness.pacemaker.start()
        harness.pacemaker.record_timeout_vote(1, sender=0, qc_high_round=0)
        assert (
            harness.pacemaker.record_timeout_vote(1, sender=0, qc_high_round=0)
            is None
        )

    def test_join_rule_at_f_plus_one(self):
        harness = Harness(quorum=3, join_threshold=2)
        harness.pacemaker.start()
        harness.pacemaker.record_timeout_vote(1, sender=0, qc_high_round=0)
        assert harness.local_timeouts == []
        harness.pacemaker.record_timeout_vote(1, sender=1, qc_high_round=0)
        assert harness.local_timeouts == [1]  # joined the timeout

    def test_join_rule_ignores_old_rounds(self):
        harness = Harness(quorum=3, join_threshold=2)
        harness.pacemaker.start()
        harness.pacemaker.advance_on_qc(5)
        harness.pacemaker.record_timeout_vote(2, sender=0, qc_high_round=0)
        harness.pacemaker.record_timeout_vote(2, sender=1, qc_high_round=0)
        assert harness.local_timeouts == []

    def test_tc_advances_round(self):
        harness = Harness(quorum=2)
        harness.pacemaker.start()
        tc = None
        for sender in range(2):
            tc = harness.pacemaker.record_timeout_vote(
                1, sender=sender, qc_high_round=0
            ) or tc
        assert harness.pacemaker.advance_on_tc(tc)
        assert harness.pacemaker.current_round == 2


class TestBackoff:
    def test_backoff_grows_with_consecutive_tcs(self):
        harness = Harness(base_timeout=1.0, multiplier=2.0, max_timeout=16.0,
                          quorum=1)
        harness.pacemaker.start()
        assert harness.pacemaker.current_timeout() == 1.0
        tc = harness.pacemaker.record_timeout_vote(1, sender=0, qc_high_round=0)
        harness.pacemaker.advance_on_tc(tc)
        assert harness.pacemaker.current_timeout() == 2.0
        tc = harness.pacemaker.record_timeout_vote(2, sender=0, qc_high_round=0)
        harness.pacemaker.advance_on_tc(tc)
        assert harness.pacemaker.current_timeout() == 4.0

    def test_qc_resets_backoff(self):
        harness = Harness(base_timeout=1.0, multiplier=2.0, quorum=1)
        harness.pacemaker.start()
        tc = harness.pacemaker.record_timeout_vote(1, sender=0, qc_high_round=0)
        harness.pacemaker.advance_on_tc(tc)
        harness.pacemaker.advance_on_qc(harness.pacemaker.current_round)
        assert harness.pacemaker.current_timeout() == 1.0

    def test_backoff_capped(self):
        harness = Harness(base_timeout=1.0, multiplier=10.0, max_timeout=3.0,
                          quorum=1)
        harness.pacemaker.start()
        tc = harness.pacemaker.record_timeout_vote(1, sender=0, qc_high_round=0)
        harness.pacemaker.advance_on_tc(tc)
        assert harness.pacemaker.current_timeout() == 3.0


class TestTCBookkeeping:
    def test_note_tc_remembered(self):
        harness = Harness()
        harness.pacemaker.start()
        from repro.types.quorum_cert import TimeoutCertificate

        tc = TimeoutCertificate(
            round=4, timeout_voters=frozenset({0, 1, 2}), highest_qc_round=3
        )
        harness.pacemaker.note_tc(tc)
        assert harness.pacemaker.known_tc(4) is tc
        assert harness.pacemaker.known_tc(5) is None

"""Endorsement tracking: definitions, early-stop walks, k-endorsements."""

from repro.core.endorsement import BruteForceEndorsementOracle, EndorsementTracker


class TestDirectEndorsement:
    def test_direct_vote_endorses_own_block(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        block = builder.block(builder.genesis, 1)
        tracker.add_vote(builder.vote(block, voter=0))
        assert tracker.count(block.id()) == 1
        assert 0 in tracker.endorsers(block.id())

    def test_duplicate_votes_counted_once(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        block = builder.block(builder.genesis, 1)
        tracker.add_vote(builder.vote(block, voter=0))
        tracker.add_vote(builder.vote(block, voter=0))
        assert tracker.count(block.id()) == 1

    def test_vote_for_unknown_block_skipped(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        block = builder.block(builder.genesis, 1)
        other_builder_block = builder.block(block, 2)
        del other_builder_block
        from repro.types.vote import StrongVote
        from repro.crypto.hashing import hash_bytes

        phantom = StrongVote(
            block_id=hash_bytes(b"nowhere"),
            block_round=9,
            height=9,
            voter=1,
        )
        tracker.add_vote(phantom)
        assert tracker.skipped_votes == 1


class TestIndirectEndorsement:
    def test_marker_zero_endorses_all_ancestors(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        tracker.add_vote(builder.vote(blocks[-1], voter=4, marker=0))
        for block in blocks:
            assert 4 in tracker.endorsers(block.id())

    def test_marker_blocks_low_round_ancestors(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        blocks = builder.chain(builder.genesis, [1, 2, 3, 4])
        tracker.add_vote(builder.vote(blocks[-1], voter=4, marker=2))
        # Endorses rounds 3 and 4 (marker < round), not rounds 1 and 2.
        assert 4 in tracker.endorsers(blocks[3].id())
        assert 4 in tracker.endorsers(blocks[2].id())
        assert 4 not in tracker.endorsers(blocks[1].id())
        assert 4 not in tracker.endorsers(blocks[0].id())

    def test_qc_feeds_all_votes(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        blocks = builder.chain(builder.genesis, [1, 2])
        qc = builder.store.qc_for(blocks[1].id())
        tracker.add_strong_qc(qc)
        assert tracker.count(blocks[0].id()) == builder.quorum()

    def test_qc_reprocessing_is_noop(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        blocks = builder.chain(builder.genesis, [1, 2])
        qc = builder.store.qc_for(blocks[1].id())
        tracker.add_strong_qc(qc)
        count = tracker.count(blocks[0].id())
        tracker.add_strong_qc(qc)
        assert tracker.count(blocks[0].id()) == count

    def test_listener_fires_on_growth(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        events = []
        tracker.add_listener(
            lambda block, count, now: events.append((block.round, count))
        )
        block = builder.block(builder.genesis, 1)
        tracker.add_vote(builder.vote(block, voter=0))
        tracker.add_vote(builder.vote(block, voter=1))
        assert events == [(1, 1), (1, 2)]

    def test_fork_votes_do_not_endorse_other_branch(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        base = builder.block(builder.genesis, 1)
        main = builder.block(base, 2)
        fork = builder.block(base, 3)
        tracker.add_vote(builder.vote(fork, voter=5, marker=0))
        assert 5 not in tracker.endorsers(main.id())
        assert 5 in tracker.endorsers(base.id())


class TestEarlyStopExactness:
    def test_matches_oracle_on_forked_history(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        oracle = BruteForceEndorsementOracle(builder.store, mode="round")
        base = builder.block(builder.genesis, 1)
        main = [base] + [builder.block(base, 2)]
        main.append(builder.block(main[-1], 3))
        fork = builder.block(base, 4)
        fork2 = builder.block(fork, 5)
        votes = [
            builder.vote(main[1], voter=0, marker=0),
            builder.vote(main[2], voter=0, marker=0),
            builder.vote(fork, voter=0, marker=3),
            builder.vote(fork2, voter=0, marker=3),
            builder.vote(fork2, voter=1, marker=0),
            builder.vote(main[2], voter=2, marker=4),
        ]
        for vote in votes:
            tracker.add_vote(vote)
            oracle.add_vote(vote)
        for block in builder.store.all_blocks():
            if block.is_genesis():
                continue
            assert tracker.endorsers(block.id()) == oracle.endorsers(
                block.id()
            ), f"mismatch at round {block.round}"

    def test_decreasing_marker_reprocesses_deeper(self, builder):
        # A later vote with a *smaller* marker must extend coverage.
        tracker = EndorsementTracker(builder.store, mode="round")
        blocks = builder.chain(builder.genesis, [1, 2, 3, 4, 5])
        tracker.add_vote(builder.vote(blocks[3], voter=7, marker=3))
        assert 7 not in tracker.endorsers(blocks[1].id())
        tracker.add_vote(builder.vote(blocks[4], voter=7, marker=0))
        assert 7 in tracker.endorsers(blocks[1].id())
        assert 7 in tracker.endorsers(blocks[0].id())


class TestKEndorsement:
    def test_k_endorsers_vary_with_threshold(self, builder):
        tracker = EndorsementTracker(builder.store, mode="height")
        blocks = builder.chain(builder.genesis, [1, 2, 3])  # heights 1..3
        tracker.add_vote(builder.vote(blocks[-1], voter=3, marker=2))
        # marker < k: k = 3 yes; k = 2 no.
        assert 3 in tracker.endorsers_at(blocks[0].id(), 3)
        assert 3 not in tracker.endorsers_at(blocks[0].id(), 2)

    def test_direct_vote_k_endorses_regardless_of_marker(self, builder):
        tracker = EndorsementTracker(builder.store, mode="height")
        block = builder.block(builder.genesis, 1)
        tracker.add_vote(builder.vote(block, voter=2, marker=99))
        assert 2 in tracker.endorsers_at(block.id(), 1)
        assert 2 in tracker.endorsers_at(block.id(), 50)

    def test_count_at_matches_oracle(self, builder):
        tracker = EndorsementTracker(builder.store, mode="height")
        oracle = BruteForceEndorsementOracle(builder.store, mode="height")
        base = builder.block(builder.genesis, 1)
        main = builder.block(base, 2)
        fork = builder.block(base, 3)
        votes = [
            builder.vote(main, voter=0, marker=0),
            builder.vote(fork, voter=0, marker=2),
            builder.vote(fork, voter=1, marker=0),
        ]
        for vote in votes:
            tracker.add_vote(vote)
            oracle.add_vote(vote)
        for block in builder.store.all_blocks():
            if block.is_genesis():
                continue
            for k in range(1, 5):
                assert tracker.count_at(block.id(), k) == oracle.count(
                    block.id(), k
                ), f"k={k} round={block.round}"


class TestIntervalVotes:
    def test_interval_vote_endorses_inside_intervals_only(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        blocks = builder.chain(builder.genesis, [1, 2, 3, 4, 5])
        vote = builder.vote(
            blocks[-1], voter=6, marker=4, intervals=((1, 2), (5, 5))
        )
        tracker.add_vote(vote)
        assert 6 in tracker.endorsers(blocks[0].id())  # round 1
        assert 6 in tracker.endorsers(blocks[1].id())  # round 2
        assert 6 not in tracker.endorsers(blocks[2].id())  # round 3
        assert 6 not in tracker.endorsers(blocks[3].id())  # round 4
        assert 6 in tracker.endorsers(blocks[4].id())  # round 5 (direct too)

    def test_interval_votes_match_oracle(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        oracle = BruteForceEndorsementOracle(builder.store, mode="round")
        blocks = builder.chain(builder.genesis, [1, 2, 3, 4])
        votes = [
            builder.vote(blocks[2], voter=0, intervals=((2, 3),)),
            builder.vote(blocks[3], voter=0, intervals=((1, 1), (4, 4))),
            builder.vote(blocks[3], voter=1, intervals=((1, 4),)),
        ]
        for vote in votes:
            tracker.add_vote(vote)
            oracle.add_vote(vote)
        for block in blocks:
            assert tracker.endorsers(block.id()) == oracle.endorsers(
                block.id()
            ), f"round {block.round}"

    def test_interval_union_accumulates(self, builder):
        tracker = EndorsementTracker(builder.store, mode="round")
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        tracker.add_vote(
            builder.vote(blocks[2], voter=0, intervals=((3, 3),))
        )
        assert 0 not in tracker.endorsers(blocks[0].id())
        tracker.add_vote(
            builder.vote(blocks[2], voter=0, intervals=((1, 1),))
        )
        assert 0 in tracker.endorsers(blocks[0].id())

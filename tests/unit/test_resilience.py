"""Strength levels, ratio grid, timelines."""

import pytest

from repro.core.resilience import (
    StrengthTimeline,
    level_for_ratio,
    max_strength,
    ratio_grid,
)
from repro.types.block import make_genesis


class TestLevels:
    def test_max_strength(self):
        assert max_strength(33) == 66

    def test_paper_grid_f33(self):
        # Paper convention: 1.7f with f=33 denotes x = 56 = 2f - 10.
        assert level_for_ratio(1.0, 33) == 33
        assert level_for_ratio(1.7, 33) == 56
        assert level_for_ratio(2.0, 33) == 66

    def test_float_artifacts_guarded(self):
        # 1.1 * 33 = 36.30000000000000426…
        assert level_for_ratio(1.1, 33) == 36
        # 1.7 * 10 = 16.999999999999998
        assert level_for_ratio(1.7, 10) == 17

    def test_ratio_grid_default(self):
        grid = ratio_grid()
        assert grid[0] == 1.0
        assert grid[-1] == 2.0
        assert len(grid) == 11

    def test_ratio_grid_custom(self):
        assert ratio_grid(1.0, 1.4, 0.2) == (1.0, 1.2, 1.4)


class TestStrengthTimeline:
    def _timeline(self):
        genesis, _ = make_genesis()
        return StrengthTimeline(genesis)

    def test_raise_records_every_level(self):
        timeline = self._timeline()
        assert timeline.raise_to(3, now=1.0)
        assert timeline.first_reached(0) == 1.0
        assert timeline.first_reached(3) == 1.0
        assert timeline.first_reached(4) is None

    def test_raise_is_monotone(self):
        timeline = self._timeline()
        timeline.raise_to(3, now=1.0)
        assert not timeline.raise_to(2, now=2.0)
        assert not timeline.raise_to(3, now=2.0)
        assert timeline.current == 3

    def test_later_levels_stamped_later(self):
        timeline = self._timeline()
        timeline.raise_to(2, now=1.0)
        timeline.raise_to(5, now=4.0)
        assert timeline.first_reached(2) == 1.0
        assert timeline.first_reached(3) == 4.0
        assert timeline.first_reached(5) == 4.0

    def test_latency_relative_to_creation(self):
        from repro.types.block import Block
        from repro.types.quorum_cert import QuorumCertificate

        genesis, genesis_qc = make_genesis()
        block = Block(
            parent_id=genesis.id(),
            qc=genesis_qc,
            round=1,
            height=1,
            proposer=0,
            created_at=10.0,
        )
        timeline = StrengthTimeline(block)
        timeline.raise_to(1, now=12.5)
        assert timeline.latency_to(1) == pytest.approx(2.5)
        assert timeline.latency_to(2) is None
        del QuorumCertificate

"""QC-diversity health monitoring (Section 5)."""

import pytest

from repro.analysis.health import QCDiversityMonitor


class TestObservation:
    def test_appearances_counted(self, builder):
        monitor = QCDiversityMonitor(builder.n)
        block = builder.block(builder.genesis, 1)
        qc = builder.certify(block, voters=(0, 1, 2))
        monitor.observe_qc(qc)
        report = {h.replica_id: h for h in monitor.report()}
        assert report[0].qc_appearances == 1
        assert report[3].qc_appearances == 0
        assert report[0].last_seen_round == 1

    def test_observe_chain_walks_commits(self, builder):
        from repro.core.commit_rules import CommitTracker

        tracker = CommitTracker(builder.store, f=builder.f, rule="diembft")
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        for block in blocks:
            tracker.on_new_qc(builder.store.qc_for(block.id()), now=1.0)
        monitor = QCDiversityMonitor(builder.n)
        observed = monitor.observe_chain(builder.store, tracker.commit_order)
        assert observed == 1  # only B_1 committed; genesis QC has no votes

    def test_out_of_range_voters_ignored(self, builder):
        monitor = QCDiversityMonitor(2)
        block = builder.block(builder.genesis, 1)
        qc = builder.certify(block, voters=(0, 1, 3))
        monitor.observe_qc(qc)
        assert monitor.qc_count() == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            QCDiversityMonitor(0)


class TestDiagnosis:
    def _monitor_with(self, builder, voter_sets):
        monitor = QCDiversityMonitor(builder.n)
        parent = builder.genesis
        for round_number, voters in enumerate(voter_sets, start=1):
            block = builder.block(parent, round_number)
            qc = builder.certify(block, voters=voters)
            monitor.observe_qc(qc)
            parent = block
        return monitor

    def test_outcasts_detected(self, builder):
        monitor = self._monitor_with(
            builder, [(0, 1, 2), (0, 1, 2), (0, 1, 2)]
        )
        outcasts = {health.replica_id for health in monitor.outcasts()}
        assert outcasts == {3}

    def test_stragglers_by_rate(self, builder):
        monitor = self._monitor_with(
            builder, [(0, 1, 2), (0, 1, 2), (0, 1, 3)]
        )
        stragglers = {h.replica_id for h in monitor.stragglers(0.5)}
        assert stragglers == {3}

    def test_report_sorted_worst_first(self, builder):
        monitor = self._monitor_with(builder, [(0, 1, 2), (0, 1, 2)])
        report = monitor.report()
        assert report[0].replica_id == 3

    def test_max_achievable_strength(self, builder):
        # f=1, n=4; only 3 participants → cap = 3 - 1 - 1 = 1 = f.
        monitor = self._monitor_with(builder, [(0, 1, 2)])
        assert monitor.max_achievable_strength(builder.f) == builder.f
        # All four appear → cap = 2f.
        monitor2 = self._monitor_with(builder, [(0, 1, 2, 3)])
        assert monitor2.max_achievable_strength(builder.f) == 2 * builder.f

    def test_window_expires_old_appearances(self, builder):
        monitor = QCDiversityMonitor(builder.n, window=2)
        parent = builder.genesis
        for round_number, voters in enumerate(
            [(3, 0, 1), (0, 1, 2), (0, 1, 2)], start=1
        ):
            block = builder.block(parent, round_number)
            monitor.observe_qc(builder.certify(block, voters=voters))
            parent = block
        # Replica 3 appeared only in the expired first QC.
        report = {h.replica_id: h for h in monitor.report()}
        assert report[3].qc_appearances == 0
        assert monitor.qc_count() == 2

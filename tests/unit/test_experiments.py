"""Campaign engine units: specs, fault mixes, expansion, baselines."""

import json

import pytest

from repro.experiments import (
    Campaign,
    FaultMix,
    PartitionWindow,
    Regression,
    ScenarioSpec,
    diff_reports,
    load_scenario,
    spec_from_mapping,
)


class TestScenarioSpec:
    def test_defaults_resolve_to_config(self):
        spec = ScenarioSpec(name="x", n=7)
        config = spec.to_experiment_config()
        assert config.protocol == "sft-diembft"
        assert config.n == 7
        assert config.seed == 1
        assert config.crash_schedule == ()
        assert config.partition_schedule == ()

    def test_seed_override(self):
        spec = ScenarioSpec(name="x", seeds=(3, 4))
        assert spec.to_experiment_config().seed == 3
        assert spec.to_experiment_config(9).seed == 9

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            ScenarioSpec(name="x", protocol="pbft")

    def test_with_overrides_dotted_fault_key(self):
        spec = ScenarioSpec(name="x", n=10)
        derived = spec.with_overrides(**{"faults.crash": 2, "n": 13})
        assert derived.faults.crash == 2
        assert derived.n == 13
        assert spec.faults.crash == 0  # original untouched

    def test_fault_mix_exceeding_n_rejected(self):
        with pytest.raises(ValueError, match="fault mix"):
            ScenarioSpec(name="x", n=4, faults=FaultMix(crash=3, silent=2))

    def test_build_applies_faults_and_partitions(self):
        spec = ScenarioSpec(
            name="x",
            n=7,
            duration=1.0,
            faults=FaultMix(silent=1, crash=1),
            partitions=(PartitionWindow(start=0.2, end=0.4),),
        )
        cluster = spec.build().build()
        # Silent behaviour on the top id, crash scheduled for the next.
        assert cluster.byzantine_ids == frozenset({6})
        assert type(cluster.replicas[6]).__name__.startswith("Silent")
        assert cluster.config.crash_schedule == ((5, 0.0),)
        assert len(cluster.network._partitions) == 1


class TestFaultMix:
    def test_assignment_is_deterministic_and_disjoint(self):
        mix = FaultMix(crash=2, silent=1, equivocate=1, lazy=1)
        assigned = mix.assignments(10)
        ids = [rid for ids in assigned.values() for rid in ids]
        assert len(ids) == len(set(ids)) == 5
        assert assigned == mix.assignments(10)
        assert assigned["silent"] == (9,)
        assert assigned["equivocate"] == (8,)
        assert assigned["lazy"] == (7,)
        assert assigned["crash"] == (6, 5)

    def test_byzantine_ids_exclude_crashes(self):
        mix = FaultMix(crash=1, silent=1)
        assert mix.byzantine_ids(7) == (6,)
        assert mix.crash_schedule(7) == ((5, 0.0),)


class TestPartitionWindow:
    def test_split_resolution(self):
        window = PartitionWindow(start=1.0, end=2.0, split=0.5)
        groups = window.resolve(7)
        assert groups == ((0, 1, 2), (3, 4, 5, 6))

    def test_explicit_groups(self):
        window = PartitionWindow(start=0.0, end=1.0, groups=((0, 1), (2, 3)))
        assert window.resolve(4) == ((0, 1), (2, 3))


class TestSpecLoading:
    def test_mapping_round_trip(self):
        spec = spec_from_mapping(
            {
                "protocol": "diembft",
                "n": 10,
                "seeds": [1, 2],
                "faults": {"crash": 1},
                "partitions": [{"start": 1.0, "end": 2.0}],
            },
            name="demo",
        )
        assert spec.name == "demo"
        assert spec.seeds == (1, 2)
        assert spec.faults.crash == 1
        assert spec.partitions[0].end == 2.0

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            spec_from_mapping({"protcol": "diembft"})
        with pytest.raises(ValueError, match="unknown fault keys"):
            spec_from_mapping({"faults": {"crsh": 1}})

    def test_json_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"n": 4, "protocol": "diembft"}))
        spec = load_scenario(path)
        assert spec.name == "s"
        assert spec.n == 4


class TestCampaignExpansion:
    def test_cross_product_counts(self):
        base = ScenarioSpec(name="m", n=7, seeds=(1, 2))
        campaign = Campaign(
            base,
            matrix={"protocol": ["diembft", "sft-diembft"], "n": [4, 7, 10]},
        )
        jobs = campaign.expand()
        assert campaign.job_count() == len(jobs) == 2 * 3 * 2
        assert len({job.job_id for job in jobs}) == len(jobs)
        assert jobs[0].job_id == "m/protocol=diembft,n=4,seed=1"
        assert jobs[-1].params == {"protocol": "sft-diembft", "n": 10}

    def test_fault_axis(self):
        base = ScenarioSpec(name="m", n=10)
        campaign = Campaign(base, matrix={"faults.crash": [0, 1, 2]})
        jobs = campaign.expand()
        assert [job.spec.faults.crash for job in jobs] == [0, 1, 2]

    def test_seed_axis_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            Campaign(ScenarioSpec(name="m"), matrix={"seeds": [[1], [2]]})

    def test_bad_axis_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown matrix axis"):
            Campaign(ScenarioSpec(name="m"), matrix={"not_a_field": [1]})

    def test_late_invalid_axis_value_fails_at_construction(self):
        # n=7 is fine, n=3 can't hold the 4-replica fault mix — the
        # second value must fail at load time, not mid-campaign.
        base = ScenarioSpec(name="m", n=7, faults=FaultMix(crash=4))
        with pytest.raises(ValueError, match="value 3"):
            Campaign(base, matrix={"n": [7, 3]})

    def test_cross_axis_invalid_combo_fails_at_expand(self):
        base = ScenarioSpec(name="m", n=7)
        campaign = Campaign(
            base, matrix={"n": [7, 4], "faults.crash": [0, 5]}
        )
        with pytest.raises(ValueError, match="fault mix"):
            campaign.expand()

    def test_no_matrix_expands_seeds_only(self):
        campaign = Campaign(ScenarioSpec(name="m", seeds=(7, 8, 9)))
        assert [job.seed for job in campaign.expand()] == [7, 8, 9]


def _report_with(job_id, latency, per_commit=10.0, commits=100, safe=True):
    return {
        "jobs": [
            {
                "job_id": job_id,
                "metrics": {
                    "commits": commits,
                    "regular_latency_s": latency,
                    "messages": {"per_commit": per_commit},
                    "safety_ok": safe,
                },
            }
        ]
    }


class TestBaselineDiff:
    def test_no_regression_within_tolerance(self):
        current = _report_with("a/seed=1", 0.11)
        baseline = _report_with("a/seed=1", 0.10)
        assert diff_reports(current, baseline) == []

    def test_latency_regression_detected(self):
        current = _report_with("a/seed=1", 0.20)
        baseline = _report_with("a/seed=1", 0.10)
        regressions = diff_reports(current, baseline)
        assert [r.metric for r in regressions] == ["regular_latency_s"]
        assert "a/seed=1" in regressions[0].describe()

    def test_message_and_commit_regressions(self):
        current = _report_with("a/seed=1", 0.10, per_commit=20.0, commits=10)
        baseline = _report_with("a/seed=1", 0.10, per_commit=10.0, commits=100)
        metrics = {r.metric for r in diff_reports(current, baseline)}
        assert metrics == {"messages.per_commit", "commits"}

    def test_missing_job_is_a_regression(self):
        current = {"jobs": []}
        baseline = _report_with("a/seed=1", 0.10)
        regressions = diff_reports(current, baseline)
        assert regressions == [
            Regression("a/seed=1", "missing-job", None, None, None)
        ]

    def test_unsafe_job_is_a_regression(self):
        current = _report_with("a/seed=1", 0.10, safe=False)
        baseline = _report_with("a/seed=1", 0.10)
        assert "safety_ok" in {r.metric for r in diff_reports(current, baseline)}

    def test_tolerance_is_configurable(self):
        current = _report_with("a/seed=1", 0.14)
        baseline = _report_with("a/seed=1", 0.10)
        assert diff_reports(current, baseline, latency_tolerance=0.5) == []
        assert diff_reports(current, baseline, latency_tolerance=0.1)


class TestValidationGaps:
    """Malformed schedules the fuzz generator's neighbourhood can
    produce must fail loudly at spec-construction time."""

    def test_negative_fault_counts_rejected(self):
        with pytest.raises(ValueError, match="faults.silent"):
            FaultMix(silent=-1)
        with pytest.raises(ValueError, match="faults.crash"):
            FaultMix(crash=-2)

    def test_overfull_fault_mix_rejected(self):
        with pytest.raises(ValueError, match="fault mix"):
            ScenarioSpec(name="x", n=4, faults=FaultMix(silent=3, equivocate=2))

    def test_nan_and_negative_latencies_rejected(self):
        with pytest.raises(ValueError, match="uniform_delay"):
            ScenarioSpec(name="x", uniform_delay=float("nan"))
        with pytest.raises(ValueError, match="jitter"):
            ScenarioSpec(name="x", jitter=-0.1)
        with pytest.raises(ValueError, match="delta"):
            ScenarioSpec(name="x", delta=float("inf"))
        with pytest.raises(ValueError, match="crash_at"):
            FaultMix(crash=1, crash_at=float("nan"))

    def test_bad_f_rejected(self):
        with pytest.raises(ValueError, match="f must be"):
            ScenarioSpec(name="x", n=4, f=-1)
        with pytest.raises(ValueError, match="f must be"):
            ScenarioSpec(name="x", n=4, f=1.5)

    def test_nonpositive_run_knobs_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            ScenarioSpec(name="x", duration=0.0)
        with pytest.raises(ValueError, match="round_timeout"):
            ScenarioSpec(name="x", round_timeout=-1.0)
        with pytest.raises(ValueError, match="n must be"):
            ScenarioSpec(name="x", n=0)
        with pytest.raises(ValueError, match="seeds"):
            ScenarioSpec(name="x", seeds=())

    def test_inverted_partition_window_rejected(self):
        with pytest.raises(ValueError, match="before it starts"):
            PartitionWindow(start=3.0, end=1.0)
        with pytest.raises(ValueError, match="before it starts"):
            PartitionWindow(start=1.0, end=1.0)

    def test_partition_split_bounds(self):
        with pytest.raises(ValueError, match="split"):
            PartitionWindow(start=0.0, end=1.0, split=0.0)
        with pytest.raises(ValueError, match="split"):
            PartitionWindow(start=0.0, end=1.0, split=1.5)

    def test_partition_past_duration_rejected(self):
        with pytest.raises(ValueError, match="past duration"):
            ScenarioSpec(
                name="x",
                duration=5.0,
                partitions=(PartitionWindow(start=6.0, end=8.0),),
            )

    def test_withhold_reach_bounds(self):
        with pytest.raises(ValueError, match="withhold_reach"):
            FaultMix(withhold=1, withhold_reach=1.5)
        with pytest.raises(ValueError, match="withhold_reach"):
            FaultMix(withhold=1, withhold_reach=-0.5)


class TestMarkerLieMix:
    def test_marker_lie_assignment_and_byzantine_ids(self):
        mix = FaultMix(marker_lie=2, crash=1)
        assigned = mix.assignments(10)
        assert assigned["marker_lie"] == (9, 8)
        assert assigned["crash"] == (7,)
        assert set(mix.byzantine_ids(10)) == {9, 8}
        assert mix.byzantine_total() == 3

    def test_lazy_excluded_from_byzantine_total(self):
        mix = FaultMix(lazy=2, silent=1)
        assert mix.byzantine_total() == 1
        assert mix.non_voting() == 1

    def test_marker_lie_override_applies(self):
        spec = ScenarioSpec(name="x", n=7, faults=FaultMix(marker_lie=1))
        cluster = spec.build().build()
        assert type(cluster.replicas[6]).__name__.startswith("MarkerLiar")


class TestSpecSerialization:
    def test_to_mapping_omits_defaults(self):
        from repro.experiments import spec_to_mapping

        mapping = spec_to_mapping(ScenarioSpec(name="x"))
        assert mapping == {"name": "x"}

    def test_round_trip_with_everything(self):
        from repro.experiments import spec_from_mapping, spec_to_mapping

        spec = ScenarioSpec(
            name="full",
            protocol="sft-streamlet",
            n=10,
            gst=1.5,
            pre_gst_delay=0.3,
            naive_accounting=True,
            duration=9.0,
            seeds=(3, 4),
            faults=FaultMix(silent=1, crash=1, crash_at=2.0, marker_lie=1),
            partitions=(
                PartitionWindow(start=1.0, end=2.0, split=0.3),
                PartitionWindow(start=3.0, end=4.0, groups=((0, 1), (2, 3))),
            ),
        )
        assert spec_from_mapping(spec_to_mapping(spec)) == spec

    def test_save_and_load_scenario(self, tmp_path):
        from repro.experiments import load_scenario, save_scenario

        spec = ScenarioSpec(
            name="saved", n=7, script="appendix_c", naive_accounting=True
        )
        path = tmp_path / "saved.json"
        save_scenario(spec, path)
        assert load_scenario(path) == spec

"""Canonical serialization: injectivity and type coverage."""

import pytest

from repro.crypto.serialization import SerializationError, canonical_bytes


class TestCanonicalBytes:
    def test_deterministic(self):
        assert canonical_bytes(1, "a", b"b") == canonical_bytes(1, "a", b"b")

    def test_distinguishes_int_from_str(self):
        assert canonical_bytes(1) != canonical_bytes("1")

    def test_distinguishes_str_from_bytes(self):
        assert canonical_bytes("a") != canonical_bytes(b"a")

    def test_distinguishes_bool_from_int(self):
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(False) != canonical_bytes(0)

    def test_none_supported(self):
        assert canonical_bytes(None) != canonical_bytes(0)

    def test_nested_structure_differs_from_flat(self):
        assert canonical_bytes(1, "a") != canonical_bytes((1, "a"))

    def test_empty_sequences_differ_by_nesting(self):
        assert canonical_bytes(()) != canonical_bytes(((),))

    def test_negative_integers(self):
        assert canonical_bytes(-1) != canonical_bytes(1)
        assert canonical_bytes(-256) != canonical_bytes(-255)

    def test_large_integers(self):
        big = 2**200
        assert canonical_bytes(big) != canonical_bytes(big + 1)

    def test_string_boundary_not_ambiguous(self):
        # A classic failure mode: ("ab", "c") colliding with ("a", "bc").
        assert canonical_bytes("ab", "c") != canonical_bytes("a", "bc")

    def test_bytes_boundary_not_ambiguous(self):
        assert canonical_bytes(b"ab", b"c") != canonical_bytes(b"a", b"bc")

    def test_floats_encoded_fixed_width(self):
        assert canonical_bytes(1.5) != canonical_bytes(1.25)
        assert canonical_bytes(0.0) == canonical_bytes(0.0)

    def test_lists_and_tuples_equivalent(self):
        assert canonical_bytes([1, 2]) == canonical_bytes((1, 2))

    def test_unsupported_type_raises(self):
        with pytest.raises(SerializationError):
            canonical_bytes({"a": 1})

    def test_unsupported_nested_type_raises(self):
        with pytest.raises(SerializationError):
            canonical_bytes((1, {"a": 1}))

    def test_unicode_strings(self):
        assert canonical_bytes("héllo") != canonical_bytes("hello")

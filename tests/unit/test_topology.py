"""Geo topologies (Figure 6)."""

import pytest

from repro.net.topology import (
    AsymmetricTopology,
    RegionTopology,
    SymmetricTopology,
    UniformTopology,
)


class TestUniform:
    def test_self_delay_zero(self):
        topology = UniformTopology(5, delay=0.01)
        assert topology.delay(2, 2) == 0.0
        assert topology.delay(0, 4) == 0.01

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UniformTopology(0)


class TestSymmetric:
    def test_paper_split_100(self):
        topology = SymmetricTopology(100, delta=0.1)
        assert topology.region_sizes == (34, 33, 33)
        assert topology.n == 100

    def test_regions_assigned_contiguously(self):
        topology = SymmetricTopology(100, delta=0.1)
        assert topology.region_of(0) == 0
        assert topology.region_of(33) == 0
        assert topology.region_of(34) == 1
        assert topology.region_of(66) == 1
        assert topology.region_of(67) == 2
        assert topology.region_of(99) == 2

    def test_cross_region_delay_is_delta(self):
        topology = SymmetricTopology(100, delta=0.1, intra_delay=0.001)
        assert topology.delay(0, 99) == 0.1
        assert topology.delay(0, 1) == 0.001
        assert topology.delay(40, 50) == 0.001

    def test_delay_symmetric(self):
        topology = SymmetricTopology(100, delta=0.1)
        assert topology.delay(3, 80) == topology.delay(80, 3)

    def test_describe_mentions_delta(self):
        assert "100ms" in SymmetricTopology(100, delta=0.1).describe()


class TestAsymmetric:
    def test_paper_regions(self):
        topology = AsymmetricTopology(delta=0.1)
        assert topology.region_sizes == (45, 45, 10)
        assert topology.n == 100

    def test_ab_fast_c_slow(self):
        topology = AsymmetricTopology(delta=0.1, ab_delay=0.02)
        a, b, c = 0, 45, 90
        assert topology.delay(a, b) == 0.02
        assert topology.delay(a, c) == 0.1
        assert topology.delay(b, c) == 0.1
        assert topology.delay(c, c + 1) == 0.001

    def test_replicas_in_region(self):
        topology = AsymmetricTopology(delta=0.1)
        region_c = topology.replicas_in_region(2)
        assert region_c == tuple(range(90, 100))


class TestRegionTopology:
    def test_missing_pair_rejected(self):
        with pytest.raises(ValueError):
            RegionTopology((2, 2, 2), {(0, 1): 0.1, (0, 2): 0.1})

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            RegionTopology((2, 0), {(0, 1): 0.1})

    def test_inter_delays_order_insensitive(self):
        topology = RegionTopology((1, 1), {(1, 0): 0.05})
        assert topology.delay(0, 1) == 0.05
        assert topology.delay(1, 0) == 0.05

"""The perf subsystem: suites, reports, and the 20% regression gate."""

import json

import pytest

from repro.experiments.spec import ScenarioSpec
from repro.perf import (
    BenchmarkCase,
    SUITES,
    bench_path,
    build_report,
    compare_benchmarks,
    format_bench_table,
    format_comparison,
    full_suite,
    load_bench,
    run_suite,
    save_bench,
    smoke_suite,
    suite_jobs,
)


def tiny_case(name="tiny", seed=1, duration=0.8):
    return BenchmarkCase(
        name=name,
        category="happy",
        description="tiny happy-path case for tests",
        spec=ScenarioSpec(
            name=name,
            protocol="sft-diembft",
            n=4,
            topology="uniform",
            round_timeout=0.2,
            duration=duration,
            seeds=(seed,),
            block_batch_count=2,
            block_batch_bytes=100,
        ),
        seed=seed,
    )


def fake_entry(name, events=1000, rate=100.0):
    return {
        "name": name,
        "category": "happy",
        "description": name,
        "protocol": "sft-diembft",
        "n": 4,
        "sim_duration_s": 1.0,
        "seed": 1,
        "events": events,
        "commits": 10,
        "messages_sent": 50,
        "wall_clock_s": events / rate,
        "wall_clock_runs": [events / rate],
        "events_per_sec": rate,
        "sim_ratio": 1.0,
    }


def fake_report(label, rates):
    return build_report(
        label,
        "smoke",
        [fake_entry(name, rate=rate) for name, rate in rates.items()],
        repeats=1,
        workers=1,
    )


class TestSuites:
    def test_suite_registry(self):
        assert SUITES["full"] is full_suite
        assert SUITES["smoke"] is smoke_suite

    @pytest.mark.parametrize("factory", [full_suite, smoke_suite])
    def test_suites_are_well_formed(self, factory):
        cases = factory()
        assert cases
        names = [case.name for case in cases]
        assert len(names) == len(set(names)), "benchmark names must be unique"
        for case in cases:
            assert case.spec.script == "", "bench cases need an event loop"
        assert any(case.category == "verify" for case in cases)
        assert any(case.category == "fuzz" for case in cases)

    def test_full_suite_covers_paper_scales(self):
        names = {case.name for case in full_suite()}
        for n in (4, 16, 32, 64):
            assert f"happy_n{n}" in names
        assert "verify_heavy_n32" in names
        verify = next(
            case for case in full_suite() if case.name == "verify_heavy_n32"
        )
        assert verify.spec.verify_signatures
        assert verify.spec.n == 32

    def test_suite_jobs_shape(self):
        jobs = suite_jobs([tiny_case()])
        assert jobs[0].job_id == "bench/tiny"
        assert jobs[0].params == {"benchmark": "tiny"}


class TestRunSuite:
    def test_run_suite_measures_events(self):
        results = run_suite([tiny_case()], repeats=2)
        (entry,) = results
        assert entry["name"] == "tiny"
        assert entry["events"] > 0
        assert entry["commits"] > 0
        assert len(entry["wall_clock_runs"]) == 2
        assert entry["wall_clock_s"] == min(entry["wall_clock_runs"])
        assert entry["events_per_sec"] > 0

    def test_run_suite_repeats_are_deterministic(self):
        first = run_suite([tiny_case()], repeats=1)[0]
        second = run_suite([tiny_case()], repeats=1)[0]
        for key in ("events", "commits", "messages_sent"):
            assert first[key] == second[key]


class TestReport:
    def test_build_and_roundtrip(self, tmp_path):
        report = fake_report("x", {"a": 100.0})
        path = tmp_path / "BENCH_x.json"
        save_bench(report, path)
        assert load_bench(path) == report
        assert json.loads(path.read_text())["label"] == "x"

    def test_bench_path_convention(self, tmp_path):
        assert bench_path("opt", tmp_path) == tmp_path / "BENCH_opt.json"

    def test_summary_totals(self):
        report = fake_report("x", {"a": 100.0, "b": 200.0})
        assert report["summary"]["cases"] == 2
        assert report["summary"]["total_events"] == 2000

    def test_format_table_mentions_every_case(self):
        report = fake_report("x", {"alpha": 100.0, "beta": 50.0})
        table = format_bench_table(report)
        assert "alpha" in table and "beta" in table


class TestCompareGate:
    def test_no_regression_within_threshold(self):
        baseline = fake_report("base", {"a": 100.0})
        current = fake_report("cur", {"a": 85.0})  # -15% < 20% threshold
        assert compare_benchmarks(current, baseline) == []

    def test_regression_past_threshold(self):
        baseline = fake_report("base", {"a": 100.0})
        current = fake_report("cur", {"a": 75.0})  # -25%
        regressions = compare_benchmarks(current, baseline)
        assert len(regressions) == 1
        assert regressions[0].name == "a"
        assert regressions[0].metric == "events_per_sec"
        assert "a" in regressions[0].describe()

    def test_missing_benchmark_is_regression(self):
        baseline = fake_report("base", {"a": 100.0, "b": 100.0})
        current = fake_report("cur", {"a": 100.0})
        regressions = compare_benchmarks(current, baseline)
        assert [r.metric for r in regressions] == ["missing-benchmark"]

    def test_speedup_never_flags(self):
        baseline = fake_report("base", {"a": 100.0})
        current = fake_report("cur", {"a": 300.0})
        assert compare_benchmarks(current, baseline) == []

    def test_threshold_is_tunable(self):
        baseline = fake_report("base", {"a": 100.0})
        current = fake_report("cur", {"a": 85.0})
        assert compare_benchmarks(current, baseline, threshold=0.10)

    def test_format_comparison_shows_speedup(self):
        baseline = fake_report("base", {"a": 100.0})
        current = fake_report("cur", {"a": 250.0})
        text = format_comparison(current, baseline)
        assert "2.50x" in text


class TestCli:
    def test_bench_run_and_compare_cli(self, tmp_path, monkeypatch, capsys):
        from repro import cli
        from repro.perf import benchmarks

        monkeypatch.setitem(
            benchmarks.SUITES, "smoke", lambda: (tiny_case(),)
        )
        out = tmp_path / "BENCH_t1.json"
        code = cli.main([
            "bench", "run", "--suite", "smoke", "--label", "t1",
            "--repeats", "1", "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        capsys.readouterr()

        # Self-comparison passes the gate…
        code = cli.main(["bench", "compare", str(out), str(out)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

        # …a slowed-down baseline fails it.
        slow = load_bench(out)
        for entry in slow["benchmarks"]:
            entry["events_per_sec"] = entry["events_per_sec"] * 3
        slow_path = tmp_path / "BENCH_slow.json"
        save_bench(slow, slow_path)
        code = cli.main(["bench", "compare", str(out), str(slow_path)])
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_bench_compare_bad_file_exits_2(self, tmp_path, capsys):
        from repro import cli

        bad = tmp_path / "nope.json"
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["bench", "compare", str(bad), str(bad)])
        assert excinfo.value.code == 2
        capsys.readouterr()


class TestGateIntegrity:
    def test_empty_baseline_raises(self):
        current = fake_report("cur", {"a": 100.0})
        with pytest.raises(ValueError):
            compare_benchmarks(current, {"label": "x"})
        with pytest.raises(ValueError):
            compare_benchmarks(current, {"benchmarks": []})

    def test_cli_exits_2_on_benchless_baseline(self, tmp_path, capsys):
        from repro import cli

        good = tmp_path / "BENCH_good.json"
        save_bench(fake_report("cur", {"a": 100.0}), good)
        empty = tmp_path / "not-a-bench.json"
        empty.write_text("{}")
        code = cli.main(["bench", "compare", str(good), str(empty)])
        assert code == 2
        assert "no benchmarks" in capsys.readouterr().err

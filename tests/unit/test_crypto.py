"""Hashing, signatures, and the PKI registry."""

from dataclasses import replace

import pytest

from repro.crypto.hashing import HashDigest, hash_bytes, hash_fields
from repro.crypto.registry import KeyRegistry
from repro.crypto.signatures import Signature, SigningKey
from repro.types.vote import Vote


class TestHashing:
    def test_digest_is_32_bytes(self):
        assert len(hash_bytes(b"x").value) == 32

    def test_bad_digest_length_rejected(self):
        with pytest.raises(ValueError):
            HashDigest(b"short")

    def test_hash_fields_deterministic(self):
        assert hash_fields("block", 1) == hash_fields("block", 1)

    def test_hash_fields_sensitive_to_order(self):
        assert hash_fields(1, 2) != hash_fields(2, 1)

    def test_hex_and_short_forms(self):
        digest = hash_bytes(b"x")
        assert digest.hex().startswith(digest.short())
        assert len(digest.short()) == 10

    def test_usable_as_dict_key(self):
        digest_a = hash_bytes(b"a")
        digest_b = hash_bytes(b"a")
        table = {digest_a: 1}
        assert table[digest_b] == 1


class TestSignatures:
    def test_sign_verify_roundtrip(self):
        key = SigningKey(3, b"secret")
        signature = key.sign(b"message")
        assert key.verifying_key().verify(b"message", signature)

    def test_wrong_message_rejected(self):
        key = SigningKey(3, b"secret")
        signature = key.sign(b"message")
        assert not key.verifying_key().verify(b"other", signature)

    def test_wrong_signer_id_rejected(self):
        key = SigningKey(3, b"secret")
        signature = Signature(signer=4, value=key.sign(b"m").value)
        assert not key.verifying_key().verify(b"m", signature)

    def test_different_secrets_do_not_cross_verify(self):
        key_a = SigningKey(1, b"a")
        key_b = SigningKey(1, b"b")
        signature = key_a.sign(b"m")
        assert not key_b.verifying_key().verify(b"m", signature)


class TestKeyRegistry:
    def test_registry_is_deterministic(self):
        reg_a = KeyRegistry(4, seed=b"s")
        reg_b = KeyRegistry(4, seed=b"s")
        message = b"hello"
        signature = reg_a.signing_key(2).sign(message)
        assert reg_b.verify(message, signature)

    def test_distinct_seeds_distinct_keys(self):
        reg_a = KeyRegistry(4, seed=b"s1")
        reg_b = KeyRegistry(4, seed=b"s2")
        signature = reg_a.signing_key(0).sign(b"m")
        assert not reg_b.verify(b"m", signature)

    def test_out_of_range_signer_rejected(self):
        registry = KeyRegistry(4)
        signature = SigningKey(7, b"x").sign(b"m")
        assert not registry.verify(b"m", signature)

    def test_quorum_verification(self):
        registry = KeyRegistry(4)
        message = b"vote"
        signatures = [registry.signing_key(i).sign(message) for i in range(3)]
        assert registry.verify_quorum(message, signatures, quorum=3)

    def test_quorum_counts_distinct_signers_only(self):
        registry = KeyRegistry(4)
        message = b"vote"
        one = registry.signing_key(0).sign(message)
        assert not registry.verify_quorum(message, [one, one, one], quorum=2)

    def test_quorum_ignores_invalid_signatures(self):
        registry = KeyRegistry(4)
        message = b"vote"
        good = [registry.signing_key(i).sign(message) for i in range(2)]
        bad = [registry.signing_key(2).sign(b"other")]
        assert not registry.verify_quorum(message, good + bad, quorum=3)
        assert registry.verify_quorum(message, good, quorum=2)

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError):
            KeyRegistry(0)


class TestHashCaching:
    def test_cached_hash_matches_dataclass_hash(self):
        # Iteration order of digest-keyed sets must not move: the
        # cached value must equal the generated hash((value,)).
        digest = hash_bytes(b"stable")
        assert hash(digest) == hash((digest.value,))
        assert hash(digest) == hash(digest)  # second call hits the cache

    def test_equal_digests_share_hash_and_equality(self):
        digest_a = hash_bytes(b"same")
        digest_b = hash_bytes(b"same")
        hash(digest_a)  # warm one cache only
        assert digest_a == digest_b
        assert hash(digest_a) == hash(digest_b)


class TestVerificationMemo:
    def test_memo_returns_same_verdicts(self):
        registry = KeyRegistry(4)
        message = b"payload"
        good = registry.signing_key(1).sign(message)
        forged = Signature(signer=1, value=b"\x00" * 32)
        for _ in range(3):  # repeated calls answer from the memo
            assert registry.verify(message, good)
            assert not registry.verify(message, forged)
        assert len(registry._verify_memo) == 2

    def test_memo_distinguishes_signers_and_payloads(self):
        registry = KeyRegistry(4)
        signature = registry.signing_key(1).sign(b"a")
        assert registry.verify(b"a", signature)
        assert not registry.verify(b"b", signature)
        cross = Signature(signer=2, value=signature.value)
        assert not registry.verify(b"a", cross)

    def test_memo_disabled_still_verifies(self, monkeypatch):
        monkeypatch.setattr(KeyRegistry, "memoize", False)
        registry = KeyRegistry(4)
        message = b"payload"
        signature = registry.signing_key(0).sign(message)
        assert registry.verify(message, signature)
        assert registry._verify_memo == {}

    def test_memo_limit_clears_not_grows(self, monkeypatch):
        monkeypatch.setattr(KeyRegistry, "_MEMO_LIMIT", 4)
        registry = KeyRegistry(4)
        for index in range(10):
            message = b"m%d" % index
            registry.verify(message, registry.signing_key(0).sign(message))
        assert len(registry._verify_memo) <= 4


def _signed_vote(registry, voter, block_id=None):
    vote = Vote(
        block_id=block_id or hash_bytes(b"block"),
        block_round=3,
        height=3,
        voter=voter,
    )
    signature = registry.signing_key(voter).sign(vote.signing_payload())
    return replace(vote, signature=signature)


class TestFusedQCVerification:
    """The one-pass ``verify_qc_votes`` hot path (QC validation)."""

    def test_valid_quorum_accepted(self):
        registry = KeyRegistry(4)
        votes = [_signed_vote(registry, voter) for voter in range(3)]
        assert registry.verify_qc_votes(votes, quorum=3)

    def test_tampered_signature_fails_certificate(self):
        registry = KeyRegistry(4)
        votes = [_signed_vote(registry, voter) for voter in range(3)]
        forged = replace(
            votes[2], signature=Signature(signer=2, value=b"\x00" * 32)
        )
        assert not registry.verify_qc_votes(votes[:2] + [forged], quorum=3)

    def test_missing_signature_fails_certificate(self):
        registry = KeyRegistry(4)
        votes = [_signed_vote(registry, voter) for voter in range(2)]
        unsigned = Vote(
            block_id=hash_bytes(b"block"), block_round=3, height=3, voter=2
        )
        assert not registry.verify_qc_votes(votes + [unsigned], quorum=3)

    def test_out_of_range_signer_fails_certificate(self):
        registry = KeyRegistry(4)
        outsider = Vote(
            block_id=hash_bytes(b"block"), block_round=3, height=3, voter=9
        )
        signature = SigningKey(9, b"x").sign(outsider.signing_payload())
        outsider = replace(outsider, signature=signature)
        assert not registry.verify_qc_votes([outsider], quorum=1)

    def test_duplicate_voters_count_once(self):
        registry = KeyRegistry(4)
        vote = _signed_vote(registry, 0)
        assert not registry.verify_qc_votes([vote, vote, vote], quorum=2)
        assert registry.verify_qc_votes([vote, vote], quorum=1)

    def test_sub_quorum_rejected(self):
        registry = KeyRegistry(4)
        votes = [_signed_vote(registry, voter) for voter in range(2)]
        assert not registry.verify_qc_votes(votes, quorum=3)

    def test_memoize_off_matches_memoized_verdicts(self, monkeypatch):
        registry = KeyRegistry(4)
        votes = [_signed_vote(registry, voter) for voter in range(3)]
        forged = [
            replace(
                votes[0], signature=Signature(signer=0, value=b"\x11" * 32)
            )
        ] + votes[1:]
        memoized = (
            registry.verify_qc_votes(votes, quorum=3),
            registry.verify_qc_votes(forged, quorum=3),
        )
        monkeypatch.setattr(KeyRegistry, "memoize", False)
        cold = KeyRegistry(4)
        assert (
            cold.verify_qc_votes(votes, quorum=3),
            cold.verify_qc_votes(forged, quorum=3),
        ) == memoized
        assert cold._verify_memo == {}

    def test_shares_memo_entries_with_verify(self):
        registry = KeyRegistry(4)
        vote = _signed_vote(registry, 1)
        assert registry.verify_qc_votes([vote], quorum=1)
        entries = len(registry._verify_memo)
        # The scalar path reuses the fused path's memo entry.
        assert registry.verify(vote.signing_payload(), vote.signature)
        assert len(registry._verify_memo) == entries

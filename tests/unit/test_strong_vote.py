"""Markers and generalized intervals from the voting history (§3.2, §3.4)."""

from repro.core.intervals import IntervalSet
from repro.core.strong_vote import VotingHistory


class TestMarkerComputation:
    def test_fork_free_marker_is_zero(self, builder):
        history = VotingHistory(builder.store, mode="round")
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        for block in blocks:
            assert history.marker_for(block) == 0
            history.record_vote(block)

    def test_marker_after_switching_fork(self, builder):
        base = builder.block(builder.genesis, 1)
        builder.certify(base)
        fork_a = builder.block(base, 2)
        fork_b = builder.block(base, 3)
        history = VotingHistory(builder.store, mode="round")
        history.record_vote(base)
        history.record_vote(fork_a)
        # Voting for the conflicting fork must carry marker = 2.
        assert history.marker_for(fork_b) == 2

    def test_marker_is_max_over_forks(self, builder):
        base = builder.block(builder.genesis, 1)
        fork_a = builder.block(base, 2)
        fork_a2 = builder.block(fork_a, 3)
        fork_b = builder.block(base, 4)
        fork_c = builder.block(base, 5)
        history = VotingHistory(builder.store, mode="round")
        history.record_vote(fork_a)
        history.record_vote(fork_a2)
        history.record_vote(fork_b)
        # fork_c conflicts with both; highest conflicting round is 4.
        assert history.marker_for(fork_c) == max(3, 4)

    def test_marker_ignores_own_ancestors(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        tip = builder.block(blocks[-1], 4)
        history = VotingHistory(builder.store, mode="round")
        for block in blocks:
            history.record_vote(block)
        assert history.marker_for(tip) == 0

    def test_marker_matches_brute_force(self, builder):
        base = builder.block(builder.genesis, 1)
        fork_a = builder.block(base, 2)
        fork_b = builder.block(base, 3)
        fork_b2 = builder.block(fork_b, 4)
        candidate = builder.block(fork_a, 5)
        history = VotingHistory(builder.store, mode="round")
        for block in (base, fork_a, fork_b, fork_b2):
            history.record_vote(block)
        assert history.marker_for(candidate) == history.marker_brute_force(
            candidate
        )

    def test_height_mode_uses_heights(self, builder):
        base = builder.block(builder.genesis, 1)       # height 1
        fork_a = builder.block(base, 2)                # height 2
        fork_a2 = builder.block(fork_a, 3)             # height 3
        fork_b = builder.block(base, 9)                # height 2
        history = VotingHistory(builder.store, mode="height")
        history.record_vote(fork_a)
        history.record_vote(fork_a2)
        # Highest conflicting *height* is 3 even though rounds reach 3 only.
        assert history.marker_for(fork_b) == 3

    def test_tips_absorb_extended_votes(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        history = VotingHistory(builder.store, mode="round")
        for block in blocks:
            history.record_vote(block)
        assert history.voted_tips() == (blocks[-1].id(),)

    def test_tips_keep_one_per_fork(self, builder):
        base = builder.block(builder.genesis, 1)
        fork_a = builder.block(base, 2)
        fork_b = builder.block(base, 3)
        history = VotingHistory(builder.store, mode="round")
        history.record_vote(base)
        history.record_vote(fork_a)
        history.record_vote(fork_b)
        assert set(history.voted_tips()) == {fork_a.id(), fork_b.id()}

    def test_highest_voted_round_tracked(self, builder):
        blocks = builder.chain(builder.genesis, [1, 5])
        history = VotingHistory(builder.store, mode="round")
        for block in blocks:
            history.record_vote(block)
        assert history.highest_voted_round == 5


class TestIntervalComputation:
    def test_fork_free_interval_is_full_range(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        history = VotingHistory(builder.store, mode="round")
        for block in blocks[:-1]:
            history.record_vote(block)
        intervals = history.intervals_for(blocks[-1])
        assert intervals == IntervalSet.single(1, 3)

    def test_fork_carves_exclusion_interval(self, builder):
        base = builder.block(builder.genesis, 1)
        fork_a = builder.block(base, 2)
        fork_a2 = builder.block(fork_a, 3)
        main = builder.block(base, 4)
        history = VotingHistory(builder.store, mode="round")
        history.record_vote(base)
        history.record_vote(fork_a)
        history.record_vote(fork_a2)
        # D_F = [base.round + 1, 3] = [2, 3]; I = [1, 4] \ [2, 3].
        intervals = history.intervals_for(main)
        assert intervals == IntervalSet.from_pairs([(1, 1), (4, 4)])

    def test_interval_never_excludes_voted_round(self, builder):
        base = builder.block(builder.genesis, 1)
        fork_a = builder.block(base, 2)
        main = builder.block(base, 3)
        history = VotingHistory(builder.store, mode="round")
        history.record_vote(fork_a)
        intervals = history.intervals_for(main)
        assert main.round in intervals

    def test_window_limits_interval(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3, 4, 5, 6, 7, 8])
        history = VotingHistory(builder.store, mode="round")
        for block in blocks[:-1]:
            history.record_vote(block)
        intervals = history.intervals_for(blocks[-1], window=3)
        assert intervals == IntervalSet.single(5, 8)

    def test_interval_matches_brute_force(self, builder):
        base = builder.block(builder.genesis, 1)
        fork_a = builder.block(base, 2)
        fork_b = builder.block(base, 3)
        fork_b2 = builder.block(fork_b, 5)
        main = builder.block(fork_a, 6)
        history = VotingHistory(builder.store, mode="round")
        for block in (base, fork_a, fork_b, fork_b2):
            history.record_vote(block)
        assert history.intervals_for(main) == history.intervals_brute_force(
            main
        )

    def test_marker_is_special_case_of_intervals(self, builder):
        # The paper: one marker corresponds to I = [marker + 1, r].
        base = builder.block(builder.genesis, 1)
        fork_a = builder.block(base, 2)
        main = builder.block(base, 3)
        history = VotingHistory(builder.store, mode="round")
        history.record_vote(base)
        history.record_vote(fork_a)
        marker = history.marker_for(main)
        intervals = history.intervals_for(main)
        marker_equivalent = IntervalSet.single(marker + 1, main.round)
        assert marker_equivalent.issubset(intervals)

"""Network layer: delays, jitter, GST, partitions, bandwidth, stats."""

from repro.net.network import Network, NetworkConfig, wire_size_bytes
from repro.net.simulator import Simulator
from repro.net.topology import UniformTopology
from repro.types.block import make_genesis
from repro.types.messages import ProposalMsg, QCMsg, TimeoutMsg, VoteMsg
from repro.types.transaction import Payload, TxBatch
from repro.types.vote import Vote


class Recorder:
    """Captures deliveries with timestamps."""

    def __init__(self, simulator):
        self.simulator = simulator
        self.received = []

    def deliver(self, src, message):
        self.received.append((self.simulator.now, src, message))


def make_network(n=3, delay=0.01, **config_kwargs):
    simulator = Simulator()
    network = Network(
        simulator, UniformTopology(n, delay=delay), NetworkConfig(**config_kwargs)
    )
    recorders = []
    for replica_id in range(n):
        recorder = Recorder(simulator)
        network.register(replica_id, recorder)
        recorders.append(recorder)
    return simulator, network, recorders


class TestDelivery:
    def test_send_arrives_after_delay(self):
        simulator, network, recorders = make_network()
        network.send(0, 1, "hello")
        simulator.run_until(1.0)
        assert recorders[1].received == [(0.01, 0, "hello")]

    def test_self_send_is_instant(self):
        simulator, network, recorders = make_network()
        network.send(0, 0, "self")
        simulator.run_until(1.0)
        assert recorders[0].received[0][0] == 0.0

    def test_multicast_excludes_self_by_default(self):
        simulator, network, recorders = make_network()
        network.multicast(0, "m")
        simulator.run_until(1.0)
        assert recorders[0].received == []
        assert len(recorders[1].received) == 1
        assert len(recorders[2].received) == 1

    def test_multicast_include_self(self):
        simulator, network, recorders = make_network()
        network.multicast(0, "m", include_self=True)
        simulator.run_until(1.0)
        assert len(recorders[0].received) == 1

    def test_unregistered_destination_dropped(self):
        simulator, network, _ = make_network()
        network.unregister(2)
        network.send(0, 2, "gone")
        simulator.run_until(1.0)
        assert network.dropped_to_unregistered == 1

    def test_jitter_within_bound(self):
        simulator, network, recorders = make_network(jitter=0.005, seed=7)
        for _ in range(20):
            network.send(0, 1, "x")
        simulator.run_until(1.0)
        times = [t for t, _, _ in recorders[1].received]
        assert all(0.01 <= t <= 0.015 + 1e-9 for t in times)
        assert len(set(times)) > 1  # jitter actually varies

    def test_deterministic_for_fixed_seed(self):
        def run():
            simulator, network, recorders = make_network(jitter=0.005, seed=3)
            for _ in range(5):
                network.send(0, 1, "x")
            simulator.run_until(1.0)
            return [t for t, _, _ in recorders[1].received]

        assert run() == run()


class TestGST:
    def test_pre_gst_messages_delayed(self):
        simulator, network, recorders = make_network(
            gst=1.0, pre_gst_delay=0.5
        )
        network.send(0, 1, "early")
        simulator.run_until(2.0)
        arrival = recorders[1].received[0][0]
        assert arrival >= 1.0

    def test_post_gst_messages_normal(self):
        simulator, network, recorders = make_network(gst=1.0, pre_gst_delay=0.5)
        simulator.schedule_at(1.5, network.send, 0, 1, "late")
        simulator.run_until(3.0)
        arrival = recorders[1].received[0][0]
        assert abs(arrival - 1.51) < 1e-9


class TestPartitions:
    def test_cross_partition_held_until_heal(self):
        simulator, network, recorders = make_network()
        network.add_partition([(0,), (1, 2)], start=0.0, end=1.0)
        network.send(0, 1, "blocked")
        simulator.run_until(2.0)
        arrival = recorders[1].received[0][0]
        assert arrival >= 1.0

    def test_same_side_unaffected(self):
        simulator, network, recorders = make_network()
        network.add_partition([(0,), (1, 2)], start=0.0, end=1.0)
        network.send(1, 2, "ok")
        simulator.run_until(2.0)
        assert recorders[2].received[0][0] == 0.01

    def test_partition_window_only(self):
        simulator, network, recorders = make_network()
        network.add_partition([(0,), (1, 2)], start=0.5, end=1.0)
        network.send(0, 1, "before-window")
        simulator.run_until(2.0)
        assert recorders[1].received[0][0] == 0.01


class TestBandwidth:
    def test_uplink_serialization_staggers_multicast(self):
        simulator, network, recorders = make_network(
            bandwidth_bytes_per_sec=1000.0
        )
        genesis, genesis_qc = make_genesis()
        from repro.types.block import Block

        block = Block(
            parent_id=genesis.id(),
            qc=genesis_qc,
            round=1,
            height=1,
            proposer=0,
            payload=Payload(batch=TxBatch(count=1, size_bytes=1000)),
        )
        proposal = ProposalMsg(sender=0, round=1, block=block)
        network.multicast(0, proposal)
        simulator.run_until(100.0)
        t1 = recorders[1].received[0][0]
        t2 = recorders[2].received[0][0]
        # Each copy serializes ~3 s (3064 bytes at 1 KB/s): arrivals differ.
        assert abs(t1 - t2) > 1.0

    def test_no_bandwidth_means_synchronized_arrivals(self):
        simulator, network, recorders = make_network()
        network.multicast(0, "m")
        simulator.run_until(1.0)
        assert recorders[1].received[0][0] == recorders[2].received[0][0]


class TestProcessingDelay:
    def test_processing_delay_applied(self):
        simulator, network, recorders = make_network(processing_delay=0.003)
        network.send(0, 1, "x")
        simulator.run_until(1.0)
        assert abs(recorders[1].received[0][0] - 0.013) < 1e-9


class TestWireSizes:
    def test_proposal_size_scales_with_payload(self):
        genesis, genesis_qc = make_genesis()
        from repro.types.block import Block

        small = Block(
            parent_id=genesis.id(), qc=genesis_qc, round=1, height=1,
            proposer=0, payload=Payload(batch=TxBatch(count=1, size_bytes=10)),
        )
        big = Block(
            parent_id=genesis.id(), qc=genesis_qc, round=1, height=1,
            proposer=0,
            payload=Payload(batch=TxBatch(count=1000, size_bytes=450_000)),
        )
        assert wire_size_bytes(
            ProposalMsg(sender=0, round=1, block=big)
        ) > wire_size_bytes(ProposalMsg(sender=0, round=1, block=small))

    def test_vote_smaller_than_proposal(self):
        genesis, genesis_qc = make_genesis()
        from repro.types.block import Block

        block = Block(
            parent_id=genesis.id(), qc=genesis_qc, round=1, height=1,
            proposer=0, payload=Payload(batch=TxBatch(count=1, size_bytes=10)),
        )
        vote = Vote(block_id=block.id(), block_round=1, height=1, voter=0)
        assert wire_size_bytes(VoteMsg(sender=0, vote=vote)) < wire_size_bytes(
            ProposalMsg(sender=0, round=1, block=block)
        )

    def test_qc_msg_size_scales_with_vote_count(self):
        # A QCMsg carries its certificate's votes on the wire, so its
        # size grows with the quorum — and always exceeds one vote.
        genesis, genesis_qc = make_genesis()
        from dataclasses import replace

        from repro.types.quorum_cert import QuorumCertificate

        votes = tuple(
            Vote(block_id=genesis.id(), block_round=1, height=1, voter=voter)
            for voter in range(5)
        )
        small_qc = QuorumCertificate(
            block_id=genesis.id(), round=1, height=1, votes=votes[:3]
        )
        big_qc = replace(small_qc, votes=votes)
        small = wire_size_bytes(QCMsg(sender=0, qc=small_qc))
        big = wire_size_bytes(QCMsg(sender=0, qc=big_qc))
        assert small < big
        assert small > wire_size_bytes(VoteMsg(sender=0, vote=votes[0]))

    def test_stats_track_types(self):
        simulator, network, _ = make_network()
        genesis, genesis_qc = make_genesis()
        qc = genesis_qc
        network.send(0, 1, TimeoutMsg(sender=0, round=1, qc_high=qc))
        network.send(0, 1, TimeoutMsg(sender=0, round=2, qc_high=qc))
        simulator.run_until(1.0)
        stats = network.stats()
        assert stats["sent"] == 2
        assert stats["by_type"]["TimeoutMsg"] == 2
        network.reset_counters()
        assert network.stats()["sent"] == 0
        del genesis


class TestPartitionPruning:
    def test_healed_partitions_are_pruned(self):
        simulator, network, recorders = make_network()
        network.add_partition([(0,), (1, 2)], start=0.0, end=1.0)
        network.add_partition([(0, 1), (2,)], start=0.5, end=2.0)
        assert len(network._partitions) == 2
        simulator.run_until(1.2)
        network.send(0, 1, "after-first-heal")  # triggers the prune
        assert len(network._partitions) == 1
        assert network._partitions[0].end == 2.0
        simulator.run_until(2.5)
        network.send(0, 2, "after-all-heals")
        assert network._partitions == []
        assert network._partitions_min_end == float("inf")

    def test_pruning_preserves_delivery_times(self):
        def run(extra_dead_partitions):
            simulator, network, recorders = make_network(jitter=0.003, seed=9)
            # Early partitions that heal before the traffic we time.
            for index in range(extra_dead_partitions):
                network.add_partition(
                    [(0,), (1, 2)], start=0.0, end=0.1 + index * 0.01
                )
            network.add_partition([(0,), (1, 2)], start=1.0, end=2.0)
            simulator.schedule_at(0.5, network.send, 0, 1, "mid")
            simulator.schedule_at(1.5, network.send, 0, 1, "held")
            simulator.schedule_at(2.5, network.send, 0, 1, "late")
            simulator.run_until(5.0)
            return [stamp for stamp, _, _ in recorders[1].received]

        assert run(0) == run(8)

    def test_active_partition_still_separates_after_prune(self):
        simulator, network, recorders = make_network()
        network.add_partition([(0,), (1, 2)], start=0.0, end=0.5)
        network.add_partition([(0,), (1, 2)], start=1.0, end=3.0)
        simulator.run_until(0.7)
        network.send(0, 1, "between-windows")  # prunes the healed window
        simulator.schedule_at(1.2, network.send, 0, 1, "held")
        simulator.run_until(5.0)
        stamps = [stamp for stamp, _, _ in recorders[1].received]
        assert abs(stamps[0] - 0.71) < 1e-9
        assert stamps[1] >= 3.0


class TestWireSizeDispatch:
    def test_unknown_types_get_header_size_and_are_memoized(self):
        from repro.net.network import _HEADER_SIZE, _WIRE_SIZERS

        class Oddball:
            pass

        assert wire_size_bytes(Oddball()) == _HEADER_SIZE
        assert Oddball in _WIRE_SIZERS

    def test_message_subclasses_resolve_like_isinstance(self):
        from dataclasses import dataclass

        from repro.net.network import _TIMEOUT_SIZE
        from repro.types.quorum_cert import QuorumCertificate

        @dataclass(frozen=True)
        class FancyTimeout(TimeoutMsg):
            pass

        genesis, genesis_qc = make_genesis()
        del genesis
        message = FancyTimeout(sender=0, round=1, qc_high=genesis_qc)
        assert wire_size_bytes(message) == _TIMEOUT_SIZE
        assert isinstance(genesis_qc, QuorumCertificate)

    def test_counter_stats_by_type(self):
        simulator, network, recorders = make_network()
        del simulator, recorders
        network.send(0, 1, "a")
        network.send(0, 2, "b")
        stats = network.stats()
        assert stats["by_type"] == {"str": 2}
        network.reset_counters()
        assert network.stats()["by_type"] == {}


class TestAtLeastOnceDelivery:
    def test_duplicate_rate_one_delivers_every_unicast_twice(self):
        simulator, network, recorders = make_network(duplicate_rate=1.0)
        for _ in range(5):
            network.send(0, 1, "m")
        simulator.run_until(1.0)
        assert len(recorders[1].received) == 10
        assert network.messages_duplicated == 5
        assert network.stats()["duplicated"] == 5
        # The original copy still counts once in sent.
        assert network.stats()["sent"] == 5

    def test_reorder_window_can_swap_consecutive_sends(self):
        simulator, network, recorders = make_network(
            delay=0.001, reorder_window=0.1
        )
        for index in range(40):
            network.send(0, 1, index)
        simulator.run_until(1.0)
        order = [message for _, _, message in recorders[1].received]
        assert sorted(order) == list(range(40))  # reliable: nothing lost
        assert order != list(range(40))  # ...but not in send order

    def test_reorder_delay_bounded_by_window(self):
        simulator, network, recorders = make_network(
            delay=0.01, reorder_window=0.05
        )
        for _ in range(30):
            network.send(0, 1, "m")
        simulator.run_until(1.0)
        for arrival, _, _ in recorders[1].received:
            assert 0.01 <= arrival < 0.01 + 0.05

    def test_default_off_keeps_schedule_and_stats_shape(self):
        # Turning the knobs off must leave the delivery schedule and
        # the stats schema exactly as before the faults existed.
        simulator, network, recorders = make_network(jitter=0.002)
        for index in range(10):
            network.send(0, 1, index)
        simulator.run_until(1.0)
        baseline = [(time, message) for time, _, message in recorders[1].received]
        assert "duplicated" not in network.stats()

        simulator2, network2, recorders2 = make_network(
            jitter=0.002, duplicate_rate=0.0, reorder_window=0.0
        )
        for index in range(10):
            network2.send(0, 1, index)
        simulator2.run_until(1.0)
        replay = [(time, message) for time, _, message in recorders2[1].received]
        assert replay == baseline

    def test_delivery_faults_draw_from_their_own_stream(self):
        # Same seed, faults on: the *base* arrival pattern (jitter
        # stream) is untouched; only extra delay/duplicates appear.
        simulator, network, recorders = make_network(jitter=0.002)
        network.send(0, 1, "m")
        simulator.run_until(1.0)
        base_arrival = recorders[1].received[0][0]

        simulator2, network2, recorders2 = make_network(
            jitter=0.002, reorder_window=0.05
        )
        network2.send(0, 1, "m")
        simulator2.run_until(1.0)
        faulted_arrival = recorders2[1].received[0][0]
        assert base_arrival <= faulted_arrival < base_arrival + 0.05

    def test_duplicates_are_deterministic_across_replays(self):
        def run():
            simulator, network, recorders = make_network(
                duplicate_rate=0.4, reorder_window=0.03, seed=7
            )
            for index in range(25):
                network.send(0, 1, index)
            simulator.run_until(1.0)
            return [
                (round(time, 9), message)
                for time, _, message in recorders[1].received
            ]

        assert run() == run()

"""Adversary behaviour factories: each deviates exactly as declared."""

from repro.adversary import (
    make_equivocating_leader,
    make_lazy_voter,
    make_silent,
    make_withholding_leader,
)
from repro.protocols.diembft import DiemBFTReplica
from repro.protocols.sft_diembft import SFTDiemBFTReplica
from repro.runtime.config import build_cluster
from tests.conftest import small_experiment


def run_with_override(replica_id, replica_class, duration=6.0, **overrides):
    cluster = build_cluster(small_experiment(duration=duration, **overrides))
    cluster.build(replica_overrides={replica_id: replica_class})
    cluster.run()
    return cluster


class TestSilent:
    def test_silent_replica_never_votes(self):
        cluster = run_with_override(6, make_silent(SFTDiemBFTReplica))
        assert cluster.replicas[6].votes_sent == 0

    def test_silent_replica_still_proposes(self):
        # Silence attacks strong-commit liveness, not leadership.
        cluster = run_with_override(6, make_silent(SFTDiemBFTReplica))
        assert cluster.replicas[6].blocks_proposed > 0

    def test_factory_names_are_descriptive(self):
        assert "Silent" in make_silent(SFTDiemBFTReplica).__name__

    def test_works_on_plain_diembft_too(self):
        cluster = run_with_override(6, make_silent(DiemBFTReplica),
                                    protocol="diembft")
        assert cluster.replicas[6].votes_sent == 0
        assert len(cluster.replicas[0].commit_tracker.commit_order) > 20


class TestEquivocatingLeader:
    def test_conflicting_blocks_across_halves(self):
        cluster = run_with_override(
            2, make_equivocating_leader(SFTDiemBFTReplica)
        )
        # Each network half received a different variant, so for the
        # Byzantine leader's rounds the halves hold different blocks.
        low_half = cluster.replicas[0].store   # ids < n/2 get variant 0
        high_half = cluster.replicas[6].store  # ids >= n/2 get variant 1
        n = cluster.config.n
        diverged = []
        for round_number in range(1, cluster.replicas[0].current_round):
            if round_number % n != 2:
                continue
            low_blocks = set(low_half.blocks_at_round(round_number))
            high_blocks = set(high_half.blocks_at_round(round_number))
            if low_blocks and high_blocks and low_blocks != high_blocks:
                diverged.append(round_number)
        assert diverged

    def test_half_network_split_delivery(self):
        cluster = run_with_override(
            2, make_equivocating_leader(SFTDiemBFTReplica)
        )
        # Replicas in different halves voted for different variants at
        # some equivocated round: r_vote advanced everywhere regardless.
        for replica in cluster.replicas:
            assert replica.r_vote > 0


class TestWithholdingLeader:
    def test_unreached_replicas_time_out(self):
        cluster = run_with_override(
            4, make_withholding_leader(SFTDiemBFTReplica, reach=0.3)
        )
        timeouts = sum(
            replica.timeouts_sent
            for index, replica in enumerate(cluster.replicas)
            if index != 4
        )
        assert timeouts > 0

    def test_full_reach_behaves_honestly(self):
        cluster = run_with_override(
            4, make_withholding_leader(SFTDiemBFTReplica, reach=1.0),
            duration=4.0,
        )
        honest = [r for i, r in enumerate(cluster.replicas) if i != 4]
        assert all(replica.timeouts_sent == 0 for replica in honest)


class TestLazyVoter:
    def test_votes_delayed_not_dropped(self):
        cluster = run_with_override(
            6, make_lazy_voter(SFTDiemBFTReplica, delay=0.2), duration=6.0
        )
        lazy = cluster.replicas[6]
        assert lazy.votes_sent > 0
        # Its votes arrive too late for QCs: never among the endorsers
        # of fresh blocks at other replicas.
        observer = cluster.replicas[0]
        recent = observer.commit_tracker.commit_order[-5:]
        for event in recent:
            qc = observer.store.qc_for(event.block_id)
            if qc is not None and qc.votes:
                assert 6 not in qc.voters()

    def test_zero_delay_equals_honest(self):
        lazy_cluster = run_with_override(
            6, make_lazy_voter(SFTDiemBFTReplica, delay=0.0), duration=4.0
        )
        honest_cluster = build_cluster(small_experiment(duration=4.0)).run()
        lazy_commits = [
            event.block_id
            for event in lazy_cluster.replicas[0].commit_tracker.commit_order
        ]
        honest_commits = [
            event.block_id
            for event in honest_cluster.replicas[0].commit_tracker.commit_order
        ]
        # Same block contents; timing may differ by timer scheduling.
        shared = min(len(lazy_commits), len(honest_commits))
        assert lazy_commits[:shared] == honest_commits[:shared]

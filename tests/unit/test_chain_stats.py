"""Chain statistics collection."""

from repro.analysis.chain_stats import collect_chain_stats
from repro.runtime.config import build_cluster
from tests.conftest import small_experiment


class TestChainStats:
    def test_clean_run_statistics(self):
        cluster = build_cluster(small_experiment(duration=6.0)).run()
        stats = collect_chain_stats(cluster.replicas[0])
        assert stats.blocks_committed > 30
        assert stats.blocks_total >= stats.blocks_committed
        assert stats.skipped_rounds == 0
        assert stats.fork_blocks == 0  # fresh tip blocks are not forks
        assert stats.round_utilization() > 0.9
        assert 0.0 <= stats.qc_diversity <= 1.0
        # Quorum is 5 of 7 and extra votes are not folded in.
        assert 5.0 <= stats.mean_qc_size <= 7.0

    def test_crash_run_has_skipped_rounds(self):
        cluster = build_cluster(
            small_experiment(duration=10.0, crash_schedule=((3, 0.0),))
        ).run()
        stats = collect_chain_stats(cluster.replicas[0])
        assert stats.skipped_rounds > 0
        assert stats.round_utilization() < 1.0

    def test_diversity_increases_with_jitter(self):
        still = build_cluster(small_experiment(duration=6.0, jitter=0.0)).run()
        jittery = build_cluster(
            small_experiment(duration=6.0, jitter=0.004)
        ).run()
        stats_still = collect_chain_stats(still.replicas[0])
        stats_jittery = collect_chain_stats(jittery.replicas[0])
        assert stats_jittery.qc_diversity >= stats_still.qc_diversity

    def test_fork_depth_zero_without_equivocation(self):
        cluster = build_cluster(small_experiment(duration=6.0)).run()
        stats = collect_chain_stats(cluster.replicas[0])
        assert stats.max_fork_depth == 0

    def test_forks_detected_under_equivocation(self):
        from repro.adversary import make_equivocating_leader
        from repro.protocols.sft_diembft import SFTDiemBFTReplica

        cluster = build_cluster(small_experiment(duration=8.0))
        cluster.build(
            replica_overrides={2: make_equivocating_leader(SFTDiemBFTReplica)}
        )
        cluster.run()
        stats = collect_chain_stats(cluster.replicas[0])
        assert stats.fork_blocks > 0
        assert stats.max_fork_depth >= 1

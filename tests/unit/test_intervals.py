"""IntervalSet algebra (Section 3.4 substrate)."""

import pytest

from repro.core.intervals import IntervalSet


class TestConstruction:
    def test_empty(self):
        assert IntervalSet.empty().is_empty()
        assert not IntervalSet.empty()
        assert len(IntervalSet.empty()) == 0

    def test_single(self):
        interval = IntervalSet.single(2, 5)
        assert interval.pairs() == ((2, 5),)
        assert interval.count() == 4

    def test_inverted_interval_is_empty(self):
        assert IntervalSet.single(5, 2).is_empty()

    def test_point(self):
        assert IntervalSet.point(7).pairs() == ((7, 7),)

    def test_overlapping_intervals_merge(self):
        merged = IntervalSet.from_pairs([(1, 5), (3, 8)])
        assert merged.pairs() == ((1, 8),)

    def test_adjacent_intervals_merge(self):
        merged = IntervalSet.from_pairs([(1, 3), (4, 6)])
        assert merged.pairs() == ((1, 6),)

    def test_disjoint_intervals_kept_sorted(self):
        intervals = IntervalSet.from_pairs([(10, 12), (1, 3)])
        assert intervals.pairs() == ((1, 3), (10, 12))

    def test_normalization_is_canonical(self):
        a = IntervalSet.from_pairs([(1, 2), (3, 4)])
        b = IntervalSet.from_pairs([(1, 4)])
        assert a == b
        assert hash(a) == hash(b)


class TestMembership:
    def test_contains(self):
        intervals = IntervalSet.from_pairs([(1, 3), (7, 9)])
        assert 1 in intervals
        assert 3 in intervals
        assert 8 in intervals
        assert 4 not in intervals
        assert 0 not in intervals
        assert 10 not in intervals

    def test_min_max(self):
        intervals = IntervalSet.from_pairs([(5, 6), (1, 2)])
        assert intervals.min() == 1
        assert intervals.max() == 6

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalSet.empty().min()
        with pytest.raises(ValueError):
            IntervalSet.empty().max()

    def test_iter_values(self):
        intervals = IntervalSet.from_pairs([(1, 2), (5, 5)])
        assert list(intervals.iter_values()) == [1, 2, 5]


class TestAlgebra:
    def test_union(self):
        a = IntervalSet.single(1, 3)
        b = IntervalSet.single(5, 7)
        assert a.union(b).pairs() == ((1, 3), (5, 7))

    def test_union_merges_overlap(self):
        a = IntervalSet.single(1, 5)
        b = IntervalSet.single(4, 9)
        assert a.union(b).pairs() == ((1, 9),)

    def test_intersection(self):
        a = IntervalSet.from_pairs([(1, 5), (8, 12)])
        b = IntervalSet.from_pairs([(4, 9)])
        assert a.intersection(b).pairs() == ((4, 5), (8, 9))

    def test_intersection_empty(self):
        a = IntervalSet.single(1, 2)
        b = IntervalSet.single(5, 6)
        assert a.intersection(b).is_empty()

    def test_subtract_middle_splits(self):
        base = IntervalSet.single(1, 10)
        removed = base.subtract(IntervalSet.single(4, 6))
        assert removed.pairs() == ((1, 3), (7, 10))

    def test_subtract_edges(self):
        base = IntervalSet.single(1, 10)
        assert base.subtract(IntervalSet.single(1, 3)).pairs() == ((4, 10),)
        assert base.subtract(IntervalSet.single(8, 10)).pairs() == ((1, 7),)

    def test_subtract_everything(self):
        base = IntervalSet.single(3, 5)
        assert base.subtract(IntervalSet.single(1, 9)).is_empty()

    def test_subtract_multiple_holes(self):
        base = IntervalSet.single(1, 20)
        holes = IntervalSet.from_pairs([(3, 4), (8, 8), (15, 18)])
        result = base.subtract(holes)
        assert result.pairs() == ((1, 2), (5, 7), (9, 14), (19, 20))

    def test_issubset(self):
        small = IntervalSet.from_pairs([(2, 3), (7, 7)])
        big = IntervalSet.single(1, 10)
        assert small.issubset(big)
        assert not big.issubset(small)
        assert IntervalSet.empty().issubset(small)

    def test_overlaps(self):
        a = IntervalSet.single(1, 5)
        assert a.overlaps(IntervalSet.single(5, 9))
        assert not a.overlaps(IntervalSet.single(6, 9))

    def test_clamp(self):
        intervals = IntervalSet.from_pairs([(1, 5), (8, 12)])
        assert intervals.clamp(3, 9).pairs() == ((3, 5), (8, 9))

    def test_paper_interval_computation_shape(self):
        # I = [1, r] \ D_F with D_F = [r_l + 1, r_h] (Section 3.4).
        r = 10
        base = IntervalSet.single(1, r)
        d_fork = IntervalSet.single(4, 7)  # r_l = 3, r_h = 7
        endorsed = base.subtract(d_fork)
        assert endorsed.pairs() == ((1, 3), (8, 10))
        assert r in endorsed  # the voted round itself is always endorsed

"""Fuzz generator and shrinker units (no simulations)."""

import pytest

from repro.experiments.spec import ScenarioSpec, spec_from_mapping, spec_to_mapping
from repro.fuzz import (
    DEFAULT_PROFILE,
    SMOKE_PROFILE,
    generate_spec,
    parse_seed_range,
    shrink_spec,
)


class TestGenerator:
    def test_same_seed_same_spec(self):
        for seed in range(20):
            assert generate_spec(seed, DEFAULT_PROFILE) == generate_spec(
                seed, DEFAULT_PROFILE
            )

    def test_different_seeds_differ(self):
        specs = {repr(generate_spec(seed, DEFAULT_PROFILE)) for seed in range(20)}
        assert len(specs) > 15  # near-certain uniqueness

    def test_profiles_are_independent_dimensions(self):
        assert generate_spec(3, DEFAULT_PROFILE) != generate_spec(3, SMOKE_PROFILE)

    def test_specs_are_valid_and_within_profile_bounds(self):
        for seed in range(40):
            spec = generate_spec(seed, SMOKE_PROFILE)
            if spec.script:
                assert spec.script == "appendix_c"
                assert spec.resolved_f() >= 2
                continue
            assert spec.n in SMOKE_PROFILE.n_choices
            assert spec.protocol in SMOKE_PROFILE.protocols
            assert spec.duration <= SMOKE_PROFILE.max_duration
            assert spec.faults.total() <= spec.n
            # The checkpoint axis may add at most one snapshot-lag
            # window (explicit groups isolating the last replica) on
            # top of the profile's sampled split partitions.
            lag_windows = [
                window for window in spec.partitions if window.groups
            ]
            assert len(lag_windows) <= (1 if spec.checkpoint_interval else 0)
            assert (
                len(spec.partitions) - len(lag_windows)
                <= SMOKE_PROFILE.max_partitions
            )
            assert spec.seeds == (seed,)

    def test_schedule_space_is_exercised(self):
        specs = [generate_spec(seed, DEFAULT_PROFILE) for seed in range(120)]
        assert any(spec.script for spec in specs)
        assert any(spec.naive_accounting for spec in specs)
        assert any(spec.partitions for spec in specs)
        assert any(spec.gst > 0 for spec in specs)
        assert any(spec.faults.crash for spec in specs)
        assert any(spec.faults.marker_lie for spec in specs)
        assert any(
            spec.faults.byzantine_total() == spec.resolved_f() + 1
            for spec in specs
            if not spec.script
        ), "the t = f + 1 regime (Definition 1's boundary) must be sampled"

    def test_generated_specs_round_trip_through_json(self):
        for seed in range(25):
            spec = generate_spec(seed, DEFAULT_PROFILE)
            mapping = spec_to_mapping(spec)
            assert spec_from_mapping(mapping) == spec


class TestSeedRange:
    def test_colon_range(self):
        assert parse_seed_range("0:4") == (0, 1, 2, 3)

    def test_single_seed(self):
        assert parse_seed_range("9") == (9,)

    def test_comma_list(self):
        assert parse_seed_range("1,5,9") == (1, 5, 9)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty seed range"):
            parse_seed_range("5:5")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_seed_range("a:b")


class TestShrinker:
    """Shrinking against synthetic predicates — no simulation runs."""

    def _bloated_spec(self):
        return spec_from_mapping(
            {
                "name": "bloated",
                "n": 13,
                "duration": 12.0,
                "gst": 1.0,
                "pre_gst_delay": 0.2,
                "jitter": 0.004,
                "faults": {"silent": 1, "crash": 2, "lazy": 1},
                "partitions": [
                    {"start": 1.0, "end": 3.0},
                    {"start": 5.0, "end": 6.0},
                ],
            }
        )

    def test_shrinks_to_the_triggering_fault(self):
        def fails(spec, seed=None):
            return spec.faults.silent >= 1

        result = shrink_spec(self._bloated_spec(), fails=fails)
        spec = result.spec
        assert result.shrunk
        assert spec.faults.silent == 1
        assert spec.faults.crash == 0
        assert spec.faults.lazy == 0
        assert spec.partitions == ()
        assert spec.gst == 0.0
        assert spec.jitter == 0.0
        assert spec.n == 4

    def test_shrink_keeps_schedule_pieces_the_failure_needs(self):
        def fails(spec, seed=None):
            return len(spec.partitions) >= 1 and spec.faults.crash >= 1

        result = shrink_spec(self._bloated_spec(), fails=fails)
        assert len(result.spec.partitions) == 1
        assert result.spec.faults.crash == 1
        assert result.spec.faults.silent == 0

    def test_non_failing_spec_rejected(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink_spec(self._bloated_spec(), fails=lambda spec, seed=None: False)

    def test_shrink_is_deterministic(self):
        def fails(spec, seed=None):
            return spec.faults.crash >= 1

        first = shrink_spec(self._bloated_spec(), fails=fails)
        second = shrink_spec(self._bloated_spec(), fails=fails)
        assert first.spec == second.spec
        assert first.attempts == second.attempts


class TestScenarioSpecFuzzFields:
    def test_naive_accounting_reaches_replica_config(self):
        spec = ScenarioSpec(name="x", n=4, naive_accounting=True)
        config = spec.to_experiment_config()
        assert config.naive_accounting is True
        assert config.replica_config(0).naive_endorsement is True

    def test_scripted_spec_does_not_build_clusters(self):
        spec = ScenarioSpec(name="x", script="appendix_c", n=7)
        with pytest.raises(ValueError, match="scripted"):
            spec.build()

    def test_unknown_script_rejected(self):
        with pytest.raises(ValueError, match="unknown script"):
            ScenarioSpec(name="x", script="appendix_z")

    def test_appendix_c_needs_f_at_least_two(self):
        with pytest.raises(ValueError, match="f >= 2"):
            ScenarioSpec(name="x", script="appendix_c", n=4)

"""Checkpoint subprotocol: digests, certificates, truncation, validation.

End-to-end snapshot joins (a partitioned replica installing a peer's
state image) live in ``tests/integration/test_checkpoint_join.py``;
here we pin the pieces: the state digest, certificate formation from
``CheckpointMsg`` flows, log truncation bookkeeping, and the
whole-response snapshot validation discipline.
"""

import pytest
from dataclasses import replace

from repro.crypto.hashing import hash_fields
from repro.runtime.config import ExperimentConfig, build_cluster
from repro.sync.checkpoint import _SnapshotFetch, state_digest
from repro.types.messages import (
    CheckpointMsg,
    SnapshotRequestMsg,
    SnapshotResponseMsg,
)


def checkpoint_cluster(**overrides):
    params = dict(
        protocol="sft-diembft",
        n=4,
        topology="uniform",
        uniform_delay=0.01,
        jitter=0.002,
        duration=6.0,
        round_timeout=0.5,
        seed=11,
        block_batch_count=2,
        block_batch_bytes=100,
        workload_rate=20.0,
        checkpoint_interval=4,
        verify_signatures=True,
    )
    params.update(overrides)
    cluster = build_cluster(ExperimentConfig(**params))
    cluster.run()
    return cluster


@pytest.fixture(scope="module")
def cluster():
    return checkpoint_cluster()


class TestStateDigest:
    def test_deterministic(self):
        block_id = hash_fields("b", 1)
        items = (("k1", "v1"), ("k2", "v2"))
        txids = (hash_fields("t", 1), hash_fields("t", 2))
        assert state_digest(8, block_id, items, txids) == state_digest(
            8, block_id, items, txids
        )

    def test_sensitive_to_every_field(self):
        block_id = hash_fields("b", 1)
        items = (("k1", "v1"),)
        txids = (hash_fields("t", 1),)
        base = state_digest(8, block_id, items, txids)
        assert state_digest(12, block_id, items, txids) != base
        assert state_digest(8, hash_fields("b", 2), items, txids) != base
        assert state_digest(8, block_id, (("k1", "v2"),), txids) != base
        assert state_digest(8, block_id, items, ()) != base


class TestKnobOff:
    def test_interval_zero_attaches_no_manager(self):
        cluster = checkpoint_cluster(
            checkpoint_interval=0, duration=1.0, workload_rate=0.0
        )
        for replica in cluster.replicas:
            assert replica.checkpoint is None


class TestCertificatesAndTruncation:
    def test_certificates_form_and_truncate(self, cluster):
        for replica in cluster.replicas:
            manager = replica.checkpoint
            assert manager.checkpoints_signed > 0
            assert manager.certificates_formed > 0
            assert manager.stable is not None
            assert manager.stable.height % manager.interval == 0
            assert len(manager.stable.signers) >= replica.config.quorum()
            assert manager.blocks_truncated > 0

    def test_store_rooted_at_stable_checkpoint(self, cluster):
        for replica in cluster.replicas:
            manager = replica.checkpoint
            root = replica.store.root_block()
            assert root.id() == manager.stable.block_id
            assert replica.store.truncated_height == root.height - 1

    def test_live_blocks_bounded_by_interval(self, cluster):
        # The memory bound the subprotocol exists for: live blocks stay
        # O(interval), far below the total commit count.
        for replica in cluster.replicas:
            commits = len(replica.commit_tracker.commit_order)
            assert commits > 10 * replica.checkpoint.interval
            assert len(replica.store) < 4 * replica.checkpoint.interval

    def test_quorum_digests_agree(self, cluster):
        stables = {
            replica.checkpoint.stable.height: replica.checkpoint.stable.digest
            for replica in cluster.replicas
        }
        # Same height ⇒ same certified digest on every replica.
        for replica in cluster.replicas:
            stable = replica.checkpoint.stable
            assert stables[stable.height] == stable.digest


class TestOnCheckpointFiltering:
    def _forged(self, cluster, signer_replica, **overrides):
        manager = cluster.replicas[0].checkpoint
        stable = manager.stable
        params = dict(
            sender=signer_replica.replica_id,
            height=stable.height + 100 * manager.interval,
            block_id=hash_fields("forged-block", 1),
            digest=hash_fields("forged-digest", 1),
        )
        params.update(overrides)
        message = CheckpointMsg(**params)
        signature = signer_replica.context.signing_key.sign(
            message.signing_payload()
        )
        return replace(message, signature=signature)

    def test_sender_mismatch_ignored(self, cluster):
        manager = cluster.replicas[0].checkpoint
        message = self._forged(cluster, cluster.replicas[1])
        before = dict(manager._pending)
        manager.on_checkpoint(2, message)  # src ≠ msg.sender
        assert manager._pending == before

    def test_non_interval_height_ignored(self, cluster):
        manager = cluster.replicas[0].checkpoint
        message = self._forged(
            cluster,
            cluster.replicas[1],
            height=manager.stable.height + manager.interval + 1,
        )
        before = dict(manager._pending)
        manager.on_checkpoint(1, message)
        assert manager._pending == before

    def test_unsigned_ignored(self, cluster):
        manager = cluster.replicas[0].checkpoint
        message = self._forged(cluster, cluster.replicas[1])
        message = replace(message, signature=None)
        before = dict(manager._pending)
        manager.on_checkpoint(1, message)
        assert manager._pending == before

    def test_wrong_key_signature_ignored(self, cluster):
        manager = cluster.replicas[0].checkpoint
        message = self._forged(cluster, cluster.replicas[1])
        # Re-signed by replica 2 but claiming to be from replica 1.
        forged_signature = cluster.replicas[2].context.signing_key.sign(
            message.signing_payload()
        )
        message = replace(message, signature=forged_signature)
        before = dict(manager._pending)
        manager.on_checkpoint(1, message)
        assert manager._pending == before

    def test_duplicate_signer_counted_once(self, cluster):
        manager = cluster.replicas[0].checkpoint
        message = self._forged(cluster, cluster.replicas[1])
        manager.on_checkpoint(1, message)
        manager.on_checkpoint(1, message)
        key = (message.height, message.block_id, message.digest)
        assert list(manager._pending[key]) == [1]
        del manager._pending[key]  # leave the shared fixture clean

    def test_stale_height_ignored(self, cluster):
        manager = cluster.replicas[0].checkpoint
        message = self._forged(
            cluster, cluster.replicas[1], height=manager.interval
        )
        before = dict(manager._pending)
        manager.on_checkpoint(1, message)
        assert manager._pending == before


class TestTruncationGating:
    """A stored checkpoint block alone must not trigger truncation.

    Commits trail the stored tip by the chaining depth, so 2f+1
    digests for height H can arrive while this replica has block H but
    has only committed through H-2; pruning then would drop
    uncommitted ancestors whose commit events never fire.
    """

    def test_no_truncation_before_commit_reaches_stable(
        self, cluster, monkeypatch
    ):
        replica = cluster.replicas[0]
        manager = replica.checkpoint
        monkeypatch.setattr(manager, "_stable_truncated", False)
        monkeypatch.setattr(
            manager, "_local_height", lambda: manager.stable.height - 1
        )
        blocks_before = len(replica.store)
        manager._try_truncate()
        assert manager._stable_truncated is False
        assert len(replica.store) == blocks_before

    def test_truncates_once_commit_catches_up(self, cluster, monkeypatch):
        replica = cluster.replicas[0]
        manager = replica.checkpoint
        monkeypatch.setattr(manager, "_stable_truncated", False)
        # The fixture replica's real committed height is at or past its
        # stable checkpoint, so the gate opens.
        manager._try_truncate()
        assert manager._stable_truncated is True


class TestPendingBound:
    """The digest pool is bounded against Byzantine far-future floods."""

    def _bogus(self, cluster, index, height):
        signer = cluster.replicas[1]
        message = CheckpointMsg(
            sender=signer.replica_id,
            height=height,
            block_id=hash_fields("bogus-block", index),
            digest=hash_fields("bogus-digest", index),
        )
        signature = signer.context.signing_key.sign(message.signing_payload())
        return replace(message, signature=signature)

    def test_flood_cannot_grow_pending_past_cap(self, cluster, monkeypatch):
        manager = cluster.replicas[0].checkpoint
        monkeypatch.setattr(manager, "_pending", dict(manager._pending))
        cap = manager._max_pending
        base = manager.stable.height
        for index in range(3 * cap):
            message = self._bogus(
                cluster, index, base + (index + 1) * manager.interval
            )
            manager.on_checkpoint(1, message)
            assert len(manager._pending) <= cap

    def test_flood_does_not_evict_near_quorum_key(self, cluster, monkeypatch):
        manager = cluster.replicas[0].checkpoint
        monkeypatch.setattr(manager, "_pending", {})
        honest_key = (
            manager.stable.height + manager.interval,
            hash_fields("honest-block", 1),
            hash_fields("honest-digest", 1),
        )
        manager._pending[honest_key] = {1: None, 2: None}
        base = manager.stable.height + 10 * manager.interval
        for index in range(3 * manager._max_pending):
            message = self._bogus(
                cluster, index, base + (index + 1) * manager.interval
            )
            manager.on_checkpoint(1, message)
        # Single-signer far-future flood keys are evicted first; the
        # key closest to a certificate survives.
        assert honest_key in manager._pending


class TestServeSnapshot:
    def test_missing_block_is_honest_miss(self, cluster, monkeypatch):
        # A responder with a stable cert but without the checkpoint
        # block must answer with a miss, not a full response the
        # requester would reject and count against an honest peer.
        server = cluster.replicas[1]
        manager = server.checkpoint
        monkeypatch.setattr(server.store, "maybe_get", lambda block_id: None)
        sent = []
        monkeypatch.setattr(
            server.context, "send", lambda dst, msg: sent.append(msg)
        )
        request = SnapshotRequestMsg(
            sender=0, min_height=manager.stable.height, nonce=3
        )
        signature = cluster.replicas[0].context.signing_key.sign(
            request.signing_payload()
        )
        served_before = manager.snapshots_served
        manager.serve_snapshot(0, replace(request, signature=signature))
        assert manager.snapshots_served == served_before
        assert len(sent) == 1
        response = sent[0]
        assert response.cert_signers == ()
        assert response.block is None


class TestSnapshotValidation:
    """Whole-response validation: reject before any mutation."""

    def _valid_response(self, cluster, server_id=1):
        server = cluster.replicas[server_id]
        manager = server.checkpoint
        stable = manager.stable
        snapshot = manager._snapshots[stable.height]
        response = SnapshotResponseMsg(
            sender=server_id,
            nonce=7,
            cert_height=stable.height,
            cert_block_id=stable.block_id,
            cert_digest=stable.digest,
            cert_signers=stable.signers,
            block=server.store.maybe_get(stable.block_id),
            state=snapshot.state,
            applied_txids=snapshot.applied_txids,
            applied_count=snapshot.applied_count,
            rejected_count=snapshot.rejected_count,
        )
        signature = server.context.signing_key.sign(response.signing_payload())
        return replace(response, signature=signature)

    def _joiner(self, cluster, monkeypatch):
        manager = cluster.replicas[0].checkpoint
        # Pretend replica 0 is far behind, like a real joiner would be.
        monkeypatch.setattr(manager, "_local_height", lambda: 0)
        return manager

    def _fetch(self, response):
        return _SnapshotFetch(
            min_height=response.cert_height, nonce=7, peer=response.sender
        )

    def test_valid_response_accepted(self, cluster, monkeypatch):
        response = self._valid_response(cluster)
        manager = self._joiner(cluster, monkeypatch)
        assert manager._validate_snapshot(response, self._fetch(response))

    def test_tampered_state_rejected(self, cluster, monkeypatch):
        response = self._valid_response(cluster)
        tampered = replace(
            response, state=response.state + (("evil", "payload"),)
        )
        signature = cluster.replicas[1].context.signing_key.sign(
            tampered.signing_payload()
        )
        tampered = replace(tampered, signature=signature)
        manager = self._joiner(cluster, monkeypatch)
        assert not manager._validate_snapshot(tampered, self._fetch(tampered))

    def test_thinned_certificate_rejected(self, cluster, monkeypatch):
        response = self._valid_response(cluster)
        thinned = replace(response, cert_signers=response.cert_signers[:1])
        signature = cluster.replicas[1].context.signing_key.sign(
            thinned.signing_payload()
        )
        thinned = replace(thinned, signature=signature)
        manager = self._joiner(cluster, monkeypatch)
        assert not manager._validate_snapshot(thinned, self._fetch(thinned))

    def test_block_certificate_mismatch_rejected(self, cluster, monkeypatch):
        response = self._valid_response(cluster)
        mismatched = replace(
            response, cert_block_id=hash_fields("other-block", 1)
        )
        signature = cluster.replicas[1].context.signing_key.sign(
            mismatched.signing_payload()
        )
        mismatched = replace(mismatched, signature=signature)
        manager = self._joiner(cluster, monkeypatch)
        assert not manager._validate_snapshot(
            mismatched, self._fetch(mismatched)
        )

    def test_unsigned_response_rejected(self, cluster, monkeypatch):
        response = replace(self._valid_response(cluster), signature=None)
        manager = self._joiner(cluster, monkeypatch)
        assert not manager._validate_snapshot(response, self._fetch(response))

    def test_caught_up_local_height_rejected(self, cluster):
        # Without the joiner patch, replica 0 is at (or past) the
        # stable height: installing would rewind it.
        response = self._valid_response(cluster)
        manager = cluster.replicas[0].checkpoint
        assert not manager._validate_snapshot(response, self._fetch(response))

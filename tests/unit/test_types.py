"""Blocks, votes, QCs, payloads: structure and validation."""

from repro.crypto.registry import KeyRegistry
from repro.types.block import Block, make_genesis
from repro.types.quorum_cert import QuorumCertificate, TimeoutCertificate
from repro.types.transaction import Payload, Transaction, TxBatch
from repro.types.vote import StrongVote, Vote


class TestGenesis:
    def test_genesis_round_and_height(self):
        genesis, qc = make_genesis()
        assert genesis.round == 0
        assert genesis.height == 0
        assert genesis.is_genesis()
        assert qc.is_genesis()
        assert qc.block_id == genesis.id()

    def test_genesis_deterministic(self):
        genesis_a, _ = make_genesis()
        genesis_b, _ = make_genesis()
        assert genesis_a.id() == genesis_b.id()


class TestBlockIdentity:
    def _block(self, **overrides):
        genesis, qc = make_genesis()
        fields = dict(
            parent_id=genesis.id(),
            qc=qc,
            round=1,
            height=1,
            proposer=0,
            payload=Payload(batch=TxBatch(count=5, size_bytes=100, tag=1)),
        )
        fields.update(overrides)
        return Block(**fields)

    def test_id_stable_and_cached(self):
        block = self._block()
        assert block.id() == block.id()

    def test_round_changes_id(self):
        assert self._block(round=1).id() != self._block(round=2).id()

    def test_payload_changes_id(self):
        other = Payload(batch=TxBatch(count=5, size_bytes=100, tag=2))
        assert self._block().id() != self._block(payload=other).id()

    def test_proposer_changes_id(self):
        assert self._block(proposer=0).id() != self._block(proposer=1).id()

    def test_commit_log_changes_id(self):
        logged = self._block(commit_log=((b"\x00" * 32, 3),))
        assert self._block().id() != logged.id()

    def test_created_at_does_not_change_id(self):
        # Timestamps are bookkeeping, not consensus content.
        assert self._block(created_at=1.0).id() == self._block(created_at=2.0).id()


class TestPayload:
    def test_tx_count_combines_batch_and_transactions(self):
        txns = tuple(Transaction(client_id=0, sequence=i) for i in range(3))
        payload = Payload(
            transactions=txns, batch=TxBatch(count=10, size_bytes=100)
        )
        assert payload.tx_count() == 13

    def test_size_accounts_for_transactions(self):
        txn = Transaction(client_id=0, sequence=0, payload=b"x" * 100)
        payload = Payload(transactions=(txn,))
        assert payload.size_bytes() == txn.size_bytes() == 116

    def test_txid_distinct_per_sequence(self):
        txn_a = Transaction(client_id=0, sequence=0)
        txn_b = Transaction(client_id=0, sequence=1)
        assert txn_a.txid() != txn_b.txid()


class TestVotes:
    def _vote_pair(self):
        genesis, _ = make_genesis()
        plain = Vote(
            block_id=genesis.id(), block_round=1, height=1, voter=2
        )
        strong = StrongVote(
            block_id=genesis.id(), block_round=5, height=5, voter=2, marker=3
        )
        return plain, strong

    def test_plain_vote_behaves_like_marker_zero(self):
        plain, _ = self._vote_pair()
        assert plain.conflicts_marker() == 0

    def test_strong_vote_endorses_round_above_marker(self):
        _, strong = self._vote_pair()
        assert strong.endorses_round(4)
        assert not strong.endorses_round(3)
        assert not strong.endorses_round(2)

    def test_interval_vote_endorsement(self):
        genesis, _ = make_genesis()
        vote = StrongVote(
            block_id=genesis.id(),
            block_round=10,
            height=10,
            voter=0,
            marker=9,
            intervals=((1, 3), (7, 10)),
        )
        assert vote.uses_intervals()
        assert vote.endorses_round(2)
        assert not vote.endorses_round(5)
        assert vote.endorses_round(8)

    def test_signing_payload_covers_marker(self):
        genesis, _ = make_genesis()
        vote_a = StrongVote(
            block_id=genesis.id(), block_round=1, height=1, voter=0, marker=0
        )
        vote_b = StrongVote(
            block_id=genesis.id(), block_round=1, height=1, voter=0, marker=1
        )
        assert vote_a.signing_payload() != vote_b.signing_payload()

    def test_signing_payload_covers_intervals(self):
        genesis, _ = make_genesis()
        vote_a = StrongVote(
            block_id=genesis.id(), block_round=1, height=1, voter=0,
            intervals=((1, 1),),
        )
        vote_b = StrongVote(
            block_id=genesis.id(), block_round=1, height=1, voter=0,
            intervals=((1, 2),),
        )
        assert vote_a.signing_payload() != vote_b.signing_payload()


class TestQuorumCertificate:
    def test_genesis_qc_valid_by_definition(self):
        registry = KeyRegistry(4)
        _, genesis_qc = make_genesis()
        assert genesis_qc.is_genesis()
        assert genesis_qc.validate(registry, quorum=3)

    def test_empty_non_genesis_qc_invalid(self):
        registry = KeyRegistry(4)
        genesis, _ = make_genesis()
        qc = QuorumCertificate(block_id=genesis.id(), round=1, height=0, votes=())
        assert not qc.validate(registry, quorum=3)

    def test_voters_deduplicated(self):
        genesis, _ = make_genesis()
        vote = Vote(block_id=genesis.id(), block_round=1, height=1, voter=1)
        qc = QuorumCertificate(
            block_id=genesis.id(), round=1, height=1, votes=(vote, vote)
        )
        assert qc.voters() == frozenset({1})

    def test_ranking_by_round(self):
        genesis, _ = make_genesis()
        low = QuorumCertificate(block_id=genesis.id(), round=1, height=1)
        high = QuorumCertificate(block_id=genesis.id(), round=2, height=2)
        assert high.ranks_higher_than(low)
        assert not low.ranks_higher_than(high)

    def test_strongness_detection(self):
        genesis, _ = make_genesis()
        strong_vote = StrongVote(
            block_id=genesis.id(), block_round=1, height=1, voter=0
        )
        plain_vote = Vote(
            block_id=genesis.id(), block_round=1, height=1, voter=0
        )
        strong_qc = QuorumCertificate(
            block_id=genesis.id(), round=1, height=1, votes=(strong_vote,)
        )
        plain_qc = QuorumCertificate(
            block_id=genesis.id(), round=1, height=1, votes=(plain_vote,)
        )
        assert strong_qc.is_strong()
        assert not plain_qc.is_strong()


class TestQuorumCertificateValidation:
    def _make_certified(self, registry, voters, tamper=None):
        genesis, genesis_qc = make_genesis()
        block = Block(
            parent_id=genesis.id(),
            qc=genesis_qc,
            round=1,
            height=1,
            proposer=0,
        )
        votes = []
        for voter in voters:
            vote = Vote(
                block_id=block.id(),
                block_round=block.round,
                height=block.height,
                voter=voter,
            )
            signature = registry.signing_key(voter).sign(vote.signing_payload())
            votes.append(
                Vote(
                    block_id=vote.block_id,
                    block_round=vote.block_round,
                    height=vote.height,
                    voter=vote.voter,
                    signature=signature,
                )
            )
        if tamper:
            votes = tamper(votes)
        return block, QuorumCertificate(
            block_id=block.id(),
            round=block.round,
            height=block.height,
            votes=tuple(votes),
        )

    def test_valid_quorum_accepted(self):
        registry = KeyRegistry(4)
        _, qc = self._make_certified(registry, range(3))
        assert qc.validate(registry, quorum=3)

    def test_forged_signature_rejected(self):
        registry = KeyRegistry(4)

        def tamper(votes):
            bad = votes[0]
            forged = Vote(
                block_id=bad.block_id,
                block_round=bad.block_round,
                height=bad.height,
                voter=bad.voter,
                signature=registry.signing_key(3).sign(b"junk"),
            )
            return [forged] + votes[1:]

        _, qc = self._make_certified(registry, range(3), tamper=tamper)
        assert not qc.validate(registry, quorum=3)

    def test_vote_for_other_block_rejected(self):
        registry = KeyRegistry(4)
        block, qc = self._make_certified(registry, range(3))
        other = QuorumCertificate(
            block_id=block.qc.block_id,  # genesis id, not this block
            round=block.round,
            height=block.height,
            votes=qc.votes,
        )
        assert not other.validate(registry, quorum=3)


class TestTimeoutCertificate:
    def test_fields(self):
        tc = TimeoutCertificate(
            round=5, timeout_voters=frozenset({1, 2, 3}), highest_qc_round=4
        )
        assert tc.round == 5
        assert len(tc.timeout_voters) == 3
        assert tc.highest_qc_round == 4


class TestPayloadCaching:
    def test_vote_signing_payload_cached_and_stable(self):
        genesis, _ = make_genesis()
        vote = StrongVote(
            block_id=genesis.id(), block_round=3, height=3, voter=1, marker=2
        )
        first = vote.signing_payload()
        assert vote.signing_payload() is first  # second call hits the cache
        fresh = StrongVote(
            block_id=genesis.id(), block_round=3, height=3, voter=1, marker=2
        )
        assert fresh.signing_payload() == first

    def test_plain_vote_exposes_empty_intervals(self):
        genesis, _ = make_genesis()
        vote = Vote(block_id=genesis.id(), block_round=1, height=1, voter=0)
        assert vote.intervals == ()

    def test_cache_excluded_from_equality(self):
        genesis, _ = make_genesis()
        warm = Vote(block_id=genesis.id(), block_round=1, height=1, voter=0)
        warm.signing_payload()
        cold = Vote(block_id=genesis.id(), block_round=1, height=1, voter=0)
        assert warm == cold
        assert hash(warm) == hash(cold)

    def test_signed_replacement_keeps_payload(self):
        from dataclasses import replace

        registry = KeyRegistry(4)
        genesis, _ = make_genesis()
        vote = Vote(block_id=genesis.id(), block_round=1, height=1, voter=2)
        payload = vote.signing_payload()
        signed = replace(
            vote, signature=registry.signing_key(2).sign(payload)
        )
        assert signed.signing_payload() == payload
        assert registry.verify(signed.signing_payload(), signed.signature)


class TestQuorumCertificateMemo:
    def _certified(self, registry):
        helper = TestQuorumCertificateValidation()
        return helper._make_certified(registry, range(3))

    def test_validate_memoized_per_certificate(self):
        registry = KeyRegistry(4)
        _, qc = self._certified(registry)
        assert qc._validate_memo is None
        assert qc.validate(registry, quorum=3)
        memo = qc._validate_memo
        assert memo == (registry, 3, True)
        assert qc.validate(registry, quorum=3)
        assert qc._validate_memo is memo  # answered from the memo

    def test_memo_respects_quorum_argument(self):
        registry = KeyRegistry(4)
        _, qc = self._certified(registry)
        assert qc.validate(registry, quorum=3)
        assert not qc.validate(registry, quorum=4)  # re-evaluated, not memo
        assert qc.validate(registry, quorum=3)

    def test_memo_respects_registry_identity(self):
        registry = KeyRegistry(4)
        _, qc = self._certified(registry)
        assert qc.validate(registry, quorum=3)
        # A registry with different keys must not inherit the verdict.
        stranger = KeyRegistry(4, seed=b"other")
        assert not qc.validate(stranger, quorum=3)

    def test_invalid_verdict_memoized_too(self):
        registry = KeyRegistry(4)
        genesis, _ = make_genesis()
        qc = QuorumCertificate(block_id=genesis.id(), round=1, height=0, votes=())
        assert not qc.validate(registry, quorum=3)
        assert qc._validate_memo == (registry, 3, False)
        assert not qc.validate(registry, quorum=3)

    def test_memo_disabled_with_registry_switch(self, monkeypatch):
        monkeypatch.setattr(KeyRegistry, "memoize", False)
        registry = KeyRegistry(4)
        _, qc = self._certified(registry)
        assert qc.validate(registry, quorum=3)
        assert qc._validate_memo is None

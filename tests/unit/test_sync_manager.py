"""SyncManager edge cases: validation, retry/rotation, deep gaps.

These tests drive the manager through hand-crafted messages, with
``context.send`` captured, so every rejection and rotation path is
observable without a full simulation.
"""

from dataclasses import replace

import pytest

from repro.experiments.spec import ScenarioSpec
from repro.types.messages import SyncRequestMsg, SyncResponseMsg
from repro.types.quorum_cert import QuorumCertificate
from repro.types.vote import Vote


def build_cluster(**overrides):
    params = dict(
        name="sync-unit",
        protocol="sft-diembft",
        n=4,
        topology="uniform",
        uniform_delay=0.01,
        round_timeout=0.3,
        duration=4.0,
        seeds=(7,),
        block_batch_count=2,
        block_batch_bytes=100,
    )
    params.update(overrides)
    spec = ScenarioSpec(**params)
    cluster = spec.build(spec.seeds[0])
    cluster.build()
    return cluster


@pytest.fixture(scope="module")
def donor():
    """A finished healthy run whose replica 0 holds a certified chain."""
    cluster = build_cluster()
    cluster.run()
    return cluster


def donor_chain(donor, count):
    """The newest ``count`` certified non-genesis blocks, newest first."""
    store = donor.replicas[0].store
    blocks = []
    cursor = store.highest_certified_block()
    while not cursor.is_genesis() and len(blocks) < count:
        blocks.append(cursor)
        cursor = store.maybe_get(cursor.parent_id)
    assert len(blocks) == count, "donor run too short for this test"
    return tuple(blocks)


def capture_sends(replica):
    sent = []
    replica.context.send = lambda dst, message: sent.append((dst, message))
    return sent


def signed_request(cluster, sender, target, nonce=1, max_blocks=8):
    request = SyncRequestMsg(
        sender=sender, target=target, max_blocks=max_blocks, nonce=nonce
    )
    signature = cluster.registry.signing_key(sender).sign(
        request.signing_payload()
    )
    return replace(request, signature=signature)


def signed_response(cluster, sender, nonce, blocks, tip_qc=None):
    response = SyncResponseMsg(
        sender=sender, nonce=nonce, blocks=tuple(blocks), tip_qc=tip_qc
    )
    signature = cluster.registry.signing_key(sender).sign(
        response.signing_payload()
    )
    return replace(response, signature=signature)


class TestServe:
    def test_serves_linked_certified_chain(self, donor):
        replica = donor.replicas[0]
        sent = capture_sends(replica)
        target = replica.store.highest_certified_block()
        replica.deliver(1, signed_request(donor, 1, target.id(), nonce=9))
        assert len(sent) == 1
        dst, response = sent[0]
        assert dst == 1 and isinstance(response, SyncResponseMsg)
        assert response.nonce == 9
        assert response.blocks[0].id() == target.id()
        for block, parent in zip(response.blocks, response.blocks[1:]):
            assert block.parent_id == parent.id()
        assert response.tip_qc is not None
        assert response.tip_qc.block_id == target.id()
        assert response.tip_qc.validate(donor.registry, 3)

    def test_unknown_target_yields_empty_miss(self, donor):
        fresh = build_cluster()
        replica = fresh.replicas[0]
        sent = capture_sends(replica)
        unknown = donor.replicas[0].store.highest_certified_block().id()
        replica.deliver(1, signed_request(fresh, 1, unknown, nonce=3))
        assert len(sent) == 1
        assert sent[0][1].blocks == ()

    def test_bad_request_signature_is_ignored(self, donor):
        replica = donor.replicas[0]
        sent = capture_sends(replica)
        request = SyncRequestMsg(
            sender=1,
            target=replica.store.highest_certified_block().id(),
            nonce=4,
        )  # unsigned
        replica.deliver(1, request)
        assert sent == []


class TestResponseValidation:
    def test_invalid_embedded_qc_rejected_without_store_mutation(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[0]
        sent = capture_sends(replica)
        chain = donor_chain(donor, 3)
        replica.sync.note_missing(chain[0].id())
        (_, request), = sent
        # Tamper the newest block: its embedded QC names the right
        # parent but carries no valid vote signatures.
        forged_qc = QuorumCertificate(
            block_id=chain[0].parent_id,
            round=chain[1].round,
            height=chain[1].height,
            votes=tuple(
                Vote(
                    block_id=chain[0].parent_id,
                    block_round=chain[1].round,
                    height=chain[1].height,
                    voter=voter,
                )
                for voter in range(3)
            ),
        )
        tampered = replace(chain[0], qc=forged_qc)
        before = len(replica.store)
        response = signed_response(
            cluster, 1, request.nonce, (tampered, chain[1])
        )
        replica.deliver(1, response)
        assert len(replica.store) == before
        assert replica.sync.invalid_responses == 1

    def test_invalid_tip_qc_rejected_without_store_mutation(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[0]
        sent = capture_sends(replica)
        chain = donor_chain(donor, 2)
        replica.sync.note_missing(chain[0].id())
        (_, request), = sent
        forged_tip = QuorumCertificate(
            block_id=chain[0].id(),
            round=chain[0].round,
            height=chain[0].height,
            votes=(),
        )
        before = len(replica.store)
        response = signed_response(
            cluster, 1, request.nonce, chain, tip_qc=forged_tip
        )
        replica.deliver(1, response)
        assert len(replica.store) == before
        assert replica.sync.invalid_responses == 1

    def test_broken_linkage_rejected(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[0]
        sent = capture_sends(replica)
        chain = donor_chain(donor, 3)
        replica.sync.note_missing(chain[0].id())
        (_, request), = sent
        before = len(replica.store)
        # Skip the middle block: chain[0].parent_id != chain[2].id().
        response = signed_response(
            cluster, 1, request.nonce, (chain[0], chain[2])
        )
        replica.deliver(1, response)
        assert len(replica.store) == before
        assert replica.sync.invalid_responses == 1

    def test_unsolicited_response_is_dropped(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[0]
        chain = donor_chain(donor, 2)
        before = len(replica.store)
        replica.deliver(1, signed_response(cluster, 1, nonce=99, blocks=chain))
        assert len(replica.store) == before
        assert replica.sync.responses_applied == 0


class TestRetryAndRotation:
    def test_withholding_peer_triggers_rotation(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[0]
        sent = capture_sends(replica)
        target = donor_chain(donor, 1)[0].id()
        replica.sync.note_missing(target)
        assert [dst for dst, _ in sent] == [1]
        # Nobody answers: the retry timer must rotate to the next peer.
        cluster.simulator.run_until(replica.config.sync_retry * 2.5)
        peers = [dst for dst, _ in sent]
        assert peers[:3] == [1, 2, 3]
        assert replica.sync.peer_rotations >= 2

    def test_rotation_skips_self(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[2]
        sent = capture_sends(replica)
        replica.sync.note_missing(donor_chain(donor, 1)[0].id())
        cluster.simulator.run_until(replica.config.sync_retry * 4)
        assert 2 not in [dst for dst, _ in sent]

    def test_empty_miss_rotates_immediately(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[0]
        sent = capture_sends(replica)
        replica.sync.note_missing(donor_chain(donor, 1)[0].id())
        (_, request), = sent
        replica.deliver(1, signed_response(cluster, 1, request.nonce, ()))
        assert [dst for dst, _ in sent] == [1, 2]
        assert replica.sync.peer_rotations == 1

    def test_gives_up_after_attempt_budget(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[0]
        capture_sends(replica)
        replica.sync.note_missing(donor_chain(donor, 1)[0].id())
        cluster.simulator.run_until(60.0)
        assert replica.sync.inflight() == 0
        assert replica.sync.requests_sent == 3 * (replica.config.n - 1)


class TestApply:
    def test_valid_chain_inserts_and_resolves(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[0]
        sent = capture_sends(replica)
        # The chain must reach genesis for the fresh store to accept it.
        tip = donor.replicas[0].store.highest_certified_block()
        full = donor_chain(donor, tip.height)
        replica.sync.note_missing(full[0].id())
        (_, request), = sent
        tip_qc = donor.replicas[0].store.qc_for(full[0].id())
        replica.deliver(
            1, signed_response(cluster, 1, request.nonce, full, tip_qc=tip_qc)
        )
        assert full[0].id() in replica.store
        assert replica.store.is_certified(full[0].id())
        assert replica.sync.inflight() == 0
        assert replica.sync.blocks_synced == len(full)

    def test_deep_gap_chases_missing_parent(self, donor):
        cluster = build_cluster()
        replica = cluster.replicas[0]
        replica.config.sync_max_blocks = 2
        sent = capture_sends(replica)
        chain = donor_chain(donor, 4)
        replica.sync.note_missing(chain[0].id())
        (_, request), = sent
        # A truncated response (2 blocks) leaves the gap open below.
        replica.deliver(
            1, signed_response(cluster, 1, request.nonce, chain[:2])
        )
        # The manager must immediately chase the still-missing parent.
        followups = [msg for _, msg in sent if isinstance(msg, SyncRequestMsg)]
        assert followups[-1].target == chain[1].parent_id

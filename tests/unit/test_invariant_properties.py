"""Seeded property tests: endorsement/strength invariants on random traces.

Random block trees, vote sequences, and marker assignments are drawn
from a seeded ``random.Random`` (deterministic per seed, no external
dependencies) and fed to the core SFT accounting.  The invariants:

* endorser counts never decrease as votes accrue, and never exceed the
  set of voters seen so far;
* the incremental :class:`EndorsementTracker` agrees exactly with the
  :class:`BruteForceEndorsementOracle` reference;
* :meth:`CommitTracker.strength_of` never decreases, never exceeds the
  ``2f`` cap, never exceeds what the voter universe can endorse
  (``strength + f + 1 <= #voters``), and its timelines are dense with
  non-decreasing first-reach times.
"""

import random

import pytest

from repro.core.commit_rules import CommitTracker
from repro.core.endorsement import BruteForceEndorsementOracle, EndorsementTracker
from repro.core.resilience import max_strength

SEEDS = (0, 1, 2, 3, 4)


def _grow_tree(builder, rng, steps: int) -> list:
    """A random block tree with strictly increasing rounds and forks."""
    blocks = [builder.genesis]
    next_round = 1
    for _ in range(steps):
        # Bias towards recent blocks so chains grow, but fork freely.
        parent = rng.choice(blocks[-5:])
        block = builder.block(parent, next_round)
        next_round += 1
        blocks.append(block)
    return blocks[1:]


def _random_vote(builder, rng, blocks, n: int):
    block = rng.choice(blocks)
    voter = rng.randrange(n)
    if rng.random() < 0.6:
        marker = 0
    else:
        marker = rng.randrange(0, block.round + 2)
    return builder.vote(block, voter, marker=marker)


class TestEndorsementProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_counts_monotone_and_bounded(self, builder_f2, seed):
        rng = random.Random(f"endorse:{seed}")
        blocks = _grow_tree(builder_f2, rng, steps=12)
        tracker = EndorsementTracker(builder_f2.store, mode="round")
        seen_voters: set = set()
        previous: dict = {}
        for _ in range(80):
            vote = _random_vote(builder_f2, rng, blocks, builder_f2.n)
            tracker.add_vote(vote)
            seen_voters.add(vote.voter)
            for block in blocks:
                count = tracker.count(block.id())
                assert count >= previous.get(block.id(), 0), (
                    "endorser count decreased"
                )
                assert count <= len(seen_voters)
                previous[block.id()] = count

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", ("round", "height"))
    def test_tracker_matches_brute_force(self, builder_f2, seed, mode):
        rng = random.Random(f"oracle:{mode}:{seed}")
        blocks = _grow_tree(builder_f2, rng, steps=12)
        tracker = EndorsementTracker(builder_f2.store, mode=mode)
        oracle = BruteForceEndorsementOracle(builder_f2.store, mode=mode)
        for _ in range(80):
            vote = _random_vote(builder_f2, rng, blocks, builder_f2.n)
            tracker.add_vote(vote)
            oracle.add_vote(vote)
        for block in blocks:
            if mode == "round":
                # endorsers_at is a height-mode query; round-mode walks
                # stop early and do not keep the coverage it needs.
                assert tracker.endorsers(block.id()) == oracle.endorsers(
                    block.id()
                ), f"round-mode mismatch at round {block.round}"
                continue
            for k in (0, 1, block.height, block.height + 2):
                assert tracker.endorsers_at(block.id(), k) == oracle.endorsers(
                    block.id(), k
                ), f"k={k} mismatch at round {block.round}"


def _random_certified_chains(builder, rng, rounds: int):
    """Certified, consecutive-round chains (with forks) plus their QCs.

    Returns the QCs in creation order; markers are random but small so
    both sound and lying voters appear.
    """
    qcs = []
    tips = [builder.genesis]
    next_round = 1
    for _ in range(rounds):
        parent = rng.choice(tips[-3:])
        block = builder.block(parent, next_round)
        voters = rng.sample(range(builder.n), builder.quorum())
        markers = {
            voter: rng.randrange(0, next_round + 1)
            for voter in voters
            if rng.random() < 0.4
        }
        qcs.append(builder.certify(block, voters=voters, markers=markers))
        tips.append(block)
        next_round += 1
    return qcs


class TestStrengthProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_strength_monotone_capped_and_voter_bounded(self, builder_f2, seed):
        rng = random.Random(f"strength:{seed}")
        f = builder_f2.f
        tracker = EndorsementTracker(builder_f2.store, mode="round")
        commits = CommitTracker(
            builder_f2.store, f, rule="diembft", endorsement=tracker
        )
        qcs = _random_certified_chains(builder_f2, rng, rounds=14)
        seen_voters: set = set()
        previous: dict = {}
        now = 0.0
        for qc in qcs:
            now += 1.0
            tracker.add_strong_qc(qc, now)
            commits.on_new_qc(qc, now)
            seen_voters.update(vote.voter for vote in qc.votes)
            for block in builder_f2.store.all_blocks():
                strength = commits.strength_of(block.id())
                assert strength >= previous.get(block.id(), -1), (
                    "strength decreased"
                )
                previous[block.id()] = strength
                assert strength <= max_strength(f)
                if strength >= 0:
                    assert strength >= f, "strong commits start at level f"
                    assert strength + f + 1 <= len(seen_voters), (
                        "strength exceeds what the voter universe can endorse"
                    )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_timelines_dense_with_monotone_times(self, builder_f2, seed):
        rng = random.Random(f"timeline:{seed}")
        f = builder_f2.f
        tracker = EndorsementTracker(builder_f2.store, mode="round")
        commits = CommitTracker(
            builder_f2.store, f, rule="diembft", endorsement=tracker
        )
        now = 0.0
        for qc in _random_certified_chains(builder_f2, rng, rounds=14):
            now += 1.0
            tracker.add_strong_qc(qc, now)
            commits.on_new_qc(qc, now)
        for _block_id, timeline in commits.timelines():
            levels = sorted(timeline.first_reach)
            assert levels == list(range(0, timeline.current + 1))
            times = [timeline.first_reach[level] for level in levels]
            assert times == sorted(times)

"""KV state machine: commands, determinism, external validity."""

from repro.app import KVCommand, KVStateMachine


class TestCommands:
    def test_encode_decode_roundtrip(self):
        command = KVCommand(op="transfer", key="a", key2="b", amount=7)
        assert KVCommand.decode(command.encode()) == command

    def test_decode_garbage_returns_none(self):
        assert KVCommand.decode(b"\xff\xfe") is None
        assert KVCommand.decode(b"just-text") is None

    def test_to_transaction_carries_payload(self):
        command = KVCommand(op="set", key="k", value="v")
        transaction = command.to_transaction(client_id=1, sequence=2)
        assert KVCommand.decode(transaction.payload) == command


class TestStateMachine:
    def test_set_get_del(self):
        machine = KVStateMachine()
        assert machine.apply(KVCommand(op="set", key="k", value="v"))
        assert machine.get("k") == "v"
        assert machine.apply(KVCommand(op="del", key="k"))
        assert machine.get("k") is None

    def test_transfer_moves_balance(self):
        machine = KVStateMachine()
        machine.apply(KVCommand(op="set", key="alice", value="10"))
        assert machine.apply(
            KVCommand(op="transfer", key="alice", key2="bob", amount=4)
        )
        assert machine.get("alice") == "6"
        assert machine.get("bob") == "4"

    def test_overdraft_rejected_without_effect(self):
        machine = KVStateMachine()
        machine.apply(KVCommand(op="set", key="alice", value="3"))
        assert not machine.apply(
            KVCommand(op="transfer", key="alice", key2="bob", amount=5)
        )
        assert machine.get("alice") == "3"
        assert machine.get("bob") is None
        assert machine.rejected == 1

    def test_negative_transfer_rejected(self):
        machine = KVStateMachine()
        machine.apply(KVCommand(op="set", key="alice", value="3"))
        assert not machine.apply(
            KVCommand(op="transfer", key="alice", key2="bob", amount=-1)
        )

    def test_self_transfer_conserves_balance(self):
        machine = KVStateMachine()
        machine.apply(KVCommand(op="set", key="alice", value="10"))
        assert machine.apply(
            KVCommand(op="transfer", key="alice", key2="alice", amount=4)
        )
        assert machine.get("alice") == "10"

    def test_unknown_op_rejected(self):
        machine = KVStateMachine()
        assert not machine.apply(KVCommand(op="increment", key="x"))

    def test_state_hash_order_independent(self):
        machine_a = KVStateMachine()
        machine_a.apply(KVCommand(op="set", key="a", value="1"))
        machine_a.apply(KVCommand(op="set", key="b", value="2"))
        machine_b = KVStateMachine()
        machine_b.apply(KVCommand(op="set", key="b", value="2"))
        machine_b.apply(KVCommand(op="set", key="a", value="1"))
        assert machine_a.state_hash() == machine_b.state_hash()

    def test_state_hash_sensitive_to_values(self):
        machine_a = KVStateMachine()
        machine_a.apply(KVCommand(op="set", key="a", value="1"))
        machine_b = KVStateMachine()
        machine_b.apply(KVCommand(op="set", key="a", value="2"))
        assert machine_a.state_hash() != machine_b.state_hash()

    def test_snapshot_is_copy(self):
        machine = KVStateMachine()
        machine.apply(KVCommand(op="set", key="a", value="1"))
        snapshot = machine.snapshot()
        snapshot["a"] = "tampered"
        assert machine.get("a") == "1"

"""Regular 3-chain commits and the strong commit rule."""

from repro.core.commit_rules import CommitTracker
from repro.core.endorsement import EndorsementTracker


class TestDiemBFTRegularCommit:
    def test_three_chain_commits_head(self, builder):
        tracker = CommitTracker(builder.store, f=1, rule="diembft")
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        newly = tracker.on_new_qc(builder.store.qc_for(blocks[2].id()), now=5.0)
        committed_rounds = [event.round for event in newly]
        # Head B_1 commits (plus genesis as its ancestor).
        assert committed_rounds == [0, 1]
        assert tracker.is_committed(blocks[0].id())
        assert not tracker.is_committed(blocks[1].id())

    def test_non_consecutive_rounds_do_not_commit(self, builder):
        tracker = CommitTracker(builder.store, f=1, rule="diembft")
        blocks = builder.chain(builder.genesis, [1, 2, 4])
        newly = tracker.on_new_qc(builder.store.qc_for(blocks[2].id()), now=5.0)
        assert newly == []

    def test_commit_includes_skipped_round_ancestors(self, builder):
        tracker = CommitTracker(builder.store, f=1, rule="diembft")
        blocks = builder.chain(builder.genesis, [1, 2, 5, 6, 7])
        for block in blocks:
            tracker.on_new_qc(builder.store.qc_for(block.id()), now=1.0)
        # 3-chain (5, 6, 7) commits B_5 and all its ancestors.
        assert tracker.is_committed(blocks[2].id())
        assert tracker.is_committed(blocks[1].id())
        assert tracker.is_committed(blocks[0].id())

    def test_commit_latency_uses_creation_time(self, builder):
        tracker = CommitTracker(builder.store, f=1, rule="diembft")
        base = builder.block(builder.genesis, 1, created_at=1.0)
        builder.certify(base)
        middle = builder.block(base, 2, created_at=2.0)
        builder.certify(middle)
        tip = builder.block(middle, 3, created_at=3.0)
        builder.certify(tip)
        newly = tracker.on_new_qc(builder.store.qc_for(tip.id()), now=4.5)
        head_event = [event for event in newly if event.round == 1][0]
        assert head_event.latency() == 3.5

    def test_commit_events_are_idempotent(self, builder):
        tracker = CommitTracker(builder.store, f=1, rule="diembft")
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        qc = builder.store.qc_for(blocks[2].id())
        first = tracker.on_new_qc(qc, now=5.0)
        second = tracker.on_new_qc(qc, now=6.0)
        assert first and second == []
        assert tracker.commit_count() == len(first)


class TestStreamletRegularCommit:
    def test_three_chain_commits_middle(self, builder):
        tracker = CommitTracker(builder.store, f=1, rule="streamlet")
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        newly = tracker.on_new_qc(builder.store.qc_for(blocks[2].id()), now=5.0)
        committed_rounds = [event.round for event in newly]
        assert committed_rounds == [0, 1, 2]
        assert tracker.is_committed(blocks[1].id())
        assert not tracker.is_committed(blocks[2].id())

    def test_gap_prevents_commit(self, builder):
        tracker = CommitTracker(builder.store, f=1, rule="streamlet")
        blocks = builder.chain(builder.genesis, [1, 3, 4])
        assert tracker.on_new_qc(
            builder.store.qc_for(blocks[2].id()), now=5.0
        ) == []


class TestStrongCommits:
    def _setup(self, builder):
        endorsement = EndorsementTracker(builder.store, mode="round")
        tracker = CommitTracker(
            builder.store, f=1, rule="diembft", endorsement=endorsement
        )
        return endorsement, tracker

    def test_regular_commit_equals_f_strong(self, builder):
        endorsement, tracker = self._setup(builder)
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        for block in blocks:
            qc = builder.store.qc_for(block.id())
            endorsement.add_strong_qc(qc, now=1.0)
            tracker.on_new_qc(qc, now=1.0)
        # Quorum = 3 = 2f+1 endorsers on each → strength f exactly.
        assert tracker.strength_of(blocks[0].id()) == builder.f

    def test_strength_grows_with_extension_qcs(self, builder):
        endorsement, tracker = self._setup(builder)
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        for block in blocks:
            qc = builder.store.qc_for(block.id())
            endorsement.add_strong_qc(qc, now=1.0)
            tracker.on_new_qc(qc, now=1.0)
        # Extend with a block certified by everyone (n = 4 voters).
        tip = builder.block(blocks[-1], 4)
        qc = builder.certify(tip, voters=range(builder.n))
        endorsement.add_strong_qc(qc, now=2.0)
        tracker.on_new_qc(qc, now=2.0)
        tip2 = builder.block(tip, 5)
        qc2 = builder.certify(tip2, voters=range(builder.n))
        endorsement.add_strong_qc(qc2, now=3.0)
        tracker.on_new_qc(qc2, now=3.0)
        tip3 = builder.block(tip2, 6)
        qc3 = builder.certify(tip3, voters=range(builder.n))
        endorsement.add_strong_qc(qc3, now=4.0)
        tracker.on_new_qc(qc3, now=4.0)
        # All four replicas endorse the original 3-chain → 2f-strong.
        assert tracker.strength_of(blocks[0].id()) == 2 * builder.f

    def test_strength_propagates_to_ancestors(self, builder):
        endorsement, tracker = self._setup(builder)
        blocks = builder.chain(builder.genesis, [1, 2, 3, 4, 5])
        for block in blocks:
            qc = builder.certify(block, voters=range(builder.n))
            endorsement.add_strong_qc(qc, now=1.0)
            tracker.on_new_qc(qc, now=1.0)
        # The (3,4,5) triple is 2f-strong; ancestors inherit it.
        assert tracker.strength_of(blocks[0].id()) == 2 * builder.f
        assert tracker.strength_of(builder.genesis.id()) == 2 * builder.f

    def test_strength_timeline_records_first_reach(self, builder):
        endorsement, tracker = self._setup(builder)
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        for index, block in enumerate(blocks):
            qc = builder.store.qc_for(block.id())
            endorsement.add_strong_qc(qc, now=float(index))
            tracker.on_new_qc(qc, now=float(index))
        timeline = tracker.timeline_of(blocks[0].id())
        assert timeline is not None
        assert timeline.first_reached(builder.f) == 2.0

    def test_marker_suppressed_votes_do_not_raise_strength(self, builder_f2):
        builder = builder_f2
        endorsement = EndorsementTracker(builder.store, mode="round")
        tracker = CommitTracker(
            builder.store, f=builder.f, rule="diembft", endorsement=endorsement
        )
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        for block in blocks:
            qc = builder.store.qc_for(block.id())
            endorsement.add_strong_qc(qc, now=1.0)
            tracker.on_new_qc(qc, now=1.0)
        # A descendant QC whose extra votes carry high markers adds no
        # endorsement for the old 3-chain.
        tip = builder.block(blocks[-1], 4)
        extra_voters = range(builder.quorum(), builder.n)
        markers = {voter: 3 for voter in extra_voters}
        voters = list(range(builder.quorum())) + list(extra_voters)
        qc = builder.certify(tip, voters=voters, markers=markers)
        endorsement.add_strong_qc(qc, now=2.0)
        tracker.on_new_qc(qc, now=2.0)
        assert tracker.strength_of(blocks[0].id()) == builder.f


class TestStreamletStrongCommits:
    def test_k_endorsement_strength(self, builder):
        endorsement = EndorsementTracker(builder.store, mode="height")
        tracker = CommitTracker(
            builder.store, f=1, rule="streamlet", endorsement=endorsement
        )
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        for block in blocks:
            qc = builder.certify(block, voters=range(builder.n))
            endorsement.add_strong_qc(qc, now=1.0)
            tracker.on_new_qc(qc, now=1.0)
        tracker.evaluate_strong_commits(now=2.0)
        # Middle block (height 2) has n k-endorsers with k = 2.
        assert tracker.strength_of(blocks[1].id()) == 2 * builder.f

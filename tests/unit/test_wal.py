"""Durable voting-state WAL: record/restore semantics and accounting."""

from repro.types.block import make_genesis
from repro.types.wal import DurableDisk, DurableState


def block_id(tag: int):
    genesis, _ = make_genesis()
    # Distinct deterministic ids without building full blocks.
    return (tag, genesis.id())


class TestDurableState:
    def test_record_vote_tracks_rounds_and_log(self):
        state = DurableState(replica_id=1)
        state.record_vote(3, block_id(0))
        state.record_vote(5, block_id(1))
        assert state.has_voted(3)
        assert state.has_voted(5)
        assert not state.has_voted(4)
        assert state.voted_rounds() == {3, 5}
        assert state.r_vote == 5
        assert state.records == 2

    def test_vote_log_is_append_only_and_detects_conflicts(self):
        state = DurableState(replica_id=0)
        state.record_vote(2, block_id(0))
        state.record_vote(2, block_id(0))  # idempotent re-fsync: same block
        assert state.double_votes() == []
        state.record_vote(2, block_id(1))  # conflicting write
        assert state.double_votes() == [2]
        # The map keeps the latest, the log keeps the evidence.
        assert len(state.vote_log) == 3

    def test_record_lock_and_qc_high_are_monotone(self):
        _, genesis_qc = make_genesis()
        state = DurableState(replica_id=0)
        state.record_lock(4)
        state.record_lock(2)  # regression ignored, not fsync'd
        assert state.r_lock == 4
        writes = state.records
        state.record_lock(2)
        assert state.records == writes
        state.record_qc_high(genesis_qc)
        assert state.qc_high is genesis_qc
        state.record_qc_high(genesis_qc)  # same round: no re-write
        assert state.records == writes + 1

    def test_record_timeout_fsyncs_once_per_round(self):
        state = DurableState(replica_id=2)
        state.record_timeout(7)
        state.record_timeout(7)
        assert state.timed_out_rounds == {7}
        assert state.records == 1

    def test_record_certified_height_is_monotone(self):
        state = DurableState(replica_id=0)
        state.record_certified_height(3)
        state.record_certified_height(2)
        state.record_certified_height(5)
        assert state.certified_height == 5
        assert state.records == 2

    def test_restore_counter(self):
        state = DurableState(replica_id=0)
        assert state.restores == 0
        state.note_restore()
        state.note_restore()
        assert state.restores == 2


class TestDurableDisk:
    def test_state_for_creates_once_and_survives(self):
        disk = DurableDisk()
        first = disk.state_for(3)
        first.record_vote(1, block_id(0))
        again = disk.state_for(3)
        assert again is first  # the "disk" survives the crash
        assert again.has_voted(1)

    def test_peek_does_not_create(self):
        disk = DurableDisk()
        assert disk.peek(0) is None
        disk.state_for(0)
        assert disk.peek(0) is not None

    def test_stats_aggregate_across_replicas(self):
        disk = DurableDisk()
        disk.state_for(0).record_vote(1, block_id(0))
        disk.state_for(1).record_vote(1, block_id(1))
        disk.state_for(1).note_restore()
        assert disk.stats() == {"replicas": 2, "records": 2, "restores": 1}

"""Light-client strong-commit proofs (Section 5)."""

import pytest

from repro.crypto.registry import KeyRegistry
from repro.lightclient import LightClient, ProofError, StrongCommitProof, build_proof
from repro.types.block import Block, make_genesis
from repro.types.chain import BlockStore
from repro.types.quorum_cert import QuorumCertificate
from repro.types.vote import StrongVote


def certified_log_block(registry, n, quorum, commit_log, round_number=1):
    """A block carrying ``commit_log``, certified by ``quorum`` replicas."""
    genesis, genesis_qc = make_genesis()
    block = Block(
        parent_id=genesis.id(),
        qc=genesis_qc,
        round=round_number,
        height=1,
        proposer=0,
        commit_log=commit_log,
    )
    votes = []
    for voter in range(quorum):
        vote = StrongVote(
            block_id=block.id(),
            block_round=block.round,
            height=block.height,
            voter=voter,
        )
        signature = registry.signing_key(voter).sign(vote.signing_payload())
        votes.append(
            StrongVote(
                block_id=vote.block_id,
                block_round=vote.block_round,
                height=vote.height,
                voter=vote.voter,
                signature=signature,
            )
        )
    qc = QuorumCertificate(
        block_id=block.id(),
        round=block.round,
        height=block.height,
        votes=tuple(votes),
    )
    return genesis, block, qc


class TestLightClient:
    def setup_method(self):
        self.registry = KeyRegistry(4)
        self.client = LightClient(self.registry, n=4, f=1)

    def test_valid_proof_accepted(self):
        target = (b"\x01" * 32, 2)
        _, block, qc = certified_log_block(
            self.registry, 4, 3, commit_log=(target,)
        )
        accepted = self.client.verify(StrongCommitProof(block=block, qc=qc))
        assert accepted == (target,)
        assert self.client.proven_strength(b"\x01" * 32) == 2

    def test_highest_level_retained(self):
        low = (b"\x01" * 32, 1)
        high = (b"\x01" * 32, 2)
        _, block, qc = certified_log_block(
            self.registry, 4, 3, commit_log=(high, low)
        )
        self.client.verify(StrongCommitProof(block=block, qc=qc))
        assert self.client.proven_strength(b"\x01" * 32) == 2

    def test_mismatched_certificate_rejected(self):
        _, block, qc = certified_log_block(
            self.registry, 4, 3, commit_log=((b"\x01" * 32, 1),)
        )
        _, other_block, _ = certified_log_block(
            self.registry, 4, 3, commit_log=((b"\x02" * 32, 1),)
        )
        with pytest.raises(ProofError):
            self.client.verify(StrongCommitProof(block=other_block, qc=qc))

    def test_undersized_quorum_rejected(self):
        _, block, qc = certified_log_block(
            self.registry, 4, 2, commit_log=((b"\x01" * 32, 1),)
        )
        with pytest.raises(ProofError):
            self.client.verify(StrongCommitProof(block=block, qc=qc))

    def test_forged_vote_rejected(self):
        _, block, qc = certified_log_block(
            self.registry, 4, 3, commit_log=((b"\x01" * 32, 1),)
        )
        forged_votes = tuple(
            StrongVote(
                block_id=vote.block_id,
                block_round=vote.block_round,
                height=vote.height,
                voter=vote.voter,
                signature=self.registry.signing_key(3).sign(b"junk"),
            )
            for vote in qc.votes
        )
        bad_qc = QuorumCertificate(
            block_id=qc.block_id,
            round=qc.round,
            height=qc.height,
            votes=forged_votes,
        )
        with pytest.raises(ProofError):
            self.client.verify(StrongCommitProof(block=block, qc=bad_qc))

    def test_out_of_range_levels_ignored(self):
        # Levels must lie in [f, 2f] = [1, 2].
        entries = ((b"\x01" * 32, 0), (b"\x02" * 32, 3), (b"\x03" * 32, 2))
        _, block, qc = certified_log_block(
            self.registry, 4, 3, commit_log=entries
        )
        accepted = self.client.verify(StrongCommitProof(block=block, qc=qc))
        assert accepted == ((b"\x03" * 32, 2),)

    def test_malformed_entries_skipped(self):
        entries = (("not-bytes", 2), (b"\x01" * 32,), (b"\x02" * 32, 2))
        _, block, qc = certified_log_block(
            self.registry, 4, 3, commit_log=entries
        )
        accepted = self.client.verify(StrongCommitProof(block=block, qc=qc))
        assert accepted == ((b"\x02" * 32, 2),)


class TestBuildProof:
    def test_build_proof_from_store(self):
        registry = KeyRegistry(4)
        genesis, block, qc = certified_log_block(
            registry, 4, 3, commit_log=((b"\x01" * 32, 2),)
        )
        _, genesis_qc = make_genesis()
        store = BlockStore(genesis, genesis_qc)
        store.add_block(block)
        store.record_qc(qc)
        proof = build_proof(store, block.id())
        assert proof is not None
        assert proof.entries() == ((b"\x01" * 32, 2),)

    def test_no_proof_without_qc(self):
        registry = KeyRegistry(4)
        genesis, block, _ = certified_log_block(
            registry, 4, 3, commit_log=((b"\x01" * 32, 2),)
        )
        _, genesis_qc = make_genesis()
        store = BlockStore(genesis, genesis_qc)
        store.add_block(block)
        assert build_proof(store, block.id()) is None

    def test_no_proof_for_empty_log(self):
        registry = KeyRegistry(4)
        genesis, block, qc = certified_log_block(registry, 4, 3, commit_log=())
        _, genesis_qc = make_genesis()
        store = BlockStore(genesis, genesis_qc)
        store.add_block(block)
        store.record_qc(qc)
        assert build_proof(store, block.id()) is None

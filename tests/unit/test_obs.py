"""Unit coverage for the observability layer (repro.obs)."""

import json

import pytest

from repro.obs import (
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceEvent,
    TraceLog,
    Tracer,
    breakdown_from_trace,
    chrome_trace,
    validate_chrome_trace,
    write_flight_dump,
)
from repro.obs.trace import event_to_dict


class TestMetricsRegistry:
    def test_counter_get_or_create_identity(self):
        registry = MetricsRegistry()
        first = registry.counter("votes")
        first.inc()
        first.inc(3)
        assert registry.counter("votes") is first
        assert registry.counter("votes").value == 4

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_gauge_and_histogram(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(17.5)
        histogram = registry.histogram("latency")
        for value in (0.0005, 0.002, 0.002, 1.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.min == 0.0005
        assert histogram.max == 1.0
        assert histogram.mean() == pytest.approx(0.251125)
        assert histogram.buckets[0] == 1  # <= scale lands in bucket 0
        assert sum(histogram.buckets) == 4

    def test_snapshot_deterministic_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["a"] == 1
        assert snapshot["b"] == 2
        assert snapshot["h"]["count"] == 1
        # Byte-identical when serialized twice.
        assert json.dumps(snapshot) == json.dumps(registry.snapshot())

    def test_lookup_helpers(self):
        registry = MetricsRegistry()
        registry.counter("present")
        assert "present" in registry
        assert "absent" not in registry
        assert registry.get("absent") is None
        assert len(registry) == 1
        assert isinstance(registry.get("present"), Counter)


class TestTraceLog:
    def test_per_kind_index_survives_eviction(self):
        log = TraceLog(capacity=6)
        for index in range(12):
            kind = "a" if index % 3 else "b"
            log.record(float(index), index % 2, kind)
        assert len(log) == 6
        assert log.dropped == 6
        # The per-kind index must agree with a full-scan filter.
        retained = log.events()
        for kind in ("a", "b"):
            expected = [event for event in retained if event.kind == kind]
            assert log.events(kind=kind) == expected
        assert sum(log.kinds().values()) == 6

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_event_to_dict_omits_defaults(self):
        bare = event_to_dict(TraceEvent(time=1.5, replica_id=2, kind="round"))
        assert bare == {"t": 1.5, "replica": 2, "kind": "round"}
        rich = event_to_dict(
            TraceEvent(time=1.5, replica_id=2, kind="commit", round=7,
                       height=5, block="abc", value=2.0, count=3)
        )
        assert rich["round"] == 7
        assert rich["block"] == "abc"
        assert rich["value"] == 2.0
        assert rich["count"] == 3

    def test_tracer_fans_out_to_both_sinks(self):
        log = TraceLog()
        flight = FlightRecorder(capacity=4)
        tracer = Tracer(3, span_log=log, flight=flight, level="spans")
        tracer.emit(0.5, "vote", round=1, height=1, block="b1")
        assert len(log) == 1
        assert len(flight) == 1
        assert log.events()[0].replica_id == 3
        assert not tracer.full


class TestFlightRecorder:
    def test_ring_bounds_and_dropped(self):
        flight = FlightRecorder(capacity=3)
        for index in range(8):
            flight.append(TraceEvent(time=float(index), replica_id=0,
                                     kind="x"))
        assert len(flight) == 3
        assert flight.dropped == 5
        assert [event.time for event in flight.events()] == [5.0, 6.0, 7.0]

    def test_write_flight_dump_round_trips(self, tmp_path):
        recording = {
            "sim_time": 4.5,
            "violations": [{"invariant": "definition-1", "expected": False}],
            "replicas": {"0": {"crashed": False, "events": []}},
        }
        path = write_flight_dump(recording, tmp_path / "dump.json")
        assert json.loads(path.read_text()) == recording


def _lifecycle_log() -> TraceLog:
    """A hand-built span chain for two blocks on replica 0."""
    log = TraceLog()
    for index, block in enumerate(("aaaa", "bbbb")):
        base = 1.0 + index
        log.record(base, 0, "propose", round=index + 1, height=index + 1,
                   block=block, value=0.25, count=5)
        log.record(base + 0.1, 0, "qc", round=index + 1, height=index + 1,
                   block=block, count=3)
        log.record(base + 0.2, 0, "endorse", round=index + 1,
                   height=index + 1, block=block, value=1.0)
        log.record(base + 0.3, 0, "commit", round=index + 1,
                   height=index + 1, block=block)
    return log


class TestExport:
    def test_chrome_trace_schema_valid(self):
        data = chrome_trace(_lifecycle_log())
        assert validate_chrome_trace(data) == []
        assert data["displayTimeUnit"] == "ms"
        assert data["otherData"]["recorded_events"] == 8
        phases = {event["ph"] for event in data["traceEvents"]}
        assert phases == {"M", "i", "X"}

    def test_lifecycle_complete_events(self):
        data = chrome_trace(_lifecycle_log())
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        names = sorted(span["name"] for span in spans)
        assert names == [
            "propose→qc aaaa", "propose→qc bbbb",
            "qc→commit aaaa", "qc→commit bbbb",
        ]
        for span in spans:
            expected = 0.1e6 if span["name"].startswith("propose") else 0.2e6
            assert span["dur"] == pytest.approx(expected)

    def test_breakdown_from_trace(self):
        breakdown = breakdown_from_trace(_lifecycle_log(), 0)
        assert breakdown["proposal_to_qc_s"] == pytest.approx(0.1)
        assert breakdown["qc_to_endorse_s"] == pytest.approx(0.1)
        assert breakdown["endorse_to_commit_s"] == pytest.approx(0.1)
        assert breakdown["qc_to_commit_s"] == pytest.approx(0.2)
        assert breakdown["mempool_wait_s"] == pytest.approx(0.05)
        assert breakdown["mempool_wait_txs"] == 10
        assert breakdown["proposal_to_qc_samples"] == 2

    def test_validator_flags_malformed_events(self):
        assert validate_chrome_trace([]) == ["top level must be a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 1, "tid": 0},
                {"ph": "i", "pid": 1, "tid": 0, "ts": -5, "s": "q"},
                {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 1,
                 "dur": "oops"},
            ]
        }
        problems = validate_chrome_trace(bad)
        # bad ph; missing name + bad ts + bad scope; bad dur
        assert len(problems) == 5
        assert any("unexpected ph" in problem for problem in problems)
        assert any("bad dur" in problem for problem in problems)


class TestGaugeCounterBasics:
    def test_counter_inc(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_set(self):
        gauge = Gauge("g")
        gauge.set(3.25)
        assert gauge.value == 3.25

    def test_histogram_overflow_bucket(self):
        histogram = Histogram("h", scale=0.001, base=2.0, bucket_count=4)
        histogram.observe(10_000.0)  # far past the last bucket boundary
        assert histogram.buckets[-1] == 1

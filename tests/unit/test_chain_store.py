"""BlockStore: insertion, orphans, ancestry, certification queries."""

import pytest

from repro.types.block import Block, make_genesis
from repro.types.chain import ChainError
from tests.conftest import ChainBuilder


class TestInsertion:
    def test_genesis_present(self, builder):
        assert builder.genesis.id() in builder.store
        assert len(builder.store) == 1

    def test_add_and_lookup(self, builder):
        block = builder.block(builder.genesis, 1)
        assert builder.store.get(block.id()) is block

    def test_duplicate_add_is_noop(self, builder):
        block = builder.block(builder.genesis, 1)
        assert builder.store.add_block(block) == []
        assert len(builder.store) == 2

    def test_second_genesis_rejected(self, builder):
        # A *different* parentless block must be rejected (the stored
        # genesis itself deduplicates as a no-op).
        with pytest.raises(ChainError):
            builder.store.add_block(
                Block(parent_id=None, qc=None, round=0, height=0, proposer=5)
            )
        assert builder.store.add_block(builder.genesis) == []

    def test_height_must_extend_parent(self, builder):
        bad = Block(
            parent_id=builder.genesis.id(),
            qc=builder.genesis_qc,
            round=1,
            height=5,
            proposer=0,
        )
        with pytest.raises(ChainError):
            builder.store.add_block(bad)

    def test_round_must_exceed_parent(self, builder):
        block = builder.block(builder.genesis, 3)
        bad = Block(
            parent_id=block.id(),
            qc=None,
            round=3,
            height=block.height + 1,
            proposer=0,
        )
        with pytest.raises(ChainError):
            builder.store.add_block(bad)

    def test_unknown_block_lookup_raises(self, builder):
        genesis, _ = make_genesis()
        missing = Block(
            parent_id=genesis.id(), qc=None, round=9, height=1, proposer=0
        )
        with pytest.raises(ChainError):
            builder.store.get(missing.id())
        assert builder.store.maybe_get(missing.id()) is None


class TestOrphans:
    def test_orphan_buffered_then_flushed(self, builder):
        parent = Block(
            parent_id=builder.genesis.id(),
            qc=builder.genesis_qc,
            round=1,
            height=1,
            proposer=0,
        )
        child = Block(
            parent_id=parent.id(), qc=None, round=2, height=2, proposer=1
        )
        assert builder.store.add_block(child) == []
        assert child.id() not in builder.store
        assert builder.store.is_awaited(parent.id())
        inserted = builder.store.add_block(parent)
        assert [b.id() for b in inserted] == [parent.id(), child.id()]
        assert child.id() in builder.store
        assert not builder.store.is_awaited(parent.id())

    def test_orphan_chain_flushes_recursively(self, builder):
        a = Block(
            parent_id=builder.genesis.id(),
            qc=builder.genesis_qc,
            round=1,
            height=1,
            proposer=0,
        )
        b = Block(parent_id=a.id(), qc=None, round=2, height=2, proposer=0)
        c = Block(parent_id=b.id(), qc=None, round=3, height=3, proposer=0)
        builder.store.add_block(c)
        builder.store.add_block(b)
        assert builder.store.orphan_count() == 2
        inserted = builder.store.add_block(a)
        assert len(inserted) == 3
        assert builder.store.orphan_count() == 0

    def test_duplicate_orphan_not_buffered_twice(self, builder):
        parent = Block(
            parent_id=builder.genesis.id(),
            qc=builder.genesis_qc,
            round=1,
            height=1,
            proposer=0,
        )
        child = Block(parent_id=parent.id(), qc=None, round=2, height=2, proposer=0)
        builder.store.add_block(child)
        builder.store.add_block(child)
        assert builder.store.orphan_count() == 1


class TestAncestry:
    def test_self_is_ancestor(self, builder):
        block = builder.block(builder.genesis, 1)
        assert builder.store.is_ancestor(block.id(), block.id())

    def test_linear_chain_ancestry(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3, 4])
        assert builder.store.is_ancestor(blocks[0].id(), blocks[3].id())
        assert not builder.store.is_ancestor(blocks[3].id(), blocks[0].id())
        assert builder.store.is_ancestor(
            builder.genesis.id(), blocks[3].id()
        )

    def test_fork_blocks_conflict(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        right = builder.block(base, 3)
        assert builder.store.conflicts(left.id(), right.id())
        assert not builder.store.conflicts(base.id(), left.id())
        assert not builder.store.conflicts(left.id(), left.id())

    def test_common_ancestor_of_fork(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        left2 = builder.block(left, 3)
        right = builder.block(base, 4)
        ancestor = builder.store.common_ancestor(left2.id(), right.id())
        assert ancestor.id() == base.id()

    def test_common_ancestor_on_same_branch(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        ancestor = builder.store.common_ancestor(
            blocks[0].id(), blocks[2].id()
        )
        assert ancestor.id() == blocks[0].id()

    def test_ancestor_at_height(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        assert (
            builder.store.ancestor_at_height(blocks[2].id(), 1).id()
            == blocks[0].id()
        )
        with pytest.raises(ChainError):
            builder.store.ancestor_at_height(blocks[0].id(), 5)

    def test_path_to_genesis(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2])
        path = builder.store.path_to_genesis(blocks[1].id())
        assert [b.round for b in path] == [2, 1, 0]

    def test_iter_ancestors(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2])
        rounds = [b.round for b in builder.store.iter_ancestors(blocks[1].id())]
        assert rounds == [2, 1, 0]


class TestCertification:
    def test_record_qc_marks_certified(self, builder):
        block = builder.block(builder.genesis, 1)
        assert not builder.store.is_certified(block.id())
        builder.certify(block)
        assert builder.store.is_certified(block.id())

    def test_highest_certified_tracks_round(self, builder):
        low = builder.block(builder.genesis, 1)
        builder.certify(low)
        high = builder.block(low, 5)
        builder.certify(high)
        assert builder.store.highest_certified_block().id() == high.id()

    def test_qc_for_unknown_block_not_recorded(self, builder):
        genesis, _ = make_genesis()
        phantom = Block(
            parent_id=genesis.id(), qc=None, round=7, height=1, proposer=0
        )
        from repro.types.quorum_cert import QuorumCertificate

        qc = QuorumCertificate(
            block_id=phantom.id(), round=7, height=1, votes=()
        )
        assert not builder.store.record_qc(qc)

    def test_longest_certified_tips(self, builder):
        base = builder.block(builder.genesis, 1)
        builder.certify(base)
        left = builder.block(base, 2)
        builder.certify(left)
        right = builder.block(base, 3)
        builder.certify(right)
        tips = builder.store.longest_certified_tips()
        assert {tip.id() for tip in tips} == {left.id(), right.id()}
        assert builder.store.certified_chain_height() == 2

    def test_uncertified_blocks_not_tips(self, builder):
        base = builder.block(builder.genesis, 1)
        builder.certify(base)
        builder.block(base, 2)  # never certified
        tips = builder.store.longest_certified_tips()
        assert {tip.id() for tip in tips} == {base.id()}


class TestBlocksByRoundAndHeight:
    def test_equivocating_blocks_indexed_by_round(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        right = builder.block(base, 2, proposer=1)
        assert set(builder.store.blocks_at_round(2)) == {left.id(), right.id()}

    def test_blocks_at_height(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        right = builder.block(base, 3)
        assert set(builder.store.blocks_at_height(2)) == {
            left.id(),
            right.id(),
        }

    def test_children(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        right = builder.block(base, 3)
        assert set(builder.store.children(base.id())) == {
            left.id(),
            right.id(),
        }


def test_chain_builder_uses_distinct_payload_tags():
    chain_builder = ChainBuilder(f=1)
    a = chain_builder.block(chain_builder.genesis, 1)
    chain_builder2 = ChainBuilder(f=1)
    b = chain_builder2.block(chain_builder2.genesis, 1)
    assert a.id() == b.id()  # same tag sequence → deterministic tests

"""BlockStore: insertion, orphans, ancestry, certification, truncation."""

import pytest

from repro.types.block import Block, make_genesis
from repro.types.chain import BlockStore, ChainError
from tests.conftest import ChainBuilder


class TestInsertion:
    def test_genesis_present(self, builder):
        assert builder.genesis.id() in builder.store
        assert len(builder.store) == 1

    def test_add_and_lookup(self, builder):
        block = builder.block(builder.genesis, 1)
        assert builder.store.get(block.id()) is block

    def test_duplicate_add_is_noop(self, builder):
        block = builder.block(builder.genesis, 1)
        assert builder.store.add_block(block) == []
        assert len(builder.store) == 2

    def test_second_genesis_rejected(self, builder):
        # A *different* parentless block must be rejected (the stored
        # genesis itself deduplicates as a no-op).
        with pytest.raises(ChainError):
            builder.store.add_block(
                Block(parent_id=None, qc=None, round=0, height=0, proposer=5)
            )
        assert builder.store.add_block(builder.genesis) == []

    def test_height_must_extend_parent(self, builder):
        bad = Block(
            parent_id=builder.genesis.id(),
            qc=builder.genesis_qc,
            round=1,
            height=5,
            proposer=0,
        )
        with pytest.raises(ChainError):
            builder.store.add_block(bad)

    def test_round_must_exceed_parent(self, builder):
        block = builder.block(builder.genesis, 3)
        bad = Block(
            parent_id=block.id(),
            qc=None,
            round=3,
            height=block.height + 1,
            proposer=0,
        )
        with pytest.raises(ChainError):
            builder.store.add_block(bad)

    def test_unknown_block_lookup_raises(self, builder):
        genesis, _ = make_genesis()
        missing = Block(
            parent_id=genesis.id(), qc=None, round=9, height=1, proposer=0
        )
        with pytest.raises(ChainError):
            builder.store.get(missing.id())
        assert builder.store.maybe_get(missing.id()) is None


class TestOrphans:
    def test_orphan_buffered_then_flushed(self, builder):
        parent = Block(
            parent_id=builder.genesis.id(),
            qc=builder.genesis_qc,
            round=1,
            height=1,
            proposer=0,
        )
        child = Block(
            parent_id=parent.id(), qc=None, round=2, height=2, proposer=1
        )
        assert builder.store.add_block(child) == []
        assert child.id() not in builder.store
        assert builder.store.is_awaited(parent.id())
        inserted = builder.store.add_block(parent)
        assert [b.id() for b in inserted] == [parent.id(), child.id()]
        assert child.id() in builder.store
        assert not builder.store.is_awaited(parent.id())

    def test_orphan_chain_flushes_recursively(self, builder):
        a = Block(
            parent_id=builder.genesis.id(),
            qc=builder.genesis_qc,
            round=1,
            height=1,
            proposer=0,
        )
        b = Block(parent_id=a.id(), qc=None, round=2, height=2, proposer=0)
        c = Block(parent_id=b.id(), qc=None, round=3, height=3, proposer=0)
        builder.store.add_block(c)
        builder.store.add_block(b)
        assert builder.store.orphan_count() == 2
        inserted = builder.store.add_block(a)
        assert len(inserted) == 3
        assert builder.store.orphan_count() == 0

    def test_duplicate_orphan_not_buffered_twice(self, builder):
        parent = Block(
            parent_id=builder.genesis.id(),
            qc=builder.genesis_qc,
            round=1,
            height=1,
            proposer=0,
        )
        child = Block(parent_id=parent.id(), qc=None, round=2, height=2, proposer=0)
        builder.store.add_block(child)
        builder.store.add_block(child)
        assert builder.store.orphan_count() == 1


class TestAncestry:
    def test_self_is_ancestor(self, builder):
        block = builder.block(builder.genesis, 1)
        assert builder.store.is_ancestor(block.id(), block.id())

    def test_linear_chain_ancestry(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3, 4])
        assert builder.store.is_ancestor(blocks[0].id(), blocks[3].id())
        assert not builder.store.is_ancestor(blocks[3].id(), blocks[0].id())
        assert builder.store.is_ancestor(
            builder.genesis.id(), blocks[3].id()
        )

    def test_fork_blocks_conflict(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        right = builder.block(base, 3)
        assert builder.store.conflicts(left.id(), right.id())
        assert not builder.store.conflicts(base.id(), left.id())
        assert not builder.store.conflicts(left.id(), left.id())

    def test_common_ancestor_of_fork(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        left2 = builder.block(left, 3)
        right = builder.block(base, 4)
        ancestor = builder.store.common_ancestor(left2.id(), right.id())
        assert ancestor.id() == base.id()

    def test_common_ancestor_on_same_branch(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        ancestor = builder.store.common_ancestor(
            blocks[0].id(), blocks[2].id()
        )
        assert ancestor.id() == blocks[0].id()

    def test_ancestor_at_height(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2, 3])
        assert (
            builder.store.ancestor_at_height(blocks[2].id(), 1).id()
            == blocks[0].id()
        )
        with pytest.raises(ChainError):
            builder.store.ancestor_at_height(blocks[0].id(), 5)

    def test_path_to_genesis(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2])
        path = builder.store.path_to_genesis(blocks[1].id())
        assert [b.round for b in path] == [2, 1, 0]

    def test_iter_ancestors(self, builder):
        blocks = builder.chain(builder.genesis, [1, 2])
        rounds = [b.round for b in builder.store.iter_ancestors(blocks[1].id())]
        assert rounds == [2, 1, 0]


class TestCertification:
    def test_record_qc_marks_certified(self, builder):
        block = builder.block(builder.genesis, 1)
        assert not builder.store.is_certified(block.id())
        builder.certify(block)
        assert builder.store.is_certified(block.id())

    def test_highest_certified_tracks_round(self, builder):
        low = builder.block(builder.genesis, 1)
        builder.certify(low)
        high = builder.block(low, 5)
        builder.certify(high)
        assert builder.store.highest_certified_block().id() == high.id()

    def test_qc_for_unknown_block_not_recorded(self, builder):
        genesis, _ = make_genesis()
        phantom = Block(
            parent_id=genesis.id(), qc=None, round=7, height=1, proposer=0
        )
        from repro.types.quorum_cert import QuorumCertificate

        qc = QuorumCertificate(
            block_id=phantom.id(), round=7, height=1, votes=()
        )
        assert not builder.store.record_qc(qc)

    def test_longest_certified_tips(self, builder):
        base = builder.block(builder.genesis, 1)
        builder.certify(base)
        left = builder.block(base, 2)
        builder.certify(left)
        right = builder.block(base, 3)
        builder.certify(right)
        tips = builder.store.longest_certified_tips()
        assert {tip.id() for tip in tips} == {left.id(), right.id()}
        assert builder.store.certified_chain_height() == 2

    def test_uncertified_blocks_not_tips(self, builder):
        base = builder.block(builder.genesis, 1)
        builder.certify(base)
        builder.block(base, 2)  # never certified
        tips = builder.store.longest_certified_tips()
        assert {tip.id() for tip in tips} == {base.id()}


class TestBlocksByRoundAndHeight:
    def test_equivocating_blocks_indexed_by_round(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        right = builder.block(base, 2, proposer=1)
        assert set(builder.store.blocks_at_round(2)) == {left.id(), right.id()}

    def test_blocks_at_height(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        right = builder.block(base, 3)
        assert set(builder.store.blocks_at_height(2)) == {
            left.id(),
            right.id(),
        }

    def test_children(self, builder):
        base = builder.block(builder.genesis, 1)
        left = builder.block(base, 2)
        right = builder.block(base, 3)
        assert set(builder.store.children(base.id())) == {
            left.id(),
            right.id(),
        }


class TestOrphanCap:
    def _orphan(self, round_number: int, proposer: int = 0) -> Block:
        # Parentless relative to the store: each orphan hangs off a
        # made-up parent that never arrives.
        phantom = Block(
            parent_id=None, qc=None, round=round_number, height=0,
            proposer=proposer + 7,
        )
        return Block(
            parent_id=phantom.id(),
            qc=None,
            round=round_number,
            height=round_number,
            proposer=proposer,
        )

    def test_flood_cannot_exceed_cap(self):
        genesis, genesis_qc = make_genesis()
        store = BlockStore(genesis, genesis_qc, max_orphans=8)
        for round_number in range(1, 100):
            store.add_block(self._orphan(round_number))
            assert store.orphan_count() <= 8
        assert store.orphan_count() == 8

    def test_eviction_is_oldest_round_first(self):
        genesis, genesis_qc = make_genesis()
        store = BlockStore(genesis, genesis_qc, max_orphans=3)
        old = self._orphan(1)
        store.add_block(old)
        for round_number in (5, 6, 7):
            store.add_block(self._orphan(round_number))
        # The round-1 orphan was the eviction victim; its parent is no
        # longer awaited while the newer parents still are.
        assert not store.is_awaited(old.parent_id)
        assert store.orphan_count() == 3

    def test_oldest_candidate_is_dropped_not_buffered(self):
        genesis, genesis_qc = make_genesis()
        store = BlockStore(genesis, genesis_qc, max_orphans=2)
        for round_number in (5, 6):
            store.add_block(self._orphan(round_number))
        stale = self._orphan(1)
        store.add_block(stale)
        assert not store.is_awaited(stale.parent_id)
        assert store.orphan_count() == 2

    def test_cap_must_be_positive(self):
        genesis, genesis_qc = make_genesis()
        with pytest.raises(ChainError):
            BlockStore(genesis, genesis_qc, max_orphans=0)


class TestTruncation:
    def _forked_store(self, builder):
        """genesis → a → b → c → d plus a fork sibling off ``a``."""
        a = builder.block(builder.genesis, 1)
        fork = builder.block(a, 2, proposer=3)
        b = builder.block(a, 3)
        c = builder.block(b, 4)
        d = builder.block(c, 5)
        return a, fork, b, c, d

    def test_truncate_keeps_root_and_descendants(self, builder):
        a, fork, b, c, d = self._forked_store(builder)
        pruned = builder.store.truncate_below(b.id())
        assert pruned == {builder.genesis.id(), a.id(), fork.id()}
        for survivor in (b, c, d):
            assert survivor.id() in builder.store
        assert builder.store.root_block().id() == b.id()
        assert builder.store.truncated_height == b.height - 1

    def test_truncation_never_removes_at_or_above_root(self, builder):
        # Property over every choice of checkpoint block on the main
        # chain: pruned ids and surviving ids partition the store, and
        # nothing at or above the root's height on its own subtree is
        # ever pruned.
        blocks = [builder.block(builder.genesis, 1)]
        for round_number in range(2, 8):
            blocks.append(builder.block(blocks[-1], round_number))
        for root in blocks[1:]:
            fresh = ChainBuilder(f=1)
            chain = [fresh.block(fresh.genesis, 1)]
            for round_number in range(2, 8):
                chain.append(fresh.block(chain[-1], round_number))
            target = chain[blocks.index(root)]
            pruned = fresh.store.truncate_below(target.id())
            descendants = {
                block.id() for block in chain if block.height >= target.height
            }
            assert descendants & pruned == set()
            assert all(block_id in fresh.store for block_id in descendants)

    def test_iter_children_intact_after_truncation(self, builder):
        _a, _fork, b, c, d = self._forked_store(builder)
        builder.store.truncate_below(b.id())
        assert set(builder.store.children(b.id())) == {c.id()}
        assert set(builder.store.children(c.id())) == {d.id()}
        # And the surviving suffix still extends normally.
        e = builder.block(d, 6)
        assert set(builder.store.children(d.id())) == {e.id()}

    def test_orphans_reattach_above_truncation(self, builder):
        a, _fork, b, c, _d = self._forked_store(builder)
        missing = Block(
            parent_id=c.id(), qc=None, round=6, height=c.height + 1, proposer=0
        )
        orphan = Block(
            parent_id=missing.id(), qc=None, round=7, height=missing.height + 1,
            proposer=0,
        )
        builder.store.add_block(orphan)
        builder.store.truncate_below(b.id())
        # The orphan sits above the checkpoint: still awaited, and it
        # flushes when its parent finally arrives.
        assert builder.store.is_awaited(missing.id())
        inserted = builder.store.add_block(missing)
        assert {block.id() for block in inserted} == {missing.id(), orphan.id()}

    def test_stale_orphans_dropped_by_truncation(self, builder):
        a, _fork, b, _c, _d = self._forked_store(builder)
        phantom = Block(parent_id=None, qc=None, round=1, height=0, proposer=9)
        stale = Block(
            parent_id=phantom.id(), qc=None, round=2, height=1, proposer=2
        )
        builder.store.add_block(stale)
        assert builder.store.orphan_count() == 1
        builder.store.truncate_below(b.id())
        assert builder.store.orphan_count() == 0
        # Late arrivals from pruned history are dropped, not buffered.
        builder.store.add_block(stale)
        assert builder.store.orphan_count() == 0

    def test_no_prune_truncation_still_sweeps_stale_orphans(self, builder):
        # White-box: a boundary that lags the physical root — the state
        # a skipped sweep would otherwise leave behind.  Re-truncating
        # at the root prunes nothing, but the boundary raise must still
        # sweep orphans that can never re-attach.
        _a, _fork, b, _c, _d = self._forked_store(builder)
        builder.store.truncate_below(b.id())
        builder.store.truncated_height = -1
        phantom = Block(parent_id=None, qc=None, round=1, height=0, proposer=9)
        stale = Block(
            parent_id=phantom.id(), qc=None, round=2, height=1, proposer=2
        )
        builder.store.add_block(stale)
        assert builder.store.orphan_count() == 1
        pruned = builder.store.truncate_below(b.id())
        assert pruned == frozenset()
        assert builder.store.truncated_height == b.height - 1
        assert builder.store.orphan_count() == 0

    def test_no_prune_truncation_keeps_live_orphans(self, builder):
        _a, _fork, b, c, _d = self._forked_store(builder)
        builder.store.truncate_below(b.id())
        missing = Block(
            parent_id=c.id(), qc=None, round=6, height=c.height + 1, proposer=0
        )
        orphan = Block(
            parent_id=missing.id(), qc=None, round=7,
            height=missing.height + 1, proposer=0,
        )
        builder.store.add_block(orphan)
        pruned = builder.store.truncate_below(b.id())
        assert pruned == frozenset()
        assert builder.store.is_awaited(missing.id())
        assert builder.store.orphan_count() == 1

    def test_peak_live_blocks_high_water_mark(self, builder):
        a, _fork, b, _c, _d = self._forked_store(builder)
        peak_before = builder.store.peak_live_blocks
        assert peak_before == 6  # genesis + 5
        builder.store.truncate_below(b.id())
        assert len(builder.store) == 3
        assert builder.store.peak_live_blocks == peak_before


class TestAdoptRoot:
    def test_adopt_unknown_root_truncates_everything_else(self, builder):
        a = builder.block(builder.genesis, 1)
        b = builder.block(a, 2)
        # A checkpoint block from a chain this store never saw.
        foreign = Block(
            parent_id=b.id(), qc=None, round=9, height=b.height + 1, proposer=1
        )
        distant = Block(
            parent_id=foreign.id(), qc=None, round=10, height=foreign.height + 1,
            proposer=2,
        )
        pruned, flushed = builder.store.adopt_root(distant)
        assert distant.id() in builder.store
        assert builder.store.root_block().id() == distant.id()
        # Only blocks the store actually held get pruned; the foreign
        # parent was never stored in the first place.
        assert pruned == {builder.genesis.id(), a.id(), b.id()}
        assert flushed == []

    def test_adopt_root_flushes_waiting_orphans(self, builder):
        a = builder.block(builder.genesis, 1)
        root = Block(
            parent_id=a.id(), qc=None, round=5, height=a.height + 1, proposer=0
        )
        child = Block(
            parent_id=root.id(), qc=None, round=6, height=root.height + 1,
            proposer=0,
        )
        builder.store.add_block(child)  # orphan: parent not stored yet
        pruned, flushed = builder.store.adopt_root(root)
        assert [block.id() for block in flushed] == [child.id()]
        assert child.id() in builder.store
        assert builder.genesis.id() in pruned

    def test_adopt_existing_root_is_plain_truncation(self, builder):
        a = builder.block(builder.genesis, 1)
        b = builder.block(a, 2)
        pruned, flushed = builder.store.adopt_root(b)
        assert pruned == {builder.genesis.id(), a.id()}
        assert flushed == []
        assert builder.store.root_block().id() == b.id()


def test_chain_builder_uses_distinct_payload_tags():
    chain_builder = ChainBuilder(f=1)
    a = chain_builder.block(chain_builder.genesis, 1)
    chain_builder2 = ChainBuilder(f=1)
    b = chain_builder2.block(chain_builder2.genesis, 1)
    assert a.id() == b.id()  # same tag sequence → deterministic tests

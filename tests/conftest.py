"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro.crypto.registry import KeyRegistry
from repro.types.block import Block, make_genesis
from repro.types.chain import BlockStore
from repro.types.quorum_cert import QuorumCertificate
from repro.types.transaction import Payload, TxBatch
from repro.types.vote import StrongVote, Vote


class ChainBuilder:
    """Constructs block trees directly against a BlockStore.

    Unit tests for the SFT core need precise control over rounds,
    heights, forks, voters and markers without running a network; this
    builder provides that with one-liners.
    """

    def __init__(self, f: int = 1) -> None:
        self.f = f
        self.n = 3 * f + 1
        genesis, genesis_qc = make_genesis()
        self.genesis = genesis
        self.genesis_qc = genesis_qc
        self.store = BlockStore(genesis, genesis_qc)
        self._tags = 0

    def quorum(self) -> int:
        return 2 * self.f + 1

    def block(
        self,
        parent: Block,
        round_number: int,
        proposer: int = 0,
        created_at: float = 0.0,
    ) -> Block:
        """Create and store a block extending ``parent``."""
        self._tags += 1
        parent_qc = self.store.qc_for(parent.id())
        block = Block(
            parent_id=parent.id(),
            qc=parent_qc,
            round=round_number,
            height=parent.height + 1,
            proposer=proposer,
            payload=Payload(batch=TxBatch(count=1, size_bytes=64, tag=self._tags)),
            created_at=created_at,
        )
        self.store.add_block(block)
        return block

    def vote(self, block: Block, voter: int, marker: int = 0, intervals=()) -> StrongVote:
        return StrongVote(
            block_id=block.id(),
            block_round=block.round,
            height=block.height,
            voter=voter,
            marker=marker,
            intervals=tuple(intervals),
        )

    def plain_vote(self, block: Block, voter: int) -> Vote:
        return Vote(
            block_id=block.id(),
            block_round=block.round,
            height=block.height,
            voter=voter,
        )

    def certify(self, block: Block, voters=None, markers=None) -> QuorumCertificate:
        """Create, record, and return a QC for ``block``.

        ``markers`` maps voter id to marker (default 0 for everyone).
        """
        if voters is None:
            voters = range(self.quorum())
        markers = markers or {}
        votes = tuple(
            self.vote(block, voter, marker=markers.get(voter, 0))
            for voter in voters
        )
        qc = QuorumCertificate(
            block_id=block.id(),
            round=block.round,
            height=block.height,
            votes=votes,
        )
        self.store.record_qc(qc)
        return qc

    def chain(self, parent: Block, rounds) -> list:
        """Extend ``parent`` with one block per round number, certifying each."""
        blocks = []
        cursor = parent
        for round_number in rounds:
            block = self.block(cursor, round_number)
            self.certify(block)
            blocks.append(block)
            cursor = block
        return blocks


@pytest.fixture
def builder() -> ChainBuilder:
    return ChainBuilder(f=1)


@pytest.fixture
def builder_f2() -> ChainBuilder:
    return ChainBuilder(f=2)


@pytest.fixture
def registry() -> KeyRegistry:
    return KeyRegistry(4)


def small_experiment(**overrides):
    """A fast SFT-DiemBFT experiment config for integration tests."""
    from repro.runtime.config import ExperimentConfig

    defaults = dict(
        protocol="sft-diembft",
        n=7,
        topology="uniform",
        uniform_delay=0.01,
        jitter=0.002,
        duration=8.0,
        round_timeout=0.5,
        seed=42,
        block_batch_count=10,
        block_batch_bytes=1_000,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)

"""Randomized fault-injection runs: safety must always hold.

Each example draws a fault configuration (crashes, silent replicas,
equivocating or withholding leaders, a partition window) and runs a
short SFT-DiemBFT cluster.  BFT SMR safety (no conflicting commits)
and the SFT strong-safety condition (Definition 1) are asserted over
the honest replicas.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import (
    make_equivocating_leader,
    make_silent,
    make_withholding_leader,
)
from repro.protocols.sft_diembft import SFTDiemBFTReplica
from repro.runtime.config import build_cluster
from repro.runtime.metrics import (
    check_commit_safety,
    strong_commit_safety_violations,
)
from tests.conftest import small_experiment

BEHAVIOURS = (None, "silent", "equivocate", "withhold")


@st.composite
def fault_plans(draw):
    # Up to f = 2 faulty replicas out of n = 7.
    faulty_count = draw(st.integers(0, 2))
    faulty = draw(
        st.lists(
            st.integers(0, 6),
            min_size=faulty_count,
            max_size=faulty_count,
            unique=True,
        )
    )
    behaviours = [
        draw(st.sampled_from(["crash", "silent", "equivocate", "withhold"]))
        for _ in faulty
    ]
    partition = draw(st.booleans())
    seed = draw(st.integers(0, 2**16))
    return tuple(zip(faulty, behaviours)), partition, seed


@given(fault_plans())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_safety_under_random_faults(plan):
    faults, partition, seed = plan
    crash_schedule = tuple(
        (replica_id, 1.0)
        for replica_id, behaviour in faults
        if behaviour == "crash"
    )
    config = small_experiment(
        duration=6.0, seed=seed, round_timeout=0.4, crash_schedule=crash_schedule
    )
    overrides = {}
    for replica_id, behaviour in faults:
        if behaviour == "silent":
            overrides[replica_id] = make_silent(SFTDiemBFTReplica)
        elif behaviour == "equivocate":
            overrides[replica_id] = make_equivocating_leader(SFTDiemBFTReplica)
        elif behaviour == "withhold":
            overrides[replica_id] = make_withholding_leader(
                SFTDiemBFTReplica, reach=0.5
            )
    cluster = build_cluster(config)
    cluster.build(replica_overrides=overrides)
    if partition:
        cluster.network.add_partition(
            [(0, 1, 2, 3), (4, 5, 6)], start=1.0, end=3.0
        )
    cluster.run()

    byzantine_ids = {replica_id for replica_id, _ in faults}
    honest = [
        replica
        for replica in cluster.replicas
        if replica.replica_id not in byzantine_ids and not replica.crashed
    ]
    # BFT SMR safety: t <= f always holds here.
    check_commit_safety(honest)
    # SFT safety (Definition 1) at the actual fault count.
    violations = strong_commit_safety_violations(honest, len(byzantine_ids))
    assert violations == []


@given(st.integers(0, 2**16))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fault_free_runs_always_reach_2f(seed):
    config = small_experiment(duration=6.0, seed=seed)
    cluster = build_cluster(config).run()
    check_commit_safety(cluster.replicas)
    f = cluster.config.resolved_f()
    best = max(
        (
            timeline.current
            for replica in cluster.replicas
            for _, timeline in replica.commit_tracker.timelines()
        ),
        default=-1,
    )
    assert best == 2 * f

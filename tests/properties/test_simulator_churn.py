"""Simulator heap compaction and TimerHandle accounting under churn.

A random interleaving of schedule / schedule_fire / cancel /
run-forward operations is mirrored against a trivial reference model
(a list of ``(time, seq)`` records).  Throughout the run:

* ``pending()`` is exact — queue length minus cancelled count always
  equals the model's live-event count (no cancelled-entry leak in the
  accounting);
* right after any cancellation, compaction keeps cancelled entries a
  minority of the heap;
* the executed event order matches the model's ``(time, seq)`` order
  exactly — cancellation and compaction never perturb scheduling.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.simulator import Simulator


class ChurnModel:
    """Reference bookkeeping for one churn run."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.simulator = Simulator()
        self.fired: list[int] = []
        self.records: dict[int, tuple] = {}  # key -> (time, seq)
        self.handles: dict[int, object] = {}  # cancellable, not yet fired
        self.fire_only: set[int] = set()  # scheduled via schedule_fire
        self.cancelled: set[int] = set()
        self.next_key = 0
        self.seq = 0

    # -- operations ----------------------------------------------------

    def schedule(self, cancellable: bool) -> None:
        key = self.next_key
        self.next_key += 1
        self.seq += 1
        time = self.simulator.now + self.rng.uniform(0.0, 10.0)
        self.records[key] = (time, self.seq)
        if cancellable:
            self.handles[key] = self.simulator.schedule_at(
                time, self.fired.append, key
            )
        else:
            self.fire_only.add(key)
            self.simulator.schedule_fire(time, self.fired.append, key)

    def cancel_one(self) -> bool:
        candidates = [
            key for key in self.handles
            if key not in self.cancelled and key not in set(self.fired)
        ]
        if not candidates:
            return False
        key = self.rng.choice(candidates)
        self.handles[key].cancel()
        self.cancelled.add(key)
        return True

    def cancel_fired(self) -> None:
        """Cancelling an already-fired handle must be a no-op."""
        candidates = [key for key in self.fired if key in self.handles]
        if candidates:
            self.handles[self.rng.choice(candidates)].cancel()

    def advance(self) -> None:
        self.simulator.run_until(
            self.simulator.now + self.rng.uniform(0.0, 4.0)
        )

    # -- invariants ----------------------------------------------------

    def live_keys(self) -> set:
        fired = set(self.fired)
        return {
            key for key in self.records
            if key not in fired and key not in self.cancelled
        }

    def assert_pending_exact(self) -> None:
        expected = len(self.live_keys())
        assert self.simulator.pending() == expected
        queue = self.simulator._queue
        assert len(queue) - self.simulator._cancelled == expected

    def assert_compacted(self) -> None:
        # _note_cancellation compacts once cancelled entries outnumber
        # live ones, so right after an actual cancellation they are a
        # minority.  (Pops of live events can temporarily skew the
        # ratio between cancellations; the next cancel restores it.)
        queue_len = len(self.simulator._queue)
        assert self.simulator._cancelled * 2 <= queue_len or queue_len == 0

    def expected_order(self) -> list:
        return [
            key for key, _ in sorted(
                (
                    (key, self.records[key])
                    for key in self.records
                    if key not in self.cancelled
                ),
                key=lambda item: item[1],
            )
        ]

    def drain(self) -> None:
        self.simulator.run_until(self.simulator.now + 100.0)


def run_churn(seed: int, steps: int = 400) -> ChurnModel:
    model = ChurnModel(seed)
    for _ in range(steps):
        op = model.rng.random()
        if op < 0.40:
            model.schedule(cancellable=True)
        elif op < 0.55:
            model.schedule(cancellable=False)
        elif op < 0.80:
            if model.cancel_one():
                model.assert_compacted()
        elif op < 0.85:
            model.cancel_fired()
        else:
            model.advance()
        model.assert_pending_exact()
    model.drain()
    return model


class TestChurnProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_event_order_and_accounting_under_churn(self, seed):
        model = run_churn(seed)
        assert model.fired == model.expected_order()
        assert model.simulator.pending() == 0
        assert model.simulator._queue == []
        assert model.simulator._cancelled == 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_seeds_preserve_order(self, seed):
        model = run_churn(seed, steps=120)
        assert model.fired == model.expected_order()

    def test_cancelled_majority_compacts_during_churn(self):
        simulator = Simulator()
        fired = []
        for round_number in range(1, 3000):
            handle = simulator.schedule_at(
                float(round_number), fired.append, round_number
            )
            # Mix in fire-and-forget deliveries like the network does.
            simulator.schedule_fire(
                float(round_number) + 0.5, fired.append, -round_number
            )
            handle.cancel()
            # One live fire entry per iteration stays; cancelled
            # cancellable entries never accumulate past the live count.
            assert simulator._cancelled * 2 <= len(simulator._queue)
        assert simulator.pending() == 2999
        simulator.run_until(10_000.0)
        assert fired == [-round_number for round_number in range(1, 3000)]

    def test_events_processed_counts_live_events_only(self):
        model = run_churn(3, steps=200)
        assert model.simulator.events_processed == len(model.fired)

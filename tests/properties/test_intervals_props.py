"""IntervalSet vs a reference model (Python sets over a small domain)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet

DOMAIN_MAX = 40

pair = st.tuples(
    st.integers(0, DOMAIN_MAX), st.integers(0, DOMAIN_MAX)
)
pairs = st.lists(pair, max_size=8)


def to_model(interval_set: IntervalSet) -> set:
    return set(interval_set.iter_values())


def model_of_pairs(raw) -> set:
    values = set()
    for lo, hi in raw:
        values.update(range(lo, hi + 1))
    return values


class TestModelEquivalence:
    @given(pairs)
    def test_construction_matches_model(self, raw):
        assert to_model(IntervalSet.from_pairs(raw)) == model_of_pairs(raw)

    @given(pairs, pairs)
    def test_union(self, raw_a, raw_b):
        a, b = IntervalSet.from_pairs(raw_a), IntervalSet.from_pairs(raw_b)
        assert to_model(a.union(b)) == model_of_pairs(raw_a) | model_of_pairs(
            raw_b
        )

    @given(pairs, pairs)
    def test_intersection(self, raw_a, raw_b):
        a, b = IntervalSet.from_pairs(raw_a), IntervalSet.from_pairs(raw_b)
        assert to_model(a.intersection(b)) == model_of_pairs(
            raw_a
        ) & model_of_pairs(raw_b)

    @given(pairs, pairs)
    def test_subtract(self, raw_a, raw_b):
        a, b = IntervalSet.from_pairs(raw_a), IntervalSet.from_pairs(raw_b)
        assert to_model(a.subtract(b)) == model_of_pairs(
            raw_a
        ) - model_of_pairs(raw_b)

    @given(pairs, pairs)
    def test_issubset(self, raw_a, raw_b):
        a, b = IntervalSet.from_pairs(raw_a), IntervalSet.from_pairs(raw_b)
        assert a.issubset(b) == model_of_pairs(raw_a).issubset(
            model_of_pairs(raw_b)
        )

    @given(pairs, st.integers(-5, DOMAIN_MAX + 5))
    def test_membership(self, raw, value):
        interval_set = IntervalSet.from_pairs(raw)
        assert (value in interval_set) == (value in model_of_pairs(raw))

    @given(pairs, st.integers(0, DOMAIN_MAX), st.integers(0, DOMAIN_MAX))
    def test_clamp(self, raw, lo, hi):
        interval_set = IntervalSet.from_pairs(raw)
        clamped = interval_set.clamp(lo, hi)
        expected = {v for v in model_of_pairs(raw) if lo <= v <= hi}
        assert to_model(clamped) == expected


class TestInvariants:
    @given(pairs)
    def test_normalization_disjoint_sorted_nonadjacent(self, raw):
        normalized = IntervalSet.from_pairs(raw).pairs()
        for lo, hi in normalized:
            assert lo <= hi
        for (_lo1, hi1), (lo2, _hi2) in zip(normalized, normalized[1:]):
            assert hi1 + 1 < lo2

    @given(pairs)
    def test_count_matches_model(self, raw):
        assert IntervalSet.from_pairs(raw).count() == len(model_of_pairs(raw))

    @given(pairs, pairs)
    @settings(max_examples=50)
    def test_demorgan_within_domain(self, raw_a, raw_b):
        universe = IntervalSet.single(0, DOMAIN_MAX)
        a = IntervalSet.from_pairs(raw_a).intersection(universe)
        b = IntervalSet.from_pairs(raw_b).intersection(universe)
        left = universe.subtract(a.union(b))
        right = universe.subtract(a).intersection(universe.subtract(b))
        assert left == right

    @given(pairs)
    def test_canonical_representation_equality(self, raw):
        a = IntervalSet.from_pairs(raw)
        b = IntervalSet.from_pairs(tuple(reversed(raw)))
        assert a == b
        assert hash(a) == hash(b)

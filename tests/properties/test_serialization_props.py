"""Canonical serialization injectivity over random values.

The property: two values encode to the same bytes iff they are equal
under the encoding's declared semantics (lists ≡ tuples, bool ≢ int,
str ≢ bytes).  This catches the classic canonical-encoding failure
modes — boundary ambiguity between adjacent fields and missing type
tags — without re-deriving the encoder.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.serialization import canonical_bytes

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**64), 2**64),
    st.text(max_size=12),
    st.binary(max_size=12),
)

values = st.recursive(
    scalars,
    lambda children: st.lists(children, max_size=3).map(tuple)
    | st.lists(children, max_size=3),
    max_leaves=8,
)


def canon(value):
    """Type-tagged normal form matching the encoding's semantics."""
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canon(item) for item in value))
    if value is None:
        return ("none",)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, str):
        return ("str", value)
    return ("bytes", bytes(value))


class TestInjectivity:
    @given(values, values)
    @settings(max_examples=300)
    def test_equal_bytes_iff_equal_canonical_values(self, a, b):
        assert (canonical_bytes(a) == canonical_bytes(b)) == (
            canon(a) == canon(b)
        )

    @given(values)
    @settings(max_examples=200)
    def test_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)

    @given(st.lists(scalars, max_size=4), st.lists(scalars, max_size=4))
    @settings(max_examples=300)
    def test_field_tuples_injective(self, fields_a, fields_b):
        encoded_equal = canonical_bytes(*fields_a) == canonical_bytes(*fields_b)
        assert encoded_equal == (canon(fields_a) == canon(fields_b))

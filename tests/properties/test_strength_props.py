"""Strength propagation vs a brute-force oracle.

The CommitTracker computes per-block strength incrementally (listener
updates + ancestor propagation).  The oracle recomputes from scratch:
for every consecutive-round certified 3-chain, strength =
min(endorser counts) − f − 1, and a block's strength is the max over
the 3-chains of its descendants-or-self.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commit_rules import CommitTracker
from repro.core.endorsement import EndorsementTracker
from repro.core.resilience import max_strength
from tests.conftest import ChainBuilder


@st.composite
def certified_forests(draw):
    """A random certified tree plus random per-QC voter subsets."""
    f = draw(st.integers(1, 2))
    n = 3 * f + 1
    quorum = 2 * f + 1
    size = draw(st.integers(3, 10))
    parents = []
    for index in range(size):
        # Bias towards chain-shape so consecutive-round triples exist.
        if index == 0 or draw(st.integers(0, 3)) > 0:
            parents.append(index - 1)
        else:
            parents.append(draw(st.integers(-1, index - 1)))
    voter_sets = []
    for _ in range(size):
        extra = draw(st.integers(0, n - quorum))
        voters = draw(
            st.lists(
                st.integers(0, n - 1),
                min_size=quorum + extra,
                max_size=quorum + extra,
                unique=True,
            )
        )
        voter_sets.append(tuple(voters))
    return f, parents, voter_sets


def oracle_strength(builder, endorsement, f):
    """Recompute every block's strength from scratch."""
    store = builder.store
    strengths = {block.id(): -1 for block in store.all_blocks()}
    for block in store.all_blocks():
        parent = store.parent(block.id())
        grand = store.parent(parent.id()) if parent is not None else None
        if parent is None or grand is None:
            continue
        if block.round != parent.round + 1 or parent.round != grand.round + 1:
            continue
        if not (
            store.is_certified(block.id())
            and store.is_certified(parent.id())
            and store.is_certified(grand.id())
        ):
            continue
        counts = (
            endorsement.count(grand.id()),
            endorsement.count(parent.id()),
            endorsement.count(block.id()),
        )
        strength = min(min(counts) - f - 1, max_strength(f))
        if strength < f:
            continue
        # Propagate to the head and all its ancestors.
        cursor = grand
        while cursor is not None:
            block_id = cursor.id()
            strengths[block_id] = max(strengths[block_id], strength)
            if cursor.parent_id is None:
                break
            cursor = store.maybe_get(cursor.parent_id)
    return strengths


class TestStrengthPropagation:
    @given(certified_forests())
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_oracle(self, scenario):
        f, parents, voter_sets = scenario
        builder = ChainBuilder(f=f)
        endorsement = EndorsementTracker(builder.store, mode="round")
        tracker = CommitTracker(
            builder.store, f=f, rule="diembft", endorsement=endorsement
        )
        blocks = []
        for index, parent_index in enumerate(parents):
            parent = builder.genesis if parent_index < 0 else blocks[parent_index]
            block = builder.block(parent, round_number=index + 1)
            blocks.append(block)
            qc = builder.certify(block, voters=voter_sets[index])
            endorsement.add_strong_qc(qc, now=float(index))
            tracker.on_new_qc(qc, now=float(index))

        expected = oracle_strength(builder, endorsement, f)
        for block in builder.store.all_blocks():
            assert tracker.strength_of(block.id()) == expected[block.id()], (
                f"round {block.round}"
            )

    @given(certified_forests())
    @settings(max_examples=40, deadline=None)
    def test_strength_monotone_in_time(self, scenario):
        f, parents, voter_sets = scenario
        builder = ChainBuilder(f=f)
        endorsement = EndorsementTracker(builder.store, mode="round")
        tracker = CommitTracker(
            builder.store, f=f, rule="diembft", endorsement=endorsement
        )
        blocks = []
        previous: dict = {}
        for index, parent_index in enumerate(parents):
            parent = builder.genesis if parent_index < 0 else blocks[parent_index]
            block = builder.block(parent, round_number=index + 1)
            blocks.append(block)
            qc = builder.certify(block, voters=voter_sets[index])
            endorsement.add_strong_qc(qc, now=float(index))
            tracker.on_new_qc(qc, now=float(index))
            for known in blocks:
                current = tracker.strength_of(known.id())
                assert current >= previous.get(known.id(), -1)
                previous[known.id()] = current

    @given(certified_forests())
    @settings(max_examples=40, deadline=None)
    def test_ancestor_strength_dominates(self, scenario):
        # x-strong commit of a block strong-commits all ancestors, so a
        # parent's strength is always >= each child's.
        f, parents, voter_sets = scenario
        builder = ChainBuilder(f=f)
        endorsement = EndorsementTracker(builder.store, mode="round")
        tracker = CommitTracker(
            builder.store, f=f, rule="diembft", endorsement=endorsement
        )
        blocks = []
        for index, parent_index in enumerate(parents):
            parent = builder.genesis if parent_index < 0 else blocks[parent_index]
            block = builder.block(parent, round_number=index + 1)
            blocks.append(block)
            qc = builder.certify(block, voters=voter_sets[index])
            endorsement.add_strong_qc(qc, now=float(index))
            tracker.on_new_qc(qc, now=float(index))
        for block in blocks:
            parent = builder.store.parent(block.id())
            if parent is None:
                continue
            assert tracker.strength_of(parent.id()) >= tracker.strength_of(
                block.id()
            )

"""Wire-codec round-trip properties for the real-network runtime.

The property: every message type that can appear on the TCP wire
survives encode → frame → stream-reassemble → decode unchanged, for
*arbitrary* field values — and because the dataclasses compare on
their semantic fields, signing payloads and therefore HMAC signatures
stay valid across the trip.  A codec bug that survives these tests
would have to conspire with the generator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import HashDigest
from repro.crypto.registry import KeyRegistry
from repro.crypto.signatures import Signature
from repro.rt_net.codec import (
    WIRE_TYPES,
    FrameDecoder,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.types.block import Block
from repro.types.messages import (
    CheckpointMsg,
    ClientReplyMsg,
    ClientRequestMsg,
    EchoMsg,
    ExtraVotesMsg,
    Message,
    NewRoundMsg,
    ProposalMsg,
    QCMsg,
    SnapshotRequestMsg,
    SnapshotResponseMsg,
    SyncRequestMsg,
    SyncResponseMsg,
    TimeoutMsg,
    VoteMsg,
)
from repro.types.quorum_cert import QuorumCertificate, TimeoutCertificate
from repro.types.transaction import Payload, Transaction, TxBatch
from repro.types.vote import StrongVote, Vote

# ----------------------------------------------------------------------
# strategies: realistic-but-arbitrary wire values
# ----------------------------------------------------------------------

senders = st.integers(0, 63)
rounds = st.integers(0, 2**31)
times = st.floats(0, 1e6, allow_nan=False, allow_infinity=False)
digests = st.binary(min_size=32, max_size=32).map(HashDigest)
signatures = st.builds(
    Signature, signer=senders, value=st.binary(min_size=32, max_size=32)
)
maybe_signature = st.none() | signatures

intervals = st.lists(
    st.tuples(rounds, rounds), max_size=3
).map(tuple)

plain_votes = st.builds(
    Vote,
    block_id=digests,
    block_round=rounds,
    height=rounds,
    voter=senders,
    signature=maybe_signature,
)
strong_votes = st.builds(
    StrongVote,
    block_id=digests,
    block_round=rounds,
    height=rounds,
    voter=senders,
    marker=rounds,
    intervals=intervals,
    signature=maybe_signature,
)
votes = plain_votes | strong_votes

qcs = st.builds(
    QuorumCertificate,
    block_id=digests,
    round=rounds,
    height=rounds,
    votes=st.lists(votes, max_size=4).map(tuple),
)
tcs = st.builds(
    TimeoutCertificate,
    round=rounds,
    timeout_voters=st.frozensets(senders, max_size=5),
    highest_qc_round=rounds,
)

transactions = st.builds(
    Transaction,
    client_id=senders,
    sequence=rounds,
    payload=st.binary(max_size=48),
    submitted_at=times,
)
batches = st.builds(
    TxBatch,
    count=st.integers(0, 10_000),
    size_bytes=st.integers(0, 10**7),
    created_at=times,
    tag=senders,
)
payloads = st.builds(
    Payload,
    transactions=st.lists(transactions, max_size=3).map(tuple),
    batch=st.none() | batches,
)

blocks = st.builds(
    Block,
    parent_id=st.none() | digests,
    qc=st.none() | qcs,
    round=rounds,
    height=rounds,
    proposer=senders,
    payload=payloads,
    created_at=times,
    commit_log=st.lists(
        st.tuples(st.binary(min_size=32, max_size=32), st.integers(1, 5)),
        max_size=2,
    ).map(tuple),
)

wire_messages = st.one_of(
    st.builds(ProposalMsg, sender=senders, round=rounds, block=blocks,
              tc=st.none() | tcs, signature=maybe_signature),
    st.builds(VoteMsg, sender=senders, vote=votes),
    st.builds(TimeoutMsg, sender=senders, round=rounds, qc_high=qcs,
              signature=maybe_signature, vote=st.none() | votes),
    st.builds(QCMsg, sender=senders, qc=qcs),
    st.builds(NewRoundMsg, sender=senders, tc=tcs),
    st.builds(ExtraVotesMsg, sender=senders, round=rounds,
              votes=st.lists(votes, max_size=3).map(tuple)),
    st.builds(ClientRequestMsg, sender=senders, transaction=transactions),
    st.builds(ClientReplyMsg, sender=senders, txid=digests,
              block_id=digests, height=rounds, round=rounds),
    st.builds(SyncRequestMsg, sender=senders, target=st.none() | digests,
              max_blocks=st.integers(1, 64), nonce=rounds,
              signature=maybe_signature),
    st.builds(SyncResponseMsg, sender=senders, nonce=rounds,
              blocks=st.lists(blocks, max_size=2).map(tuple),
              tip_qc=st.none() | qcs, signature=maybe_signature),
    st.builds(CheckpointMsg, sender=senders, height=rounds,
              block_id=digests, digest=digests, signature=maybe_signature),
    st.builds(SnapshotRequestMsg, sender=senders, min_height=rounds,
              nonce=rounds, signature=maybe_signature),
    st.builds(SnapshotResponseMsg, sender=senders, nonce=rounds,
              cert_height=rounds, cert_block_id=st.none() | digests,
              cert_digest=st.none() | digests,
              cert_signers=st.lists(
                  st.tuples(senders, signatures), max_size=3
              ).map(tuple),
              block=st.none() | blocks,
              state=st.lists(
                  st.tuples(st.text(max_size=8), st.text(max_size=8)),
                  max_size=3,
              ).map(tuple),
              applied_txids=st.lists(digests, max_size=3).map(tuple),
              applied_count=rounds, rejected_count=rounds,
              signature=maybe_signature),
)
# EchoMsg wraps another message; keep nesting shallow.
echo_messages = st.builds(
    EchoMsg, sender=senders, inner=wire_messages, origin=senders
)
all_messages = wire_messages | echo_messages


class TestRoundTrip:
    @given(all_messages)
    @settings(max_examples=300)
    def test_encode_decode_identity(self, message):
        assert decode_message(encode_message(message)) == message

    @given(all_messages)
    @settings(max_examples=100)
    def test_encoding_is_deterministic(self, message):
        assert encode_message(message) == encode_message(message)

    @given(st.lists(all_messages, min_size=1, max_size=5),
           st.integers(1, 9))
    @settings(max_examples=100)
    def test_frame_reassembly_at_arbitrary_split(self, messages, chunk):
        """TCP gives no boundaries: any chunking must reassemble."""
        stream = b"".join(encode_frame(message) for message in messages)
        decoder = FrameDecoder()
        received = []
        for start in range(0, len(stream), chunk):
            received.extend(decoder.feed(stream[start:start + chunk]))
        assert received == messages


class TestSignatureValidity:
    """HMAC signatures bind to signing payloads, which must survive."""

    registry = KeyRegistry(4)

    @given(digests, rounds, rounds, senders.filter(lambda s: s < 4))
    @settings(max_examples=100)
    def test_strong_vote_signature_survives(self, block_id, round_number,
                                            marker, voter):
        vote = StrongVote(
            block_id=block_id, block_round=round_number,
            height=round_number, voter=voter, marker=marker,
        )
        signed = StrongVote(
            block_id=vote.block_id, block_round=vote.block_round,
            height=vote.height, voter=vote.voter, marker=vote.marker,
            signature=self.registry.signing_key(voter).sign(
                vote.signing_payload()
            ),
        )
        decoded = decode_message(encode_message(VoteMsg(
            sender=voter, vote=signed
        ))).vote
        assert decoded == signed
        assert self.registry.verify(
            decoded.signing_payload(), decoded.signature
        )

    def test_qc_validates_after_round_trip(self):
        block_id = HashDigest(b"\x07" * 32)
        quorum_votes = []
        for voter in range(3):
            vote = StrongVote(block_id=block_id, block_round=4, height=4,
                              voter=voter, marker=0)
            quorum_votes.append(StrongVote(
                block_id=block_id, block_round=4, height=4, voter=voter,
                marker=0,
                signature=self.registry.signing_key(voter).sign(
                    vote.signing_payload()
                ),
            ))
        qc = QuorumCertificate(
            block_id=block_id, round=4, height=4, votes=tuple(quorum_votes)
        )
        decoded = decode_message(encode_message(QCMsg(sender=0, qc=qc)))
        assert decoded.qc == qc
        assert decoded.qc.validate(self.registry, quorum=3)


def test_every_message_type_is_covered():
    """The strategy union must span every Message subclass on the wire.

    A new wire message added to ``WIRE_TYPES`` without a matching
    strategy here would silently lose round-trip coverage.
    """
    covered = {
        ProposalMsg, VoteMsg, TimeoutMsg, QCMsg, NewRoundMsg,
        ExtraVotesMsg, EchoMsg, ClientRequestMsg, ClientReplyMsg,
        SyncRequestMsg, SyncResponseMsg, CheckpointMsg,
        SnapshotRequestMsg, SnapshotResponseMsg,
    }
    wire_message_types = {
        cls for cls in WIRE_TYPES if issubclass(cls, Message)
    }
    assert wire_message_types == covered

"""Random block trees: ancestry laws, markers, endorsement exactness.

A random tree is generated as a parent-index list: block ``i + 1``
attaches to a uniformly chosen earlier block, with strictly increasing
rounds — every reachable fork shape.  The SFT invariants are checked
against brute-force reference implementations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.endorsement import BruteForceEndorsementOracle, EndorsementTracker
from repro.core.strong_vote import VotingHistory
from tests.conftest import ChainBuilder


@st.composite
def tree_shapes(draw, max_blocks=12):
    """A list of parent indices (-1 = genesis) defining a block tree."""
    size = draw(st.integers(2, max_blocks))
    parents = []
    for index in range(size):
        parents.append(draw(st.integers(-1, index - 1)))
    return parents


def build_tree(parents):
    builder = ChainBuilder(f=1)
    blocks = []
    for index, parent_index in enumerate(parents):
        parent = builder.genesis if parent_index < 0 else blocks[parent_index]
        blocks.append(builder.block(parent, round_number=index + 1))
    return builder, blocks


class TestAncestryLaws:
    @given(tree_shapes())
    @settings(max_examples=60)
    def test_ancestor_iff_on_parent_path(self, parents):
        builder, blocks = build_tree(parents)
        paths = {}
        for block in blocks:
            path = {b.id() for b in builder.store.path_to_genesis(block.id())}
            paths[block.id()] = path
        for a in blocks:
            for b in blocks:
                expected = a.id() in paths[b.id()]
                assert builder.store.is_ancestor(a.id(), b.id()) == expected

    @given(tree_shapes())
    @settings(max_examples=60)
    def test_common_ancestor_is_deepest_shared(self, parents):
        builder, blocks = build_tree(parents)
        for a in blocks:
            for b in blocks:
                ancestor = builder.store.common_ancestor(a.id(), b.id())
                path_a = [
                    blk.id() for blk in builder.store.path_to_genesis(a.id())
                ]
                path_b = {
                    blk.id() for blk in builder.store.path_to_genesis(b.id())
                }
                shared = [bid for bid in path_a if bid in path_b]
                assert ancestor.id() == shared[0]  # path is tip-first

    @given(tree_shapes())
    @settings(max_examples=60)
    def test_conflicts_symmetric_and_irreflexive(self, parents):
        builder, blocks = build_tree(parents)
        for a in blocks:
            assert not builder.store.conflicts(a.id(), a.id())
            for b in blocks:
                assert builder.store.conflicts(
                    a.id(), b.id()
                ) == builder.store.conflicts(b.id(), a.id())


@st.composite
def trees_with_votes(draw, max_blocks=10, max_votes=8):
    parents = draw(tree_shapes(max_blocks=max_blocks))
    # Vote targets must have increasing rounds (the DiemBFT voting rule);
    # index order ensures increasing rounds since round = index + 1.
    indices = draw(
        st.lists(
            st.integers(0, len(parents) - 1),
            min_size=1,
            max_size=min(max_votes, len(parents)),
            unique=True,
        ).map(sorted)
    )
    return parents, indices


class TestMarkerAgainstBruteForce:
    @given(trees_with_votes())
    @settings(max_examples=80)
    def test_tips_based_marker_equals_full_history(self, tree_and_votes):
        parents, vote_indices = tree_and_votes
        builder, blocks = build_tree(parents)
        for mode in ("round", "height"):
            history = VotingHistory(builder.store, mode=mode)
            for index in vote_indices:
                block = blocks[index]
                assert history.marker_for(block) == history.marker_brute_force(
                    block
                ), f"mode={mode} at round {block.round}"
                history.record_vote(block)

    @given(trees_with_votes())
    @settings(max_examples=80)
    def test_intervals_equal_brute_force(self, tree_and_votes):
        parents, vote_indices = tree_and_votes
        builder, blocks = build_tree(parents)
        history = VotingHistory(builder.store, mode="round")
        for index in vote_indices:
            block = blocks[index]
            assert history.intervals_for(block) == history.intervals_brute_force(
                block
            )
            history.record_vote(block)

    @given(trees_with_votes())
    @settings(max_examples=80)
    def test_marker_interval_consistency(self, tree_and_votes):
        # I ⊇ [marker+1, r] and marker+? — the marker equals the largest
        # excluded value below r (or 0 if nothing is excluded).
        parents, vote_indices = tree_and_votes
        builder, blocks = build_tree(parents)
        history = VotingHistory(builder.store, mode="round")
        for index in vote_indices:
            block = blocks[index]
            marker = history.marker_for(block)
            intervals = history.intervals_for(block)
            for round_number in range(marker + 1, block.round + 1):
                assert round_number in intervals
            if marker > 0:
                assert marker not in intervals
            history.record_vote(block)


@st.composite
def vote_streams(draw, max_blocks=10, max_votes=14, voters=4):
    parents = draw(tree_shapes(max_blocks=max_blocks))
    count = draw(st.integers(1, max_votes))
    votes = []
    for _ in range(count):
        block_index = draw(st.integers(0, len(parents) - 1))
        voter = draw(st.integers(0, voters - 1))
        marker = draw(st.integers(0, max_blocks + 1))
        votes.append((block_index, voter, marker))
    return parents, votes


class TestEndorsementTrackerExactness:
    @given(vote_streams())
    @settings(max_examples=80)
    def test_round_mode_matches_oracle(self, stream):
        parents, votes = stream
        builder, blocks = build_tree(parents)
        tracker = EndorsementTracker(builder.store, mode="round")
        oracle = BruteForceEndorsementOracle(builder.store, mode="round")
        for block_index, voter, marker in votes:
            vote = builder.vote(blocks[block_index], voter, marker=marker)
            tracker.add_vote(vote)
            oracle.add_vote(vote)
        for block in blocks:
            assert tracker.endorsers(block.id()) == oracle.endorsers(
                block.id()
            ), f"round {block.round}"

    @given(vote_streams())
    @settings(max_examples=60)
    def test_height_mode_matches_oracle_at_every_k(self, stream):
        parents, votes = stream
        builder, blocks = build_tree(parents)
        tracker = EndorsementTracker(builder.store, mode="height")
        oracle = BruteForceEndorsementOracle(builder.store, mode="height")
        for block_index, voter, marker in votes:
            vote = builder.vote(blocks[block_index], voter, marker=marker)
            tracker.add_vote(vote)
            oracle.add_vote(vote)
        max_height = max(block.height for block in blocks)
        for block in blocks:
            for k in range(1, max_height + 2):
                assert tracker.endorsers_at(block.id(), k) == oracle.endorsers(
                    block.id(), k
                ), f"height {block.height} k={k}"

    @given(vote_streams(max_votes=10))
    @settings(max_examples=60)
    def test_interval_votes_match_oracle(self, stream):
        parents, votes = stream
        builder, blocks = build_tree(parents)
        tracker = EndorsementTracker(builder.store, mode="round")
        oracle = BruteForceEndorsementOracle(builder.store, mode="round")
        for block_index, voter, marker in votes:
            block = blocks[block_index]
            # Translate the marker into its interval form [marker+1, r],
            # plus a low probe interval to exercise unions.
            intervals = ((marker + 1, max(block.round, marker + 1)),)
            if marker % 3 == 0:
                intervals = ((1, 1),) + intervals
            vote = builder.vote(block, voter, marker=marker, intervals=intervals)
            tracker.add_vote(vote)
            oracle.add_vote(vote)
        for block in blocks:
            assert tracker.endorsers(block.id()) == oracle.endorsers(
                block.id()
            ), f"round {block.round}"

    @given(vote_streams())
    @settings(max_examples=40)
    def test_endorser_counts_monotone(self, stream):
        parents, votes = stream
        builder, blocks = build_tree(parents)
        tracker = EndorsementTracker(builder.store, mode="round")
        previous = {block.id(): 0 for block in blocks}
        for block_index, voter, marker in votes:
            tracker.add_vote(
                builder.vote(blocks[block_index], voter, marker=marker)
            )
            for block in blocks:
                count = tracker.count(block.id())
                assert count >= previous[block.id()]
                previous[block.id()] = count

"""Property: crash–recovery with a durable WAL never double-votes.

Hypothesis samples crash/restart schedules — how many replicas go
down, when, and for how long — and for each one asserts the safety
core of the recovery subsystem:

* the append-only WAL vote log holds at most one block per round for
  every replica (``DurableState.double_votes()`` is empty — the
  restart guard consulted it before re-voting);
* the committed chains of all replicas stay consistent (one block per
  height, single-chain per replica);
* every scheduled restart actually happened and reloaded its record.

The schedules keep ``n = 4`` and a short duration so the whole
property stays tier-1 fast.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import FaultMix, ScenarioSpec
from repro.runtime.metrics import check_commit_safety

PROTOCOLS = ("diembft", "sft-diembft", "streamlet", "sft-streamlet")

schedules = st.tuples(
    st.sampled_from(PROTOCOLS),
    st.integers(min_value=1, max_value=3),  # replicas that crash
    st.floats(min_value=0.3, max_value=2.5),  # crash time
    st.floats(min_value=0.2, max_value=1.5),  # downtime
    st.integers(min_value=0, max_value=2**31 - 1),  # run seed
)


def test_simultaneous_streamlet_restarts_keep_one_chain():
    # Pinned falsifying example from the property below: three of four
    # Streamlet replicas restarting at once.  Their WALs stopped every
    # double vote, yet the reborn trio — whose volatile stores knew
    # only genesis — certified a *second* chain from scratch and
    # committed conflicting blocks at height 1.  The fix persists the
    # longest certified chain height as a durable voting floor
    # (``DurableState.record_certified_height``), Streamlet's analog
    # of DiemBFT's persisted ``r_lock``.
    _run_schedule(("streamlet", 3, 2.0, 1.0, 0))


@settings(max_examples=12, deadline=None)
@given(schedules)
def test_wal_restored_replicas_never_double_vote(schedule):
    _run_schedule(schedule)


def _run_schedule(schedule):
    protocol, count, recover_at, downtime, seed = schedule
    spec = ScenarioSpec(
        name="crash-recovery-prop",
        protocol=protocol,
        n=4,
        duration=5.0,
        seeds=(seed,),
        faults=FaultMix(
            recover=count,
            recover_at=round(recover_at, 3),
            downtime=round(downtime, 3),
        ),
    )
    cluster = spec.build(seed)
    cluster.run()
    assert cluster.restarts == count
    for replica_id in range(spec.n):
        state = cluster.durable.peek(replica_id)
        if state is None:
            continue
        assert state.double_votes() == [], (
            f"{protocol} replica {replica_id} double-voted: "
            f"{state.double_votes()} (schedule {schedule})"
        )
    restarted = set(range(spec.n - count, spec.n))
    for replica_id in restarted:
        assert cluster.durable.state_for(replica_id).restores == 1
    check_commit_safety(
        [replica for replica in cluster.replicas if not replica.crashed]
    )
